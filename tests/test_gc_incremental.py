"""Tests for the incremental collector: phase machine, write barrier,
allocate-black, mid-cycle wakes, and recovery protocols under
scheduler-interleaved collection (see docs/GC.md)."""

import pytest

from repro import GolfConfig, Runtime
from repro.gc import GCPhase
from repro.runtime.clock import MICROSECOND, MILLISECOND
from repro.runtime.goroutine import GStatus
from repro.runtime.instructions import (
    Alloc,
    Go,
    MakeChan,
    Recv,
    RunGC,
    Send,
    SetFinalizer,
    Sleep,
)
from repro.runtime.objects import Blob, Box, GoMap, Slice, Struct
from repro.runtime.waitreason import WaitReason
from tests.conftest import run_to_end


def incremental_rt(procs=2, seed=7, **kwargs):
    kwargs.setdefault("gc_mode", "incremental")
    return Runtime(procs=procs, seed=seed, config=GolfConfig(**kwargs))


def drive_cycle(rt):
    """Step an in-flight cycle to completion without the scheduler."""
    while rt.collector.gc_step():
        pass


def record_phases(rt, phases):
    """Wrap the collector's phase switch to log every transition."""
    original = rt.collector._transition

    def wrapped(phase):
        phases.append(phase)
        original(phase)

    rt.collector._transition = wrapped


def _leak_one(rt, payload_bytes=0):
    def main():
        ch = yield MakeChan(0)

        def sender():
            if payload_bytes:
                data = yield Alloc(Blob(payload_bytes))  # noqa: F841
            yield Send(ch, 1)

        yield Go(sender, name="leaker")
        yield Sleep(20 * MICROSECOND)

    return run_to_end(rt, main)


class TestPhaseMachine:
    def test_idle_at_rest(self):
        rt = incremental_rt()
        assert rt.collector.phase is GCPhase.IDLE

    def test_full_cycle_transition_order(self):
        rt = incremental_rt()
        phases = []
        record_phases(rt, phases)
        rt.gc()
        assert phases == [
            GCPhase.MARK_SETUP,
            GCPhase.MARKING,
            GCPhase.MARK_TERMINATION,
            GCPhase.SWEEPING,
            GCPhase.IDLE,
        ]
        assert rt.collector.phase is GCPhase.IDLE

    def test_stw_phases(self):
        assert GCPhase.MARK_SETUP.stop_the_world
        assert GCPhase.MARK_TERMINATION.stop_the_world
        assert not GCPhase.MARKING.stop_the_world
        assert not GCPhase.SWEEPING.stop_the_world
        assert not GCPhase.IDLE.stop_the_world

    def test_tiny_budgets_fragment_the_phases(self):
        rt = incremental_rt(mark_budget=2, sweep_budget=2)

        def main():
            # Live linked data (mark work) plus dropped garbage (sweep
            # work), so both concurrent phases need several steps.
            sl = yield Alloc(Slice())
            for i in range(20):
                box = yield Alloc(Box(i))
                sl.append(box)
            for _ in range(20):
                yield Alloc(Blob(64))
            yield RunGC()
            sl.append(None)  # keep the slice live across the cycle

        assert run_to_end(rt, main) == "main-exited"
        cs = rt.collector.stats.cycles[-1]
        assert cs.mark_steps > 1
        assert cs.sweep_steps > 1

    def test_atomic_mode_has_no_steps(self, rt):
        _leak_one(rt)
        cs = rt.gc()
        assert cs.mark_steps == 0
        assert cs.sweep_steps == 0
        assert rt.collector.phase is GCPhase.IDLE

    def test_forced_gc_while_cycle_in_flight_runs_both(self):
        rt = incremental_rt()
        rt.collector._begin_cycle("test")
        assert rt.collector.phase is GCPhase.MARKING
        cs = rt.gc()  # must finish the in-flight cycle, then run its own
        assert rt.collector.phase is GCPhase.IDLE
        assert cs.cycle == 2
        assert rt.collector.stats.num_gc == 2


class TestRunGCParking:
    def test_rungc_parks_caller_until_cycle_completes(self):
        rt = incremental_rt(mark_budget=1)
        observed = []

        def main():
            for _ in range(10):
                yield Alloc(Blob(64))
            yield RunGC()

        rt.spawn_main(main)
        main_g = rt.sched.main_g
        record_phases(rt, observed)
        original = rt.collector._transition

        def snapshot(phase):
            if phase is GCPhase.MARK_TERMINATION:
                observed.append((main_g.status, main_g.wait_reason))
            original(phase)

        rt.collector._transition = snapshot
        outcome = rt.run(until_ns=500 * MILLISECOND)
        assert outcome == "main-exited"
        assert (GStatus.WAITING, WaitReason.GC_WAIT) in observed
        assert main_g.status is GStatus.DEAD

    def test_mutator_progresses_during_marking(self):
        rt = incremental_rt(mark_budget=1, sweep_budget=1)
        progress = []
        marking_snapshot = []

        def main():
            sl = yield Alloc(Slice())
            for i in range(30):
                box = yield Alloc(Box(i))
                sl.append(box)

            def worker():
                # CPU-busy so it stays runnable: the scheduler then
                # interleaves one bounded GC step per execution batch.
                for i in range(200):
                    progress.append(i)
                    yield Alloc(Blob(8))

            yield Go(worker, name="worker")
            yield Sleep(MICROSECOND)
            yield RunGC()
            sl.append(None)  # keep the slice live across the cycle

        rt.spawn_main(main)
        original = rt.collector._transition

        def snapshot(phase):
            if phase is GCPhase.MARKING:
                marking_snapshot.append(len(progress))
            elif phase is GCPhase.MARK_TERMINATION:
                marking_snapshot.append(len(progress))
            original(phase)

        rt.collector._transition = snapshot
        assert run_to_end_spawned(rt) == "main-exited"
        at_marking, at_termination = marking_snapshot[0], marking_snapshot[1]
        assert at_termination > at_marking, (
            "the worker must run between MARKING and MARK_TERMINATION")


def run_to_end_spawned(rt):
    return rt.run(until_ns=500 * MILLISECOND, max_instructions=2_000_000)


class TestWriteBarrier:
    def _mid_mark(self, **kwargs):
        rt = incremental_rt(**kwargs)
        targets = [rt.heap.allocate(Blob(32)) for _ in range(6)]
        rt.collector._begin_cycle("test")
        assert rt.collector.phase is GCPhase.MARKING
        assert rt.heap.barrier_active
        for t in targets:
            assert not rt.heap.is_marked(t)
        return rt, targets

    def test_box_store_shades(self):
        rt, targets = self._mid_mark()
        box = rt.heap.allocate(Box(None))
        before = rt.heap.barrier_shades
        box.value = targets[0]
        assert rt.heap.is_marked(targets[0])
        assert rt.heap.barrier_shades == before + 1

    def test_struct_field_store_shades(self):
        rt, targets = self._mid_mark()
        s = rt.heap.allocate(Struct(field=None))
        s.set("field", targets[0])
        s["other"] = targets[1]
        assert rt.heap.is_marked(targets[0])
        assert rt.heap.is_marked(targets[1])

    def test_slice_store_shades(self):
        rt, targets = self._mid_mark()
        sl = rt.heap.allocate(Slice([None]))
        sl.append(targets[0])
        sl[0] = targets[1]
        assert rt.heap.is_marked(targets[0])
        assert rt.heap.is_marked(targets[1])

    def test_map_store_shades_key_and_value(self):
        rt, targets = self._mid_mark()
        m = rt.heap.allocate(GoMap())
        m[targets[0]] = targets[1]
        assert rt.heap.is_marked(targets[0])
        assert rt.heap.is_marked(targets[1])

    def test_global_root_store_shades(self):
        rt, targets = self._mid_mark()
        rt.heap.globals.set("g", targets[0])
        assert rt.heap.is_marked(targets[0])

    def test_shaded_object_survives_the_sweep(self):
        rt, targets = self._mid_mark()
        box = rt.heap.allocate(Box(None))
        box.value = targets[0]
        drive_cycle(rt)
        assert rt.heap.contains(targets[0])
        # The other, never-referenced blobs were garbage.
        assert not rt.heap.contains(targets[1])

    def test_barrier_inert_outside_marking(self):
        rt = incremental_rt()
        target = rt.heap.allocate(Blob(32))
        box = rt.heap.allocate(Box(None))
        box.value = target
        assert rt.heap.barrier_shades == 0
        assert not rt.heap.is_marked(target)

    def test_atomic_mode_never_activates_barrier(self, rt):
        _leak_one(rt)
        rt.gc()
        assert rt.heap.barrier_shades == 0

    def test_allocate_black_during_marking(self):
        rt, _ = self._mid_mark()
        fresh = rt.heap.allocate(Blob(16))
        assert rt.heap.is_marked(fresh)
        drive_cycle(rt)
        assert rt.heap.contains(fresh)

    def test_masked_goroutine_is_never_shaded(self):
        rt = incremental_rt()
        _leak_one(rt)
        rt.collector._begin_cycle("test")
        masked = [g for g in rt.sched.allgs if g.masked]
        assert masked, "the leaked sender must be masked during detection"
        leaker = masked[0]
        before = rt.heap.barrier_shades
        # A mutator publishing the masked goroutine's address must not
        # resurrect it: liveness may flow to masked goroutines only via
        # the detector's B(g) fixpoint.
        rt.heap.write_barrier(None, leaker)
        assert not rt.heap.is_marked(leaker)
        assert rt.heap.barrier_shades == before
        drive_cycle(rt)
        assert rt.reports.total() == 1

    def test_cycle_stats_count_shades(self):
        rt, targets = self._mid_mark()
        box = rt.heap.allocate(Box(None))
        box.value = targets[0]
        drive_cycle(rt)
        assert rt.collector.stats.cycles[-1].barrier_shades == 1


class TestBarrierInvariantChecker:
    def test_clean_heap_has_no_violations(self):
        rt = incremental_rt()
        rt.heap.globals.set("g", rt.heap.allocate(Box("x")))
        rt.collector._begin_cycle("test")
        assert rt.collector.check_barrier_invariant() == []

    def test_detects_black_to_white_edge(self):
        rt = incremental_rt()
        child = rt.heap.allocate(Blob(8))
        parent = rt.heap.allocate(Box(None))
        rt.collector._begin_cycle("test")
        # Bypass the barrier to fabricate the forbidden edge: a black
        # (marked, off the gray list) object pointing at a white child.
        parent._value = child
        rt.heap.mark(parent)
        problems = rt.collector.check_barrier_invariant()
        assert problems and "barrier invariant" in problems[0]

    def test_silent_outside_marking(self):
        rt = incremental_rt()
        assert rt.collector.check_barrier_invariant() == []


class TestMidCycleWake:
    def test_masked_wake_reexpands_roots(self):
        rt = incremental_rt()
        _leak_one(rt)
        rt.collector._begin_cycle("test")
        leaker = next(g for g in rt.sched.allgs if g.masked)
        rt.collector.on_masked_wake(leaker)
        assert not leaker.masked
        assert rt.heap.is_marked(leaker)
        drive_cycle(rt)
        cs = rt.collector.stats.cycles[-1]
        assert cs.root_reexpansions == 1
        # The woken goroutine is live again: no report, no recovery.
        assert rt.reports.total() == 0
        assert cs.deadlocks_detected == 0

    def test_unmask_without_cycle_is_plain(self):
        rt = incremental_rt()
        _leak_one(rt)
        # Outside any cycle the hook just clears the mask bit.
        g = rt.sched.allgs[-1]
        g.masked = True
        rt.collector.on_masked_wake(g)
        assert not g.masked
        assert not rt.heap.is_marked(g)


class TestIncrementalRecoveryProtocols:
    def test_two_cycle_recovery_with_interleaved_mutator(self):
        rt = incremental_rt(mark_budget=1, sweep_budget=1)
        progress = []
        marks = []

        def main():
            def parent():
                # The channel dies with this goroutine, leaving the
                # sender unreachable — the Listing-1 leak shape.
                ch = yield MakeChan(0)

                def sender():
                    data = yield Alloc(Blob(4096))  # noqa: F841
                    yield Send(ch, 1)

                yield Go(sender, name="leaker")

            def worker():
                for i in range(400):
                    progress.append(i)
                    yield Sleep(MICROSECOND)

            yield Go(parent, name="parent")
            yield Go(worker, name="worker")
            yield Sleep(20 * MICROSECOND)
            yield RunGC()
            marks.append(len(progress))
            yield RunGC()
            marks.append(len(progress))

        assert run_to_end(rt, main) == "main-exited"
        assert marks[1] > marks[0], "mutator must run between cycles"
        cycles = rt.collector.stats.cycles
        detect = next(c for c in cycles if c.deadlocks_detected)
        reclaim = next(c for c in cycles if c.goroutines_reclaimed)
        assert detect.goroutines_reclaimed == 0
        assert reclaim.cycle > detect.cycle
        assert rt.reports.total() == 1
        assert not any(o.kind == "blob" for o in rt.heap.objects())
        assert rt.sched.gfree, "reclaimed descriptor should be pooled"
        assert rt.sched.gfree[-1].status == GStatus.DEAD

    def test_pending_reclaim_memory_survives_first_cycle(self):
        rt = incremental_rt(mark_budget=2, sweep_budget=2)
        _leak_one(rt, payload_bytes=4096)
        cs1 = rt.gc()
        assert cs1.deadlocks_detected == 1
        assert cs1.goroutines_reclaimed == 0
        assert any(o.kind == "blob" for o in rt.heap.objects())
        cs2 = rt.gc()
        assert cs2.goroutines_reclaimed == 1
        assert not any(o.kind == "blob" for o in rt.heap.objects())

    def test_finalizer_resurrection_under_incremental(self):
        rt = incremental_rt(mark_budget=2, sweep_budget=2)
        fired = []

        def main():
            ch = yield MakeChan(0)

            def holder():
                box = yield Alloc(Box("data"))
                yield SetFinalizer(box, lambda obj: fired.append(obj))
                yield Recv(ch)

            yield Go(holder, name="finalizer-holder")
            yield Sleep(20 * MICROSECOND)

        run_to_end(rt, main)
        cs1 = rt.gc()
        assert cs1.deadlocks_kept_for_finalizers == 1
        rt.gc()
        rt.gc()
        # Kept alive forever: reported once, never reclaimed, finalizer
        # never fires — identical to the atomic protocol.
        assert rt.reports.total() == 1
        assert not fired
        kept = [g for g in rt.sched.allgs if g.status is GStatus.DEADLOCKED]
        assert len(kept) == 1
        assert any(o.kind == "box" for o in rt.heap.objects())

    def test_dead_finalizer_object_resurrected_one_cycle(self):
        rt = incremental_rt(mark_budget=2, sweep_budget=2)
        fired = []

        def main():
            box = yield Alloc(Box("transient"))
            yield SetFinalizer(box, lambda obj: fired.append(obj))

        run_to_end(rt, main)
        cs1 = rt.gc()
        assert cs1.finalizers_queued == 1
        assert len(fired) == 1
        # Resurrected for exactly one cycle, then truly collected.
        assert any(o.kind == "box" for o in rt.heap.objects())
        rt.gc()
        assert not any(o.kind == "box" for o in rt.heap.objects())


class TestPauseAccounting:
    def test_pause_ns_is_setup_plus_termination(self):
        rt = incremental_rt()
        _leak_one(rt)
        cs = rt.gc()
        assert cs.pause_ns == cs.pause_setup_ns + cs.pause_termination_ns
        assert cs.max_pause_window_ns == max(cs.pause_setup_ns,
                                             cs.pause_termination_ns)
        assert cs.max_pause_window_ns < cs.pause_ns

    def test_gcstats_max_pause_tracking(self):
        rt = incremental_rt()
        _leak_one(rt)
        rt.gc()
        rt.gc()
        stats = rt.collector.stats
        assert stats.max_pause_ns == max(c.pause_ns for c in stats.cycles)
        assert stats.max_pause_window_ns == max(
            c.max_pause_window_ns for c in stats.cycles)

    def test_atomic_mode_splits_match_totals(self, rt):
        _leak_one(rt)
        cs = rt.gc()
        assert cs.pause_ns == cs.pause_setup_ns + cs.pause_termination_ns


class TestIncrementalChaosSmoke:
    def test_gc_phase_scenario_clean(self):
        from repro.chaos import run_chaos_campaign

        report = run_chaos_campaign(
            seeds=5, scenario="gc-phase", base_seed=3, procs=2,
            config=GolfConfig(gc_mode="incremental"))
        assert report.clean, report.format()

    def test_gc_specific_faults_rejected_in_atomic(self):
        from repro.chaos import run_chaos_campaign

        report = run_chaos_campaign(
            seeds=5, scenario="gc-phase", base_seed=3, procs=2,
            config=GolfConfig(gc_mode="atomic"))
        assert report.clean, report.format()
