"""Execution tracing and leak provenance (see ``docs/TRACING.md``).

Three layers:

- :mod:`repro.trace.events` — the fixed event vocabulary and the
  structured :class:`TraceEvent`;
- :mod:`repro.trace.tracer` — :class:`ExecutionTracer`, the ring-buffered
  event stream the runtime hooks feed (``rt.enable_tracing()``);
- :mod:`repro.trace.chrome` — Chrome trace-event JSON export/validation
  (Perfetto / ``chrome://tracing``);
- :mod:`repro.trace.provenance` — the why-leaked evidence the collector
  captures for every condemned goroutine.

:mod:`repro.trace.driver` (the ``repro trace`` CLI backend) is imported
on demand, not here: it pulls in the microbench registry.
"""

from repro.trace import events  # noqa: F401  (import order: events first)
from repro.trace.events import TraceEvent, VOCABULARY  # noqa: F401
from repro.trace.tracer import ExecutionTracer  # noqa: F401
from repro.trace.chrome import (  # noqa: F401
    export_chrome_trace,
    validate_chrome_trace,
)
from repro.trace.provenance import (  # noqa: F401
    ProvenanceRecord,
    capture_provenance,
)

__all__ = [
    "TraceEvent", "VOCABULARY", "ExecutionTracer",
    "export_chrome_trace", "validate_chrome_trace",
    "ProvenanceRecord", "capture_provenance",
]
