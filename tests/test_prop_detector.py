"""Property-based tests: the detector vs a brute-force LIVE+ oracle.

Random heap graphs and goroutine states are generated directly (stack
references are injected through the goroutine's pending-value slot, which
the stack scanner treats as stack content).  A brute-force fixpoint over
the same definition of reachable liveness (paper, section 4.1) serves as
the oracle; both detector strategies must agree with it exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.core.detector import detect
from repro.gc.heap import Heap
from repro.runtime.goroutine import EPSILON, Goroutine, GStatus
from repro.runtime.objects import Box
from repro.runtime.waitreason import WaitReason


class GraphCase:
    """A randomly generated heap + goroutine configuration."""

    def __init__(self, heap, objects, goroutines):
        self.heap = heap
        self.objects = objects
        self.goroutines = goroutines


@st.composite
def graph_cases(draw):
    heap = Heap()
    n_objects = draw(st.integers(min_value=0, max_value=12))
    objects = [heap.allocate(Box(None)) for _ in range(n_objects)]

    # Random object-to-object references.
    for obj in objects:
        fan_out = draw(st.integers(min_value=0, max_value=2))
        if fan_out and objects:
            targets = draw(st.lists(
                st.sampled_from(objects), min_size=0, max_size=fan_out))
            obj.value = list(targets)

    # Random globals.
    if objects and draw(st.booleans()):
        heap.globals.set("g0", draw(st.sampled_from(objects)))

    n_goroutines = draw(st.integers(min_value=1, max_value=6))
    goroutines = []
    for i in range(n_goroutines):
        g = Goroutine(goid=i + 1)
        heap.allocate(g, pinned=True)
        runnable = draw(st.booleans())
        if runnable or not objects:
            g.status = GStatus.RUNNABLE
        else:
            g.status = GStatus.WAITING
            g.wait_reason = draw(st.sampled_from([
                WaitReason.CHAN_SEND,
                WaitReason.CHAN_RECEIVE,
                WaitReason.SELECT,
                WaitReason.SYNC_MUTEX_LOCK,
            ]))
            blocked_pool = objects + [EPSILON]
            g.blocked_on = tuple(draw(st.lists(
                st.sampled_from(blocked_pool), min_size=1, max_size=2)))
        # Stack references, injected via the pending-value slot.
        if objects:
            g.pending_value = draw(st.lists(
                st.sampled_from(objects), min_size=0, max_size=3))
        goroutines.append(g)
    return GraphCase(heap, objects, goroutines)


def brute_force_deadlocked(case: GraphCase):
    """Oracle: the least fixpoint of LIVE+ computed naively."""
    live = {
        g for g in case.goroutines
        if g.status in (GStatus.RUNNABLE, GStatus.RUNNING)
    }
    changed = True
    while changed:
        changed = False
        reachable = _reachable_from(case, live)
        for g in case.goroutines:
            if g in live or g.status != GStatus.WAITING:
                continue
            for obj in g.blocked_on:
                if obj is EPSILON:
                    continue
                if obj in reachable:
                    live.add(g)
                    changed = True
                    break
    return {
        g for g in case.goroutines
        if g.status == GStatus.WAITING and g not in live
    }


def _reachable_from(case, live_goroutines):
    """Transitive closure of REF from globals and live goroutines,
    never tracing *through* a non-live goroutine."""
    live_set = set(live_goroutines)
    seen = set()
    stack = [case.heap.globals] + list(live_goroutines)
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, Goroutine) and obj not in live_set:
            continue  # masked: unreached goroutines are opaque
        for ref in obj.referents():
            stack.append(ref)
    return {obj for obj in case.objects if id(obj) in seen}


@settings(max_examples=150, deadline=None)
@given(case=graph_cases())
def test_restart_strategy_matches_oracle(case):
    expected = brute_force_deadlocked(case)
    case.heap.begin_cycle()
    result = detect(case.heap, case.goroutines, on_the_fly=False)
    assert set(result.deadlocked) == expected


@settings(max_examples=150, deadline=None)
@given(case=graph_cases())
def test_on_the_fly_strategy_matches_oracle(case):
    expected = brute_force_deadlocked(case)
    case.heap.begin_cycle()
    result = detect(case.heap, case.goroutines, on_the_fly=True)
    assert set(result.deadlocked) == expected


@settings(max_examples=100, deadline=None)
@given(case=graph_cases())
def test_strategies_agree_and_unmask_live(case):
    case.heap.begin_cycle()
    restart = detect(case.heap, case.goroutines, on_the_fly=False)
    deadlocked = set(restart.deadlocked)
    # Live goroutines must come out unmasked; deadlocked ones masked.
    for g in case.goroutines:
        if g.status == GStatus.WAITING:
            assert g.masked == (g in deadlocked)

    # Rebuild the identical case state for the other strategy.
    for g in case.goroutines:
        g.masked = False
    case.heap.begin_cycle()
    otf = detect(case.heap, case.goroutines, on_the_fly=True)
    assert set(otf.deadlocked) == deadlocked


@settings(max_examples=100, deadline=None)
@given(case=graph_cases())
def test_runnable_goroutines_never_deadlocked(case):
    case.heap.begin_cycle()
    result = detect(case.heap, case.goroutines)
    runnable = {
        g for g in case.goroutines
        if g.status in (GStatus.RUNNABLE, GStatus.RUNNING)
    }
    assert not (runnable & set(result.deadlocked))
    assert runnable <= set(result.live)


@settings(max_examples=100, deadline=None)
@given(case=graph_cases())
def test_epsilon_only_blockers_always_deadlocked(case):
    case.heap.begin_cycle()
    result = detect(case.heap, case.goroutines)
    for g in case.goroutines:
        if (g.status == GStatus.WAITING
                and g.blocked_on
                and all(o is EPSILON for o in g.blocked_on)):
            assert g in set(result.deadlocked)
