#!/usr/bin/env python3
"""A tour of the microbenchmark corpus: a miniature Table 1.

Runs every benchmark of the corpus a few times per core configuration
and prints the detection-rate table in the paper's format, including the
famous rows: etcd/7443 (invisible below 10 cores), grpc/3017 (needs
parallelism), moby/27282 (the two-core dip).

Run:  python examples/deadlock_zoo.py [runs]
"""

import sys

from repro.experiments import format_table1, run_table1
from repro.microbench import all_benchmarks, total_leaky_sites


def progress(done, total):
    pct = 100 * done // total
    sys.stdout.write(f"\r  running corpus... {pct:3d}%")
    sys.stdout.flush()


if __name__ == "__main__":
    runs = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    benches = all_benchmarks()
    print(f"corpus: {len(benches)} benchmarks, {total_leaky_sites()} "
          f"annotated leaky go instructions")
    print(f"running each {runs}x under GOMAXPROCS in {{1, 2, 4, 10}}")

    result = run_table1(runs=runs, progress=progress)
    sys.stdout.write("\r" + " " * 40 + "\r")
    print(format_table1(result))

    assert result.aggregated() > 0.85
    print(f"\naggregate detection rate: {result.aggregated():.2%} "
          f"(paper: 94.75%)")
