"""Unit tests for the heap object model."""

import pytest

from repro.runtime.objects import (
    Blob,
    Box,
    GoMap,
    HeapObject,
    Slice,
    Struct,
    WORD_SIZE,
    iter_heap_refs,
)


class TestHeapObject:
    def test_fresh_object_is_unallocated(self):
        obj = HeapObject()
        assert obj.addr == 0

    def test_default_has_no_referents(self):
        assert list(HeapObject().referents()) == []

    def test_default_scan_work_is_zero(self):
        assert HeapObject().scan_work == 0

    def test_finalizer_roundtrip(self):
        obj = HeapObject()
        assert obj.finalizer is None
        fn = lambda o: None
        obj.set_finalizer(fn)
        assert obj.finalizer is fn

    def test_repr_contains_kind_and_size(self):
        obj = Box(1)
        assert "box" in repr(obj)


class TestBox:
    def test_holds_plain_value(self):
        assert Box(42).value == 42

    def test_references_heap_value(self):
        inner = Box(1)
        outer = Box(inner)
        assert list(outer.referents()) == [inner]

    def test_plain_value_yields_no_referents(self):
        assert list(Box("str").referents()) == []

    def test_references_through_container(self):
        inner = Box(1)
        outer = Box([1, 2, inner])
        assert list(outer.referents()) == [inner]


class TestStruct:
    def test_field_access(self):
        s = Struct(a=1, b="x")
        assert s.get("a") == 1
        assert s["b"] == "x"

    def test_field_mutation(self):
        s = Struct(a=1)
        s["a"] = 2
        s.set("b", 3)
        assert s["a"] == 2 and s["b"] == 3

    def test_missing_field_raises(self):
        with pytest.raises(KeyError):
            Struct()["nope"]

    def test_referents_cover_all_fields(self):
        a, b = Box(1), Box(2)
        s = Struct(x=a, y=[b], z="plain")
        assert set(s.referents()) == {a, b}

    def test_size_grows_with_fields(self):
        assert Struct(a=1, b=2, c=3).size > Struct(a=1).size


class TestSlice:
    def test_append_and_iter(self):
        s = Slice()
        s.append(1)
        s.append(2)
        assert list(s) == [1, 2]
        assert len(s) == 2

    def test_indexing(self):
        s = Slice([10, 20])
        s[1] = 30
        assert s[0] == 10 and s[1] == 30

    def test_append_grows_size(self):
        s = Slice()
        before = s.size
        s.append(None)
        assert s.size == before + WORD_SIZE

    def test_referents(self):
        a = Box(1)
        s = Slice([a, 5, "x"])
        assert list(s.referents()) == [a]


class TestGoMap:
    def test_mapping_semantics(self):
        m = GoMap()
        m["k"] = "v"
        assert m["k"] == "v"
        assert "k" in m
        assert m.get("missing", 9) == 9
        del m["k"]
        assert len(m) == 0

    def test_size_tracks_entries(self):
        m = GoMap()
        empty = m.size
        m["a"] = 1
        assert m.size == empty + GoMap.BYTES_PER_ENTRY
        del m["a"]
        assert m.size == empty

    def test_overwrite_does_not_grow(self):
        m = GoMap()
        m["a"] = 1
        before = m.size
        m["a"] = 2
        assert m.size == before

    def test_with_entries_scan_work(self):
        m = GoMap.with_entries(100)
        assert len(m) == 100
        assert m.scan_work == 100

    def test_sized_accounts_without_materializing(self):
        m = GoMap.sized(100_000)
        assert len(m) == 0
        assert m.scan_work == 100_000
        assert m.size > 100_000 * GoMap.BYTES_PER_ENTRY

    def test_referents_cover_keys_and_values(self):
        key_obj, val_obj = Box("k"), Box("v")
        m = GoMap({key_obj: val_obj})
        assert set(m.referents()) == {key_obj, val_obj}


class TestBlob:
    def test_size(self):
        assert Blob(1234).size == 1234

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Blob(-1)

    def test_noscan(self):
        assert Blob(4096).scan_work == 0
        assert list(Blob(16).referents()) == []


class TestIterHeapRefs:
    def test_direct_object(self):
        b = Box(1)
        assert list(iter_heap_refs(b)) == [b]

    def test_nested_containers(self):
        a, b = Box(1), Box(2)
        value = {"k": [a, (b,)], "plain": 7}
        assert set(iter_heap_refs(value)) == {a, b}

    def test_dict_keys_scanned(self):
        a = Box(1)
        assert list(iter_heap_refs({a: "v"})) == [a]

    def test_plain_values_yield_nothing(self):
        assert list(iter_heap_refs(42)) == []
        assert list(iter_heap_refs("s")) == []
        assert list(iter_heap_refs(None)) == []

    def test_depth_limit_stops_runaway(self):
        deep = Box(1)
        value = [deep]
        for _ in range(40):
            value = [value]
        # Too deep to find, but must not raise.
        assert list(iter_heap_refs(value)) == []
