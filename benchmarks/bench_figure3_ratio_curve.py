"""Figure 3: per-deduplicated-report GOLF/goleak detection ratio curve.

Paper: area under the curve ~82%; GOLF finds everything goleak finds in
55% of its deduplicated reports.
"""

from benchmarks.conftest import emit, once
from repro.corpus.generator import CorpusConfig
from repro.experiments import format_figure3, run_figure3


def test_figure3_detection_ratio_curve(benchmark):
    config = CorpusConfig(n_packages=300, n_sites=60, seed=42)
    result = once(benchmark, lambda: run_figure3(config))
    emit("figure3", format_figure3(result))

    assert result.curve == sorted(result.curve, reverse=True)
    assert 0.70 <= result.auc <= 1.0, "paper: 82%"
    assert 0.35 <= result.fully_found <= 0.85, "paper: 55%"
    # The curve must actually decay: partial-detection sites exist.
    assert result.curve[-1] < 1.0
