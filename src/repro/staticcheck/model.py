"""Data model of the static partial-deadlock analyzer.

The extractor lowers goroutine-body generator functions into streams of
abstract :class:`Op` records over abstract values (:class:`ChanVal`,
:class:`MutexVal`, ...).  The rule engine never sees Python ASTs — only
these records, keyed by the instruction set's stable mnemonics
(:mod:`repro.runtime.instructions`).

Multiplicities are ``int`` for statically-known counts and
:data:`MANY` (``math.inf``) for loop-unbounded ops; ``None`` capacities
mean "statically unknown".
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple, Union

#: Loop-unbounded multiplicity.
MANY = math.inf

Mult = Union[int, float]

#: Diagnostic severities, ranked.  ``unknown`` is a *verdict*, not a
#: severity: a function the analyzer soundly gave up on.
INFO, WARNING, ERROR = "info", "warning", "error"
SEVERITY_RANK = {INFO: 0, WARNING: 1, ERROR: 2}

#: Function verdicts.
CLEAN, SUSPECT, LEAKY, UNKNOWN = "clean", "suspect", "leaky", "unknown"


class Site:
    """A source location: file plus 1-based line."""

    __slots__ = ("file", "line")

    def __init__(self, file: str, line: int):
        self.file = file
        self.line = line

    def __str__(self) -> str:
        return f"{self.file}:{self.line}"

    def __repr__(self) -> str:
        return f"<site {self}>"

    def __eq__(self, other) -> bool:
        return (isinstance(other, Site)
                and (self.file, self.line) == (other.file, other.line))

    def __hash__(self) -> int:
        return hash((self.file, self.line))


class BodyCtx:
    """One goroutine body instance: the entry body or a spawned one."""

    __slots__ = ("uid", "func_name", "spawn_site", "parent")

    def __init__(self, uid: int, func_name: str,
                 spawn_site: Optional[Site] = None,
                 parent: Optional["BodyCtx"] = None):
        self.uid = uid
        self.func_name = func_name
        self.spawn_site = spawn_site
        self.parent = parent

    @property
    def is_entry(self) -> bool:
        return self.spawn_site is None

    def spawn_chain(self) -> List[Site]:
        """Spawn sites from the entry body down to this one."""
        return [site for site, _name in self.spawn_steps()]

    def spawn_steps(self) -> List[Tuple[Site, str]]:
        """(spawn site, spawned function name) pairs, entry first."""
        steps: List[Tuple[Site, str]] = []
        ctx: Optional[BodyCtx] = self
        while ctx is not None and ctx.spawn_site is not None:
            steps.append((ctx.spawn_site, ctx.func_name))
            ctx = ctx.parent
        steps.reverse()
        return steps

    def __repr__(self) -> str:
        where = f"spawned@{self.spawn_site}" if self.spawn_site else "entry"
        return f"<body {self.func_name} [{where}]>"


# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------


class Val:
    """Base abstract value."""

    __slots__ = ()


class UnknownVal(Val):
    __slots__ = ("reason",)

    def __init__(self, reason: str = ""):
        self.reason = reason

    def __repr__(self) -> str:
        return f"<unknown {self.reason}>" if self.reason else "<unknown>"




class ConstVal(Val):
    """A statically-known Python constant."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __repr__(self) -> str:
        return f"<const {self.value!r}>"


class ChanVal(Val):
    """An abstract channel.  One value may stand for every channel
    created at a loop make-site (summarized)."""

    __slots__ = ("uid", "make_site", "capacity", "label", "escapes",
                 "summarized")

    def __init__(self, uid: int, make_site: Optional[Site],
                 capacity: Optional[int], label: str = "",
                 summarized: bool = False):
        self.uid = uid
        self.make_site = make_site
        self.capacity = capacity
        self.label = label
        #: Escape reasons: "returned", "passed-unknown", "stored-global",
        #: "stored-attr".  "returned"/"passed-unknown" suppress leak
        #: rules (the unseen code may discharge the channel).
        self.escapes: List[str] = []
        self.summarized = summarized

    #: Escape reasons that make leak verdicts unsound for this channel:
    #: unseen code (or a dynamically-chosen alias) may discharge it.
    SUPPRESSING = ("returned", "passed-unknown", "dynamic-alias",
                   "sent-as-value")

    @property
    def suppressed(self) -> bool:
        return any(e in self.SUPPRESSING for e in self.escapes)

    def __repr__(self) -> str:
        cap = "?" if self.capacity is None else self.capacity
        return f"<chan#{self.uid} cap={cap} make={self.make_site}>"


class MutexVal(Val):
    __slots__ = ("uid", "site", "rw")

    def __init__(self, uid: int, site: Optional[Site], rw: bool = False):
        self.uid = uid
        self.site = site
        self.rw = rw

    def __repr__(self) -> str:
        return f"<{'rw' if self.rw else ''}mutex#{self.uid}>"


class WgVal(Val):
    __slots__ = ("uid", "site")

    def __init__(self, uid: int, site: Optional[Site]):
        self.uid = uid
        self.site = site

    def __repr__(self) -> str:
        return f"<waitgroup#{self.uid}>"


class CondVal(Val):
    __slots__ = ("uid", "site", "locker")

    def __init__(self, uid: int, site: Optional[Site],
                 locker: Optional[MutexVal]):
        self.uid = uid
        self.site = site
        self.locker = locker

    def __repr__(self) -> str:
        return f"<cond#{self.uid}>"


class SemaVal(Val):
    __slots__ = ("uid", "site", "count")

    def __init__(self, uid: int, site: Optional[Site],
                 count: Optional[int]):
        self.uid = uid
        self.site = site
        self.count = count

    def __repr__(self) -> str:
        return f"<sema#{self.uid} count={self.count}>"


class OnceVal(Val):
    __slots__ = ("uid",)

    def __init__(self, uid: int):
        self.uid = uid


class TupleVal(Val):
    __slots__ = ("elems",)

    def __init__(self, elems: List[Val]):
        self.elems = list(elems)


class ListVal(Val):
    """A list; ``exact`` means the element list is the precise contents
    (loop-built lists are summarized and inexact)."""

    __slots__ = ("elems", "exact")

    def __init__(self, elems: Optional[List[Val]] = None, exact: bool = True):
        self.elems = list(elems or [])
        self.exact = exact


class MapVal(Val):
    """Dict / Struct / GoMap with constant keys tracked."""

    __slots__ = ("entries", "exact")

    def __init__(self, entries: Optional[Dict[Any, Val]] = None,
                 exact: bool = True):
        self.entries = dict(entries or {})
        self.exact = exact


class BoxVal(Val):
    __slots__ = ("value",)

    def __init__(self, value: Val):
        self.value = value


class ObjVal(Val):
    """Opaque heap object (Blob and friends)."""

    __slots__ = ("kind",)

    def __init__(self, kind: str = "object"):
        self.kind = kind


class RangeVal(Val):
    """``range(n)`` with statically-known or unknown trip count."""

    __slots__ = ("count",)

    def __init__(self, count: Optional[int]):
        self.count = count


class CaseVal(Val):
    """A select arm: ``("send"|"recv", channel-ish value)``."""

    __slots__ = ("kind", "channel", "site")

    def __init__(self, kind: str, channel: Val, site: Site):
        self.kind = kind
        self.channel = channel
        self.site = site


class InstrVal(Val):
    """A constructed-but-not-yet-yielded instruction."""

    __slots__ = ("mnemonic", "args", "kwargs", "site")

    def __init__(self, mnemonic: str, args: List[Val],
                 kwargs: Dict[str, Val], site: Site):
        self.mnemonic = mnemonic
        self.args = args
        self.kwargs = kwargs
        self.site = site


class FuncVal(Val):
    """A resolvable function: AST plus defining environment."""

    __slots__ = ("node", "env", "qualname", "file", "defaults",
                 "is_generator", "code_key")

    def __init__(self, node, env, qualname: str, file: str,
                 defaults: Optional[Dict[str, Val]] = None,
                 is_generator: bool = False,
                 code_key: Optional[Any] = None):
        self.node = node          # ast.FunctionDef
        self.env = env            # Env at definition point
        self.qualname = qualname
        self.file = file
        self.defaults = defaults or {}
        self.is_generator = is_generator
        self.code_key = code_key  # identity for recursion guards

    def __repr__(self) -> str:
        return f"<func {self.qualname}>"


class GoroutineVal(Val):
    __slots__ = ("body",)

    def __init__(self, body: BodyCtx):
        self.body = body


# ---------------------------------------------------------------------------
# Lowered ops
# ---------------------------------------------------------------------------


class Op:
    """One lowered concurrency instruction occurrence."""

    __slots__ = ("mnemonic", "site", "body", "seq", "cond_depth",
                 "mult", "via_select", "select_alternatives",
                 "operand", "value", "extra", "held", "unreachable",
                 "definitely_blocked")

    def __init__(self, mnemonic: str, site: Site, body: BodyCtx, seq: int,
                 cond_depth: int, mult: Mult, operand: Optional[Val] = None,
                 value: Optional[Val] = None, via_select: bool = False,
                 select_alternatives: bool = False,
                 extra: Optional[Dict[str, Any]] = None,
                 held: Tuple[Tuple[int, str], ...] = ()):
        self.mnemonic = mnemonic
        self.site = site
        self.body = body
        self.seq = seq
        self.cond_depth = cond_depth
        self.mult = mult                      # 1, n, or MANY
        self.operand = operand                # channel / mutex / wg / ...
        self.value = value                    # payload (Send value)
        self.via_select = via_select
        self.select_alternatives = select_alternatives
        self.extra = extra or {}
        self.held = held                      # ((mutex uid, "w"|"r"), ...)
        self.unreachable = False              # set by the rules fixpoint
        self.definitely_blocked = False

    @property
    def conditional(self) -> bool:
        return self.cond_depth > 0

    @property
    def guaranteed(self) -> bool:
        """Runs on every execution (of its body) at least once."""
        return not self.conditional and not self.unreachable

    def __repr__(self) -> str:
        flags = []
        if self.conditional:
            flags.append("cond")
        if self.mult == MANY:
            flags.append("loop")
        elif self.mult != 1:
            flags.append(f"x{self.mult}")
        if self.via_select:
            flags.append("select")
        if self.unreachable:
            flags.append("unreachable")
        tag = f" [{','.join(flags)}]" if flags else ""
        return f"<op {self.mnemonic}@{self.site}{tag}>"


class GiveUp:
    """A point where the analysis soundly gave up."""

    __slots__ = ("site", "reason", "detail")

    def __init__(self, site: Site, reason: str, detail: str = ""):
        self.site = site
        self.reason = reason      # "dynamic-channel-choice", ...
        self.detail = detail

    def __repr__(self) -> str:
        return f"<give-up {self.reason}@{self.site}>"


class Extraction:
    """Everything the extractor learned about one entry function."""

    __slots__ = ("entry_name", "file", "line", "end_line", "ops", "bodies",
                 "channels", "mutexes", "waitgroups", "conds", "semas",
                 "giveups", "returned")

    def __init__(self, entry_name: str, file: str, line: int,
                 end_line: int = 0):
        self.entry_name = entry_name
        self.file = file
        self.line = line
        self.end_line = end_line or line
        self.ops: List[Op] = []
        self.bodies: List[BodyCtx] = []
        self.channels: List[ChanVal] = []
        self.mutexes: List[MutexVal] = []
        self.waitgroups: List[WgVal] = []
        self.conds: List[CondVal] = []
        self.semas: List[SemaVal] = []
        self.giveups: List[GiveUp] = []
        self.returned: Optional[Val] = None

    def ops_for(self, val: Val, mnemonics: Tuple[str, ...],
                include_unreachable: bool = False) -> List[Op]:
        uid = getattr(val, "uid", None)
        out = []
        for op in self.ops:
            if op.mnemonic not in mnemonics:
                continue
            if getattr(op.operand, "uid", -1) != uid:
                continue
            if op.unreachable and not include_unreachable:
                continue
            out.append(op)
        return out

    def __repr__(self) -> str:
        return (f"<extraction {self.entry_name} ops={len(self.ops)} "
                f"bodies={len(self.bodies)} giveups={len(self.giveups)}>")


class Diagnostic:
    """One finding: rule id, severity, anchor site, provenance chain."""

    __slots__ = ("rule", "severity", "site", "function", "message",
                 "provenance", "channel_label", "expected", "suppressed")

    def __init__(self, rule: str, severity: str, site: Site, function: str,
                 message: str,
                 provenance: Optional[List[Tuple[str, str, str]]] = None,
                 channel_label: str = ""):
        self.rule = rule
        self.severity = severity
        self.site = site
        self.function = function
        self.message = message
        #: ``(role, site-str, detail)`` steps, e.g. make -> go -> send.
        self.provenance = provenance or []
        self.channel_label = channel_label
        self.expected = False     # matched a `# vet: expect` annotation
        self.suppressed = False   # matched a `# vet: ok` annotation

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "site": str(self.site),
            "function": self.function,
            "message": self.message,
            "provenance": [
                {"role": role, "site": site, "detail": detail}
                for role, site, detail in self.provenance
            ],
            "channel_label": self.channel_label,
            "expected": self.expected,
            "suppressed": self.suppressed,
        }

    def format(self) -> str:
        mark = ""
        if self.expected:
            mark = " (expected)"
        elif self.suppressed:
            mark = " (suppressed)"
        lines = [f"{self.site}: {self.severity}: {self.rule}: "
                 f"{self.message}{mark}"]
        for role, site, detail in self.provenance:
            text = f"    {role:<10s} {site}"
            if detail:
                text += f"  ({detail})"
            lines.append(text)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<diag {self.rule} [{self.severity}] at {self.site}>"


class FunctionReport:
    """Analysis outcome for one entry function."""

    __slots__ = ("name", "file", "line", "end_line", "diagnostics",
                 "giveups", "escaped_channels", "stats")

    def __init__(self, name: str, file: str, line: int, end_line: int = 0):
        self.name = name
        self.file = file
        self.line = line
        self.end_line = end_line or line
        self.diagnostics: List[Diagnostic] = []
        self.giveups: List[GiveUp] = []
        self.escaped_channels: int = 0
        self.stats: Dict[str, int] = {}

    @property
    def verdict(self) -> str:
        worst = INFO
        for diag in self.diagnostics:
            if diag.suppressed:
                continue
            if SEVERITY_RANK[diag.severity] > SEVERITY_RANK[worst]:
                worst = diag.severity
        if worst == ERROR:
            return LEAKY
        if worst == WARNING:
            return SUSPECT
        if self.giveups:
            return UNKNOWN
        return CLEAN

    def rules_hit(self) -> List[str]:
        return sorted({d.rule for d in self.diagnostics if not d.suppressed})

    def to_dict(self) -> Dict[str, Any]:
        return {
            "function": self.name,
            "file": self.file,
            "line": self.line,
            "verdict": self.verdict,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "giveups": [
                {"site": str(g.site), "reason": g.reason, "detail": g.detail}
                for g in self.giveups
            ],
            "escaped_channels": self.escaped_channels,
            "stats": dict(sorted(self.stats.items())),
        }

    def __repr__(self) -> str:
        return (f"<fn-report {self.name} verdict={self.verdict} "
                f"diags={len(self.diagnostics)}>")
