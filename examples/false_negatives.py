#!/usr/bin/env python3
"""GOLF's deliberate blind spots (paper, sections 4.3 and 5.5).

Three programs whose goroutines are deadlocked but that GOLF treats
specially, each for a principled reason:

- Listing 4: a *global* channel is intrinsically reachable, so its
  blocked sender can never be proven dead (soundness over completeness).
- Listing 5: a runaway heartbeat goroutine keeps the dispatcher — and
  through it the blocking channel — reachable forever.
- Listing 6: the leaked goroutine's stack holds an object with a
  finalizer; GOLF reports it but refuses to reclaim it, because running
  the finalizer would be observable (here: a division by zero!).

Run:  python examples/false_negatives.py
"""

from repro import GolfConfig, Runtime
from repro.baselines.goleak import find_leaks
from repro.runtime.clock import MICROSECOND, MILLISECOND
from repro.runtime.instructions import (
    Alloc,
    Go,
    MakeChan,
    Recv,
    Send,
    SetFinalizer,
    SetGlobal,
    Sleep,
)
from repro.runtime.objects import Box, Struct


# vet: expect send-no-recv
def listing4_global_channel():
    ch = yield MakeChan(0, label="package-level ch")
    yield SetGlobal("pkg.ch", ch)

    def sender():
        yield Send(ch, 1)

    yield Go(sender, name="global-ch-sender")


# vet: expect send-no-recv
def listing5_runaway_heartbeat():
    ch = yield MakeChan(0, label="dispatcher.ch")
    dispatcher = yield Alloc(Struct(ch=ch, ticks=0))

    def heartbeat():
        while True:
            yield Sleep(250 * MICROSECOND)
            dispatcher["ticks"] = dispatcher["ticks"] + 1

    def sender():
        yield Send(dispatcher["ch"], ())

    yield Go(heartbeat, name="heartbeat")
    yield Go(sender, name="dispatcher-sender")


# vet: expect recv-no-send
def listing6_finalizer(messages):
    ch = yield MakeChan(0, label="values")

    def print_average():
        values = yield Alloc(Box([]))

        def finalizer(box):
            numbers = box.value
            messages.append(
                "Avg.: %s" % (sum(numbers) / len(numbers)))  # 0/0!

        yield SetFinalizer(values, finalizer)
        received, _ = yield Recv(ch)  # caller never sends
        values.value = received

    yield Go(print_average, name="averager")


def run(body, *args):
    rt = Runtime(procs=2, seed=5, config=GolfConfig())

    def main():
        yield Go(body, *args)
        yield Sleep(MILLISECOND)

    rt.spawn_main(main)
    rt.run()
    rt.gc_until_quiescent()
    return rt


if __name__ == "__main__":
    print("Listing 4 - global channel:")
    rt = run(listing4_global_channel)
    print(f"  GOLF reports: {rt.reports.total()} (sound: the global "
          f"channel could still be used)")
    print(f"  goleak sees:  {len(find_leaks(rt))} lingering goroutine(s)")
    assert rt.reports.total() == 0

    print("Listing 5 - runaway heartbeat pins the dispatcher:")
    rt = run(listing5_runaway_heartbeat)
    print(f"  GOLF reports: {rt.reports.total()}")
    print(f"  goleak sees:  {len(find_leaks(rt))} lingering goroutine(s)")
    assert rt.reports.total() == 0

    print("Listing 6 - finalizer on the leaked stack:")
    messages = []
    rt = run(listing6_finalizer, messages)
    print(f"  GOLF reports: {rt.reports.total()} "
          f"(detected, NOT reclaimed)")
    observed = messages if messages else "none (matches unmodified Go)"
    print(f"  finalizer output observed: {observed}")
    assert rt.reports.total() == 1
    assert messages == []  # the division by zero never happens
