"""Select-order fuzzing combined with GOLF detection (paper, section 7).

The paper notes that GFuzz's message-reordering exploration and GOLF's
GC-based detection are complementary and suggests combining them as
future work; :mod:`repro.fuzz.gfuzz` implements that combination for
this runtime.
"""

from repro.fuzz.gfuzz import FuzzResult, SelectProfile, fuzz_program

__all__ = ["FuzzResult", "SelectProfile", "fuzz_program"]
