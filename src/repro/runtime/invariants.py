"""Internal-consistency checking for the runtime (schedcheck analog).

``check_invariants`` sweeps the scheduler, heap and wait queues for
states that should be impossible — a runnable goroutine parked in the
semaphore table, an active sudog whose owner is not waiting, broken heap
accounting — and returns human-readable violations.  The property-based
suites call it after every random program, so any regression that bends
an internal invariant surfaces immediately even when the program's
visible behavior happens to stay correct.

The chaos engine (:mod:`repro.chaos`) leans on this module as its main
oracle: it calls ``check_invariants`` after every injected fault, so the
checks here also cover the states only faults can produce — a reclaimed
goroutine's sudog lingering in a channel or semaphore wait queue, a
pooled descriptor still registered in the semaphore table, dead
goroutines holding simulated stack bytes, and live-byte accounting after
forced reclamation of a leaked subgraph.
"""

from __future__ import annotations

from typing import List

from repro.runtime.goroutine import GStatus


def check_invariants(rt) -> List[str]:
    """Return a list of invariant violations (empty = healthy)."""
    problems: List[str] = []
    sched = rt.sched

    # -- run queue ----------------------------------------------------------
    for g in sched.runq:
        if g.status != GStatus.RUNNABLE:
            problems.append(
                f"runq holds non-runnable goroutine {g.goid} ({g.status})")

    # -- daemon run queue / processor ---------------------------------------
    for g in sched.daemon_runq:
        if g.status != GStatus.RUNNABLE:
            problems.append(
                f"daemon runq holds non-runnable goroutine "
                f"{g.goid} ({g.status})")
        if not g.is_daemon:
            problems.append(
                f"daemon runq holds non-daemon goroutine {g.goid}")

    # -- processors ----------------------------------------------------------
    for p in sched.procs + [sched.daemon_proc]:
        if p.g is not None and p.g.status != GStatus.RUNNING:
            problems.append(
                f"proc {p.pid} holds non-running goroutine "
                f"{p.g.goid} ({p.g.status})")
    if sched.daemon_proc.g is not None and not sched.daemon_proc.g.is_daemon:
        problems.append(
            f"daemon proc holds non-daemon goroutine "
            f"{sched.daemon_proc.g.goid}")

    # -- free pool -------------------------------------------------------------
    for g in sched.gfree:
        if g.status != GStatus.DEAD:
            problems.append(
                f"free pool holds live goroutine {g.goid} ({g.status})")
        if g.sudogs:
            problems.append(f"pooled goroutine {g.goid} retains sudogs")

    # -- waiting goroutines -------------------------------------------------------
    for g in sched.allgs:
        if g.status == GStatus.WAITING:
            if g.wait_reason is None:
                problems.append(
                    f"waiting goroutine {g.goid} has no wait reason")
            elif g.is_blocked_detectably and not g.blocked_on:
                problems.append(
                    f"detectably blocked goroutine {g.goid} has "
                    f"empty B(g)")
            if g.is_blocked_detectably and g.wake_at is not None:
                # B(g)-blocked waits have no deadline: a timer on a
                # detectably blocked goroutine means a spurious wakeup
                # could resume it past the detector's reasoning.
                problems.append(
                    f"detectably blocked goroutine {g.goid} has a "
                    f"timer deadline ({g.wake_at})")
        elif g.status in (GStatus.RUNNABLE, GStatus.RUNNING):
            for sd in g.sudogs:
                if sd.active:
                    problems.append(
                        f"runnable goroutine {g.goid} has an active sudog")

    # -- dead goroutines (descriptor hygiene after reclaim/panic) -----------
    for g in sched.allgs:
        if g.status != GStatus.DEAD:
            continue
        if g.stack_bytes != 0:
            problems.append(
                f"dead goroutine {g.goid} retains {g.stack_bytes} "
                f"stack bytes")
        if g.defers:
            problems.append(
                f"dead goroutine {g.goid} retains {len(g.defers)} "
                f"deferred callables")
        if g.panicking is not None:
            problems.append(
                f"dead goroutine {g.goid} still flagged panicking")

    # -- descriptor residency ------------------------------------------------
    # Every descriptor the scheduler knows is a pinned heap allocation;
    # losing one from the heap (while the scheduler still schedules it)
    # means the accounting and the collector disagree about what exists.
    for g in sched.allgs:
        if not rt.heap.contains(g):
            problems.append(
                f"goroutine {g.goid} in allgs but not on the heap")

    # -- channel wait queues ---------------------------------------------------------
    terminal = (GStatus.DEAD,)
    for obj in rt.heap.objects():
        if obj.kind != "chan":
            continue
        for queue_name in ("sendq", "recvq"):
            for sd in getattr(obj, queue_name):
                if not sd.active:
                    continue
                g = sd.g
                if g.status in terminal:
                    problems.append(
                        f"channel 0x{obj.addr:x} {queue_name} holds an "
                        f"active sudog of dead goroutine {g.goid}")
                elif sd not in g.sudogs:
                    problems.append(
                        f"active sudog on 0x{obj.addr:x} not owned by "
                        f"goroutine {g.goid}")

    # -- semaphore table ----------------------------------------------------------------
    # PENDING_RECLAIM is legitimate here: a reported sem-blocked
    # goroutine stays queued until the *next* cycle's reclaim purges it.
    sem_ok = (GStatus.WAITING, GStatus.DEADLOCKED, GStatus.PENDING_RECLAIM)
    for key in sched.semtable.keys():
        for g in sched.semtable.waiters(key):
            if g.status not in sem_ok:
                problems.append(
                    f"semtable key 0x{key:x} holds goroutine {g.goid} "
                    f"in state {g.status}")

    # -- heap accounting --------------------------------------------------------------------
    actual_bytes = sum(o.size for o in rt.heap.objects())
    if rt.heap.live_bytes != actual_bytes:
        problems.append(
            f"heap byte accounting drift: counter={rt.heap.live_bytes} "
            f"actual={actual_bytes}")
    actual_objects = sum(1 for _ in rt.heap.objects())
    if rt.heap.live_objects != actual_objects:
        problems.append(
            f"heap object accounting drift: "
            f"counter={rt.heap.live_objects} actual={actual_objects}")

    return problems
