"""Property-based tests: random programs over sync primitives.

Complements ``test_prop_runtime`` (channels/select): here random workers
interact through mutexes and WaitGroups with structurally balanced
acquire/release sequences (so the only possible blocking is contention,
never a missing release), and the suite asserts that GOLF stays silent
— plus mutual-exclusion and counter invariants.
"""

from hypothesis import given, settings, strategies as st

from repro import GolfConfig, Runtime
from repro.runtime.clock import MICROSECOND, MILLISECOND
from repro.runtime.instructions import (
    Go,
    Lock,
    NewMutex,
    NewWaitGroup,
    RunGC,
    Sleep,
    Unlock,
    WgAdd,
    WgDone,
    WgWait,
    Work,
)

# Each worker's plan: a list of (mutex_index, hold_work_us) critical
# sections to execute in order.
worker_plans = st.lists(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=2),
                  st.integers(min_value=1, max_value=5)),
        min_size=1, max_size=4,
    ),
    min_size=1, max_size=5,
)


def _run_locked_program(plans, seed, procs):
    rt = Runtime(procs=procs, seed=seed, config=GolfConfig())
    shared = {"counter": 0, "max_inside": 0, "inside": 0}

    def main():
        mutexes = []
        for _ in range(3):
            mu = yield NewMutex()
            mutexes.append(mu)
        wg = yield NewWaitGroup()

        def worker(plan):
            for mutex_index, hold_us in plan:
                mu = mutexes[mutex_index]
                yield Lock(mu)
                shared["inside"] += 1
                shared["max_inside"] = max(shared["max_inside"],
                                           shared["inside"])
                yield Work(hold_us)
                shared["counter"] += 1
                shared["inside"] -= 1
                yield Unlock(mu)
            yield WgDone(wg)

        for plan in plans:
            yield WgAdd(wg, 1)
            yield Go(worker, plan)
        yield Sleep(10 * MICROSECOND)
        yield RunGC()
        yield WgWait(wg)
        yield RunGC()

    rt.spawn_main(main)
    status = rt.run(until_ns=100 * MILLISECOND,
                    max_instructions=500_000)
    return rt, status, shared


@settings(max_examples=60, deadline=None)
@given(plans=worker_plans, seed=st.integers(0, 2 ** 16),
       procs=st.sampled_from([1, 2, 4]))
def test_contended_locks_never_reported(plans, seed, procs):
    """Lock contention is not a deadlock: GOLF must stay silent, and the
    program must complete (no lost wakeups in the semaphore table)."""
    rt, status, shared = _run_locked_program(plans, seed, procs)
    assert status == "main-exited"
    assert rt.reports.total() == 0
    assert len(rt.sched.semtable) == 0


@settings(max_examples=60, deadline=None)
@given(plans=worker_plans, seed=st.integers(0, 2 ** 16),
       procs=st.sampled_from([1, 2, 4]))
def test_all_critical_sections_execute(plans, seed, procs):
    rt, status, shared = _run_locked_program(plans, seed, procs)
    assert shared["counter"] == sum(len(plan) for plan in plans)


@settings(max_examples=40, deadline=None)
@given(
    workers=st.integers(min_value=1, max_value=8),
    seed=st.integers(0, 2 ** 16),
)
def test_single_mutex_enforces_mutual_exclusion(workers, seed):
    """With one shared mutex, at most one worker is ever inside."""
    plans = [[(0, 3)] for _ in range(workers)]
    rt, status, shared = _run_locked_program(plans, seed, procs=4)
    assert status == "main-exited"
    assert shared["max_inside"] == 1


@settings(max_examples=40, deadline=None)
@given(
    adds=st.integers(min_value=0, max_value=10),
    seed=st.integers(0, 2 ** 16),
)
def test_waitgroup_counter_reaches_zero(adds, seed):
    rt = Runtime(procs=2, seed=seed, config=GolfConfig())
    state = {}

    def main():
        wg = yield NewWaitGroup()

        def done_later(delay):
            yield Sleep(delay)
            yield WgDone(wg)

        for i in range(adds):
            yield WgAdd(wg, 1)
            yield Go(done_later, (i % 3 + 1) * MICROSECOND)
        yield WgWait(wg)
        state["counter_at_wait_return"] = wg.counter

    rt.spawn_main(main)
    assert rt.run(until_ns=50 * MILLISECOND,
                  max_instructions=200_000) == "main-exited"
    assert state["counter_at_wait_return"] == 0
    assert rt.reports.total() == 0
