"""The leak-provenance engine: causal "why-leaked" evidence per report.

When GOLF condemns a goroutine (``Collector._report_and_recover``), this
module captures the *marking-time* evidence the verdict rests on, before
recovery re-marks the condemned subgraph and before masks are dropped:

- the **blocked operation** — wait reason and the full observable state
  of every object in ``B(g)`` (channel capacity/buffer/queues, the ``ε``
  sentinel for nil-channel waits);
- the **wait-for graph** among condemned goroutines — who else is parked
  on the same objects (channel sudog queues and shared ``B(g)`` sets);
- the **reference-path absence proof** — after the reachable-liveness
  fixpoint each blocking object is unmarked, i.e. no path from live
  roots reaches it; the only referencers are other condemned goroutines,
  which the capture enumerates;
- the **last-communication partners** — the channel-side transfer
  ledger (last sender/receiver goid, total transfers) plus, when the
  execution tracer is attached, the goroutines the trace shows once
  waited on or communicated over the blocking object and then moved on
  (the "abandoners");
- a **minimal event slice** from the trace ending at the fatal park.

Capture runs unconditionally on every detection — tracer or not — so
every leak report in the microbench registry carries a non-empty causal
evidence chain.  All inputs are virtual-clock/heap-address deterministic,
so rendered artifacts are byte-identical across runs at a fixed seed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.trace import events as ev
from repro.trace.events import describe_object, short_object

#: Cap on the per-leak minimal event slice.
EVENT_SLICE_LIMIT = 20


class ProvenanceRecord:
    """The causal evidence behind one partial-deadlock verdict."""

    __slots__ = ("goid", "glabel", "name", "go_site", "block_site",
                 "wait_reason", "gc_cycle", "detected_at_ns", "blocked_op",
                 "reachability", "waitfor", "partners", "abandoned_by",
                 "event_slice", "evidence")

    def __init__(self, goid: int, glabel: str, name: str, go_site: str,
                 block_site: str, wait_reason: str, gc_cycle: int,
                 detected_at_ns: int):
        self.goid = goid
        self.glabel = glabel
        self.name = name
        self.go_site = go_site
        self.block_site = block_site
        self.wait_reason = wait_reason
        self.gc_cycle = gc_cycle
        self.detected_at_ns = detected_at_ns
        #: Descriptions of every object in ``B(g)`` at condemnation time.
        self.blocked_op: List[Dict[str, Any]] = []
        #: Per-object absence proof (marked bit + referencer census).
        self.reachability: List[Dict[str, Any]] = []
        #: Wait-for edges: other goroutines parked on the same objects.
        self.waitfor: List[Dict[str, Any]] = []
        #: Last-communication ledger per blocking channel.
        self.partners: List[Dict[str, Any]] = []
        #: Goroutines the trace shows waited on / used the blocking
        #: object and then proceeded (trace-derived; empty w/o tracer).
        self.abandoned_by: List[str] = []
        #: Minimal event slice ending at the fatal park (trace-derived).
        self.event_slice: List[Dict[str, Any]] = []
        #: The ordered causal evidence chain (always non-empty).
        self.evidence: List[str] = []

    def as_dict(self) -> dict:
        return {
            "goid": self.goid,
            "glabel": self.glabel,
            "name": self.name,
            "go_site": self.go_site,
            "block_site": self.block_site,
            "wait_reason": self.wait_reason,
            "gc_cycle": self.gc_cycle,
            "detected_at_ns": self.detected_at_ns,
            "blocked_op": self.blocked_op,
            "reachability": self.reachability,
            "waitfor": self.waitfor,
            "partners": self.partners,
            "abandoned_by": self.abandoned_by,
            "event_slice": self.event_slice,
            "evidence": self.evidence,
        }

    def format(self) -> str:
        """Deterministic text rendering of the why-leaked report."""
        lines = [
            f"why-leaked: goroutine {self.glabel} [{self.wait_reason}]",
            f"  spawned at: {self.go_site}",
            f"  blocked at: {self.block_site}",
            f"  detected:   GC cycle {self.gc_cycle} "
            f"@ {self.detected_at_ns}ns",
            "  evidence:",
        ]
        for i, step in enumerate(self.evidence, 1):
            lines.append(f"    {i}. {step}")
        if self.blocked_op:
            lines.append("  blocked on:")
            for desc in self.blocked_op:
                lines.append(f"    - {short_object(desc)}")
        if self.waitfor:
            lines.append("  wait-for edges:")
            for edge in self.waitfor:
                lines.append(
                    f"    - {edge['from']} -> {edge['to']} "
                    f"via {edge['via']} ({edge['peer_state']})")
        if self.event_slice:
            lines.append(
                f"  event slice (last {len(self.event_slice)} events "
                "up to the fatal park):")
            for entry in self.event_slice:
                lines.append(
                    f"    [{entry['t_ns']:>12d}ns] {entry['kind']}"
                    + (f" {entry['detail']}" if entry["detail"] else ""))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<provenance {self.glabel} [{self.wait_reason}] "
                f"{len(self.evidence)} evidence steps>")


def capture_provenance(deadlocked: List[Any], heap, sched, gc_cycle: int,
                       detected_at_ns: int,
                       tracer=None) -> Dict[int, "ProvenanceRecord"]:
    """Capture evidence for every condemned goroutine, keyed by goid.

    Must run *before* recovery marks the condemned subgraphs: the
    absence proof reads the post-fixpoint mark bits, and marking the
    first goroutine's subgraph would flip the bits a later goroutine's
    proof depends on.
    """
    condemned_goids = {g.goid for g in deadlocked}
    # Referencer census: which condemned goroutines' stacks reach which
    # blocking objects (computed once for the whole set).
    stack_reach: Dict[int, set] = {}
    for g in deadlocked:
        reach = set()
        for obj in g.stack_heap_refs():
            reach.add(obj.addr)
        stack_reach[g.goid] = reach

    records: Dict[int, ProvenanceRecord] = {}
    for g in deadlocked:
        rec = ProvenanceRecord(
            goid=g.goid,
            glabel=g.trace_label,
            name=g.name,
            go_site=g.go_site,
            block_site=g.block_site(),
            wait_reason=g.wait_reason.value if g.wait_reason else "unknown",
            gc_cycle=gc_cycle,
            detected_at_ns=detected_at_ns,
        )
        for obj in g.blocked_on:
            desc = describe_object(obj)
            rec.blocked_op.append(desc)
            rec.reachability.append(
                _absence_proof(obj, desc, g, deadlocked, stack_reach, heap))
            _waitfor_edges(rec, obj, desc, g, deadlocked, condemned_goids)
            if desc.get("kind") == "chan":
                rec.partners.append({
                    "chan": obj.addr,
                    "last_sender_goid": obj.last_sender_goid,
                    "last_receiver_goid": obj.last_receiver_goid,
                    "transfers": obj.total_transfers,
                })
        if tracer is not None:
            _trace_evidence(rec, g, condemned_goids, tracer)
        rec.evidence = _build_evidence_chain(rec)
        records[g.goid] = rec
    return records


def _absence_proof(obj, desc, g, deadlocked, stack_reach,
                   heap) -> Dict[str, Any]:
    """The reference-path(-absence) evidence for one blocking object."""
    if desc.get("kind") == "epsilon":
        return {"object": desc, "verdict": "epsilon",
                "marked": False, "condemned_referencers": []}
    if not heap.contains(obj):
        return {"object": desc, "verdict": "off-heap",
                "marked": False, "condemned_referencers": []}
    referencers = sorted(
        g2.goid for g2 in deadlocked
        if obj.addr in stack_reach[g2.goid]
        or any(o is obj for o in g2.blocked_on))
    return {
        "object": desc,
        "marked": heap.is_marked(obj),
        "condemned_referencers": referencers,
        "verdict": ("marked-live" if heap.is_marked(obj)
                    else "unreachable-from-live-roots"),
    }


def _waitfor_edges(rec, obj, desc, g, deadlocked, condemned_goids) -> None:
    """Edges to the other goroutines parked on the same object."""
    via = short_object(desc)
    peers: Dict[int, str] = {}
    if desc.get("kind") == "chan":
        for queue, role in ((obj.sendq, "parked sender"),
                            (obj.recvq, "parked receiver")):
            for sd in queue:
                if sd.active and sd.g is not g:
                    peers.setdefault(sd.g.goid, role)
    for g2 in deadlocked:
        if g2 is not g and any(o is obj for o in g2.blocked_on):
            peers.setdefault(g2.goid, "blocked on same object")
    for goid in sorted(peers):
        rec.waitfor.append({
            "from": rec.glabel,
            "from_goid": rec.goid,
            "to": f"g{goid}",
            "to_goid": goid,
            "via": via,
            "peer_state": peers[goid],
            "peer_condemned": goid in condemned_goids,
        })


def _trace_evidence(rec, g, condemned_goids, tracer) -> None:
    """Trace-derived evidence: the minimal event slice and abandoners."""
    history = tracer.for_goroutine(g.goid)
    last_park = None
    for i, e in enumerate(history):
        if e.kind == ev.GO_PARK:
            last_park = i
    if last_park is not None:
        window = history[max(0, last_park + 1 - EVENT_SLICE_LIMIT)
                         :last_park + 1]
        rec.event_slice = [
            {"t_ns": e.t_ns, "kind": e.kind, "detail": e.detail}
            for e in window
        ]
    # Abandoners: other, non-condemned goroutines the trace shows once
    # parked on / communicated over one of the blocking objects.
    addrs = {d["addr"] for d in rec.blocked_op if d.get("addr")}
    if not addrs:
        return
    abandoners: Dict[int, str] = {}
    for e in tracer.events:
        if e.goid == g.goid or e.goid in condemned_goids or e.goid == 0:
            continue
        if not e.args:
            continue
        if e.kind == ev.GO_PARK:
            if any(d.get("addr") in addrs
                   for d in e.args.get("blocked_on", ())):
                abandoners[e.goid] = "once waited here, then proceeded"
        elif e.args.get("chan") in addrs:
            abandoners.setdefault(e.goid, f"last touched it via {e.kind}")
    label = {e.goid: (e.args or {}).get("label", f"g{e.goid}")
             for e in tracer.of_kind(ev.GO_CREATE)}
    rec.abandoned_by = [
        f"{label.get(goid, f'g{goid}')}: {why}"
        for goid, why in sorted(abandoners.items())
    ]


def _build_evidence_chain(rec) -> List[str]:
    """The ordered causal chain; by construction never empty."""
    chain = [
        f"goroutine {rec.glabel} is parked at {rec.block_site} "
        f"in state [{rec.wait_reason}], spawned at {rec.go_site}",
    ]
    if rec.blocked_op:
        ops = "; ".join(short_object(d) for d in rec.blocked_op)
        chain.append(f"its blocking operation B(g) waits on: {ops}")
    else:
        chain.append("its blocking operation has an empty B(g) set")
    eps = [d for d in rec.blocked_op if d.get("kind") == "epsilon"]
    if eps:
        chain.append(
            "B(g) contains the epsilon sentinel: a nil-channel or "
            "zero-case-select wait no memory write can ever complete")
    unreachable = [r for r in rec.reachability
                   if r["verdict"] == "unreachable-from-live-roots"]
    for proof in unreachable:
        refs = proof["condemned_referencers"]
        others = [goid for goid in refs if goid != rec.goid]
        who = (f"only condemned goroutines {others} also reference it"
               if others else "no other goroutine references it at all")
        chain.append(
            f"after the reachable-liveness fixpoint of GC cycle "
            f"{rec.gc_cycle}, {short_object(proof['object'])} is "
            f"unmarked: no path from live roots reaches it, and {who}")
    for p in rec.partners:
        if p["transfers"] == 0:
            chain.append(
                f"no message was ever transferred on chan "
                f"0x{p['chan']:x}: the expected partner never engaged")
        else:
            chain.append(
                f"last communication on chan 0x{p['chan']:x}: sender "
                f"g{p['last_sender_goid']}, receiver "
                f"g{p['last_receiver_goid']}, "
                f"{p['transfers']} transfer(s) total")
    if rec.waitfor:
        peers = ", ".join(
            f"{e['to']} ({e['peer_state']})" for e in rec.waitfor)
        chain.append(f"wait-for peers on the same object(s): {peers}")
    for entry in rec.abandoned_by:
        chain.append(f"trace evidence: {entry}")
    chain.append(
        "therefore no live goroutine can ever complete the blocking "
        "operation: partial deadlock")
    return chain
