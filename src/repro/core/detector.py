"""Reachable liveness: the GOLF deadlock detection fixpoint (paper §4).

A goroutine is *reachably live*, ``LIVE+(g)``, iff it is runnable (in the
broad sense: ``B(g) = ∅``, which includes waits the detector cannot
reason about), or some object in ``B(g)`` is transitively referenced by
another reachably live goroutine.  The least solution is computed with
the garbage collector's marking machinery:

1. seed the root set with runnable goroutines (and global data),
2. mark,
3. expand the root set with blocked goroutines whose blocking objects
   became marked,
4. repeat until a fixpoint; unmarked blocked goroutines are deadlocked.

Two implementations are provided, matching the paper's section 5.3:

- the *restart* strategy (the paper's implementation): full mark
  iterations alternate with root-expansion scans over all still-masked
  candidates (``O(N² + N·S)`` checks in the worst case);
- the *on-the-fly* strategy (the paper's sketched optimization): a
  reverse index from blocking objects to waiters lets newly marked
  concurrency objects enqueue their blocked goroutines immediately,
  completing in a single mark pass.

Both produce the same deadlocked set (asserted by the ablation tests);
they differ only in iteration counts and bookkeeping cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.gc.heap import Heap
from repro.gc.marking import mark_from
from repro.runtime.goroutine import EPSILON, Goroutine, GStatus
from repro.runtime.objects import HeapObject


class DetectionResult:
    """Outcome of one reachable-liveness computation."""

    __slots__ = ("live", "deadlocked", "mark_iterations",
                 "mark_work_units", "liveness_checks", "objects_marked",
                 "proof_skips")

    def __init__(self) -> None:
        self.live: List[Goroutine] = []
        self.deadlocked: List[Goroutine] = []
        self.mark_iterations = 0
        self.mark_work_units = 0
        self.liveness_checks = 0
        self.objects_marked = 0
        self.proof_skips = 0

    def __repr__(self) -> str:
        return (
            f"<detection live={len(self.live)} "
            f"deadlocked={len(self.deadlocked)} "
            f"iterations={self.mark_iterations} work={self.mark_work_units}>"
        )


def blocking_object_reachable(heap: Heap, obj: HeapObject) -> bool:
    """Is a blocking concurrency object reachable, for root expansion?

    The ``ε`` sentinel (nil channels, zero-case selects) is unreachable by
    definition.  Objects the collector cannot locate on the heap are
    conservatively deemed reachable (paper §5.3: "If GOLF cannot determine
    whether o is marked, it conservatively assumes [it is] reachable,
    e.g., as a global object").
    """
    if obj is EPSILON:
        return False
    if obj.addr == 0 or not heap.contains(obj):
        return True
    return heap.is_marked(obj)


#: Classification values cached on the goroutine descriptor.
CLASS_NEITHER = 0   # not a detection candidate (runnable, sleeping, DEAD...)
CLASS_CANDIDATE = 1  # detectably blocked: masked and fixpoint-checked
CLASS_PROOF_SKIP = 2  # detectably blocked but statically proven live


def classify(g: Goroutine) -> int:
    """Memoized detector classification of ``g``.

    The verdict depends only on wait state (status, wait reason,
    ``B(g)``, the system flag) and the ``proven_leak_free`` tags of the
    blocking objects.  Wait state bumps ``g.wait_seq`` at every
    transition, and proof tags are fixed at channel creation — so a
    cached verdict is valid exactly while ``wait_seq`` is unchanged, and
    daemon-cadence re-checks reclassify only goroutines that parked,
    woke, or died since the previous pass.
    """
    seq = g.wait_seq
    if g._class_seq == seq:
        return g._class_val
    if g.status == GStatus.WAITING and g.is_blocked_detectably:
        val = CLASS_PROOF_SKIP if proof_skip_eligible(g) else CLASS_CANDIDATE
    else:
        val = CLASS_NEITHER
    g._class_seq = seq
    g._class_val = val
    return val


def proof_skip_eligible(g: Goroutine) -> bool:
    """Whether static proofs let the detector treat ``g`` as live.

    True when the goroutine's entire (non-empty) blocking set consists
    of channels certified leak-free by ``repro.staticcheck`` (the
    ``proven_leak_free`` tag applied at ``make_chan`` time from the
    installed :class:`~repro.staticcheck.proofs.ProofRegistry`).  The
    certificate is a whole-program property — the composition proves no
    reachable terminal state leaves anyone blocked on the channel — so a
    goroutine blocked only on proven channels is guaranteed to be woken
    eventually and the fixpoint may seed it as a root without scanning.
    The ``ε`` sentinel and non-channel objects never carry the tag, so
    nil-channel and sync-object waits are never skipped.  With no
    registry installed no channel is tagged and this is always False —
    the tag itself is the proofs-on/off switch.
    """
    if not g.blocked_on:
        return False
    for obj in g.blocked_on:
        if not getattr(obj, "proven_leak_free", False):
            return False
    return True


def initial_roots(
    heap: Heap,
    goroutines: Sequence[Goroutine],
    dead_global_hints: frozenset = frozenset(),
) -> List[HeapObject]:
    """The GOLF initial root set ``R'_0``: global data plus every
    goroutine with ``B(g) = ∅`` (plus kept-deadlocked goroutines, which
    are treated as live forever — paper §5.5).

    ``dead_global_hints`` (the section 8 future-work extension) removes
    specific global entries from the liveness roots, letting the
    fixpoint see past globally reachable channels."""
    if dead_global_hints:
        roots = list(heap.globals.referents_excluding(dead_global_hints))
    else:
        roots = [heap.globals]
    for g in goroutines:
        if g.status == GStatus.DEAD:
            continue
        if g.runnable_for_liveness or g.status in (
                GStatus.DEADLOCKED, GStatus.PENDING_RECLAIM):
            roots.append(g)
    return roots


def detect(heap: Heap, goroutines: Sequence[Goroutine],
           on_the_fly: bool = False,
           dead_global_hints: frozenset = frozenset(),
           extra_roots: Sequence[HeapObject] = ()) -> DetectionResult:
    """Compute reachable liveness over ``goroutines``.

    Expects :meth:`Heap.begin_cycle` to have been called (fresh mark
    epoch).  On return, every reachably live object is marked, candidates
    found deadlocked remain masked (callers decide how to report/keep
    them), and live goroutines are unmasked.

    ``dead_global_hints`` removes the named globals from the liveness
    roots; since hinted objects are ordinary heap allocations, the
    reachability check then treats them like any other unmarked object.

    ``extra_roots`` are additional live references the runtime knows
    about beyond goroutine stacks and globals — the operands of
    instructions in flight on virtual processors.  Their owners are
    running goroutines (already roots), so including them cannot make a
    blocked goroutine live that Go's precise stack scan would not.
    """
    result = DetectionResult()
    if dead_global_hints:
        roots = list(heap.globals.referents_excluding(dead_global_hints))
    else:
        roots = [heap.globals]
    # One fused pass over ``goroutines`` replaces the historical
    # classify / mask / initial-root scans.  ``classify`` is memoized on
    # ``wait_seq``, so at daemon cadence only goroutines whose wait
    # state changed since the last pass pay the eligibility checks;
    # proof-skipped and runtime-owned goroutines are filtered here, up
    # front, never inside the fixpoint loop.  Masking only candidates
    # (rather than masking all detectably blocked then unmasking the
    # proof-skipped) leaves every goroutine's mask bit in the identical
    # state.
    candidates = []
    proof_skipped = []
    for g in goroutines:
        c = classify(g)
        if c == CLASS_NEITHER:
            # GOLF's initial roots R'_0: runnable in the broad sense
            # (B(g) = ∅), plus kept-deadlocked/pending goroutines, which
            # stay live forever (paper §5.5).
            if g.status != GStatus.DEAD:
                roots.append(g)
        elif c == CLASS_CANDIDATE:
            g.masked = True
            candidates.append(g)
        else:
            g.masked = False
            proof_skipped.append(g)
            roots.append(g)
    result.proof_skips = len(proof_skipped)
    roots.extend(extra_roots)

    if on_the_fly:
        _detect_on_the_fly(heap, candidates, roots, result)
    else:
        _detect_restart(heap, candidates, roots, result)

    deadlocked_set = set(id(g) for g in result.deadlocked)
    result.live = [
        g for g in goroutines
        if g.status != GStatus.DEAD and id(g) not in deadlocked_set
    ]
    return result


def _detect_restart(heap: Heap, candidates: List[Goroutine],
                    roots: List[HeapObject], result: DetectionResult) -> None:
    """The paper's implementation: restart marking per root expansion."""
    work, marked = mark_from(heap, roots, respect_masks=True)
    result.mark_iterations = 1
    result.mark_work_units = work
    result.objects_marked = marked
    result.deadlocked = expand_liveness_fixpoint(heap, candidates, result)


def expand_liveness_fixpoint(heap: Heap, candidates: List[Goroutine],
                             result: DetectionResult) -> List[Goroutine]:
    """Root-set expansion to fixpoint over still-masked candidates.

    Assumes an initial mark pass has already run (full roots in the
    atomic cycle; the concurrent MARKING phase plus the termination
    rescan in the incremental cycle — both paths share this exact loop,
    so the two ``--gc-mode`` values render identical verdicts).  Marks
    the subgraphs of goroutines proven live, accumulates iteration/work/
    check counters into ``result``, and returns the goroutines left
    masked: the deadlocked set.
    """
    pending = list(candidates)
    while True:
        newly_live = []
        still_pending = []
        for g in pending:
            result.liveness_checks += len(g.blocked_on)
            if any(blocking_object_reachable(heap, o) for o in g.blocked_on):
                newly_live.append(g)
            else:
                still_pending.append(g)
        if not newly_live:
            break
        for g in newly_live:
            g.masked = False
        work, marked = mark_from(heap, newly_live, respect_masks=True)
        result.mark_iterations += 1
        result.mark_work_units += work
        result.objects_marked += marked
        pending = still_pending
    return pending


def reexpand_on_wake(heap: Heap, g: Goroutine,
                     gray: List[HeapObject]) -> None:
    """Re-admit a masked candidate that a mutator woke mid-cycle.

    The paper's wake-during-detection case: while the incremental
    collector is concurrently marking, a live goroutine may complete the
    operation a masked candidate is blocked on and wake it.  The wake
    itself is the liveness proof — only a goroutine that could reach the
    blocking object can perform it — so the candidate rejoins the root
    set: unmask, shade its descriptor, and let the marker trace its
    stack.  This is the fixpoint's conclusion arriving early, never a
    soundness hazard; a wake that reaches a goroutine the detector
    already *reported* still trips ``SchedulerError``.
    """
    g.masked = False
    if heap.mark(g):
        gray.append(g)


def _detect_on_the_fly(heap: Heap, candidates: List[Goroutine],
                       roots: List[HeapObject],
                       result: DetectionResult) -> None:
    """Single-pass variant: newly marked concurrency objects immediately
    enqueue the goroutines blocked on them."""
    waiters: Dict[int, List[Goroutine]] = {}
    immediately_live: List[Goroutine] = []
    for g in candidates:
        conservative = False
        for obj in g.blocked_on:
            if obj is EPSILON:
                continue
            if obj.addr == 0 or not heap.contains(obj):
                conservative = True
                continue
            waiters.setdefault(obj.addr, []).append(g)
        if conservative:
            immediately_live.append(g)

    def on_marked(obj: HeapObject) -> Optional[List[HeapObject]]:
        blocked = waiters.get(obj.addr)
        if not blocked:
            return None
        extra: List[HeapObject] = []
        for g in blocked:
            result.liveness_checks += 1
            if g.masked:
                g.masked = False
                extra.append(g)
        return extra

    for g in immediately_live:
        g.masked = False
    work, marked = mark_from(
        heap, roots + list(immediately_live), respect_masks=True,
        on_marked=on_marked,
    )
    result.mark_iterations = 1
    result.mark_work_units = work
    result.objects_marked = marked
    result.deadlocked = [g for g in candidates if g.masked]
