"""Tests for the extended (modern-idiom) leak patterns.

Each pattern declares which sites GOLF must report and which only
goleak-style end-of-test inspection can see; the suite holds the
detector to exactly those verdicts.
"""

import pytest

from repro import GolfConfig, Runtime
from repro.baselines.goleak import find_leaks
from repro.microbench.extended import extended_benchmarks
from repro.runtime.clock import MILLISECOND
from repro.runtime.instructions import Go, RunGC, Sleep

ALL = extended_benchmarks()


def _run(bench, seed=11, procs=2):
    rt = Runtime(procs=procs, seed=seed, config=GolfConfig())

    def main():
        yield Go(bench.body)
        yield Sleep(2 * MILLISECOND)
        yield RunGC()
        yield RunGC()

    rt.spawn_main(main)
    rt.run(until_ns=200 * MILLISECOND, max_instructions=1_000_000)
    return rt


@pytest.mark.parametrize("bench", ALL, ids=lambda b: b.name)
class TestVerdicts:
    def test_golf_detects_exactly_the_declared_sites(self, bench):
        rt = _run(bench)
        detected = {r.label for r in rt.reports if r.label}
        assert detected == set(bench.golf_detects)

    def test_goleak_only_sites_linger_but_unreported(self, bench):
        rt = _run(bench)
        if not bench.goleak_only:
            pytest.skip("pattern has no goleak-only sites")
        lingering = {
            r.label for r in find_leaks(rt, include_external=True,
                                        include_running=True)
        }
        for label in bench.goleak_only:
            assert label in lingering
        detected = {r.label for r in rt.reports}
        assert not (set(bench.goleak_only) & detected)

    def test_verdicts_stable_across_seeds(self, bench):
        for seed in (3, 17):
            rt = _run(bench, seed=seed)
            assert {r.label for r in rt.reports if r.label} == set(
                bench.golf_detects), f"seed={seed}"


class TestSpecifics:
    def _by_name(self, name):
        return next(b for b in ALL if b.name == name)

    def test_errgroup_leaks_all_three_tasks(self):
        rt = _run(self._by_name("ext/errgroup-no-wait"))
        assert rt.reports.total() == 3

    def test_abba_reports_mutex_wait_reasons(self):
        rt = _run(self._by_name("ext/abba"))
        reasons = {r.wait_reason for r in rt.reports}
        assert reasons == {"sync.Mutex.Lock"}
        assert rt.reports.total() == 2

    def test_abba_sematable_cleaned_after_recovery(self):
        rt = _run(self._by_name("ext/abba"))
        rt.gc_until_quiescent()
        assert len(rt.sched.semtable) == 0

    def test_sema_pool_reports_semacquire(self):
        rt = _run(self._by_name("ext/sema-pool"))
        (report,) = list(rt.reports)
        assert report.wait_reason == "semacquire"

    def test_ctx_timeout_leak_reclaimed_memory(self):
        rt = _run(self._by_name("ext/ctx-timeout"))
        rt.gc_until_quiescent()
        # The worker and its channel are gone.
        from repro.runtime.goroutine import GStatus
        assert not [g for g in rt.sched.allgs
                    if g.status == GStatus.WAITING and not g.is_system]

    def test_suite_covers_both_kinds(self):
        assert any(b.golf_detects for b in ALL)
        assert any(b.goleak_only for b in ALL)
        names = [b.name for b in ALL]
        assert len(set(names)) == len(names) == 6
