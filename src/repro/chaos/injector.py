"""The fault injector: wires a :class:`FaultPlan` into a runtime.

The injector installs itself as the scheduler's ``fault_hook``, which
fires at every yield point — after an instruction's simulated cost
elapses, before its effect applies.  That is exactly a Go preemption
point: the goroutine's state is consistent, its in-flight operands are
still rooted by the processor, and anything the runtime does next must
tolerate being interrupted there.

After every *fired* injection the injector immediately sweeps the whole
runtime with :func:`repro.runtime.invariants.check_invariants` and
stores any violation — chaos without an oracle is just noise.
"""

from __future__ import annotations

from typing import List, Optional

from repro.chaos.plan import FaultKind, FaultPlan
from repro.errors import InjectedPanic
from repro.runtime.goroutine import Goroutine
from repro.runtime.instructions import Instruction


def _churn():
    """Body of a reuse-pressure goroutine: exits at its first yield
    point, sending its descriptor straight back to the free pool."""
    return
    yield  # pragma: no cover - makes this a generator function


class FaultInjector:
    """Delivers a plan's faults into one :class:`~repro.runtime.api.Runtime`.

    Args:
        rt: the runtime to perturb.
        plan: the fault plan (owns the RNG and the trace).

    Attributes:
        violations: invariant violations observed after injections, each
            prefixed with the fault record that preceded it.
    """

    def __init__(self, rt, plan: FaultPlan):
        self.rt = rt
        self.plan = plan
        self.violations: List[str] = []
        self.yield_points = 0

    def install(self) -> "FaultInjector":
        self.rt.sched.fault_hook = self._on_yield
        return self

    def uninstall(self) -> None:
        # == not `is`: each `self._on_yield` access builds a fresh bound
        # method, so identity comparison would never match.
        if self.rt.sched.fault_hook == self._on_yield:
            self.rt.sched.fault_hook = None

    # -- service-layer poll --------------------------------------------------

    def downstream_outcome(self):
        """Forwarded to the plan; see :meth:`FaultPlan.downstream_outcome`."""
        return self.plan.downstream_outcome()

    # -- the hook -----------------------------------------------------------

    def _on_yield(self, g: Goroutine,
                  instr: Instruction) -> Optional[BaseException]:
        """Scheduler fault hook: maybe perturb; maybe hand back a panic."""
        self.yield_points += 1
        kind = self.plan.next_fault()
        if kind is None:
            return None
        dispatch = self._DISPATCH[kind]
        result = dispatch(self, g, instr)
        if self.plan.trace and self.plan.trace[-1].outcome == "injected":
            record = self.plan.trace[-1]
            telemetry = self.rt.sched.telemetry
            if telemetry is not None:
                telemetry.on_fault_injected(
                    record.kind, record.target_goid, record.detail)
            tracer = self.rt.sched.tracer
            if tracer is not None:
                tracer.on_fault(record.kind, record.target_goid,
                                record.detail)
            self._check_after_fault(record)
        return result

    def _check_after_fault(self, record) -> None:
        for problem in self.rt.check_invariants():
            self.violations.append(f"after {record!r}: {problem}")
        # With the incremental collector mid-mark, also verify the
        # tricolor invariant the write barrier exists to maintain: no
        # black object may point at a white one.
        for problem in self.rt.collector.check_barrier_invariant():
            self.violations.append(f"after {record!r}: {problem}")

    # -- fault implementations ----------------------------------------------

    def _panic_self(self, g: Goroutine, instr) -> Optional[BaseException]:
        if g.is_system or (self.plan.scenario.spare_main
                           and g is self.rt.sched.main_g):
            self.plan.record(self.rt.clock.now, FaultKind.PANIC_SELF,
                             g.goid, "victim is system/main", "rejected")
            return None
        self.plan.record(self.rt.clock.now, FaultKind.PANIC_SELF, g.goid,
                         f"at {type(instr).__name__}", "injected")
        return InjectedPanic(f"chaos: injected panic in goroutine {g.goid}")

    def _panic_blocked(self, g: Goroutine, instr) -> None:
        sched = self.rt.sched
        victims = [
            v for v in sched.blocked_goroutines()
            if not v.is_system and not v.reported
            and not (self.plan.scenario.spare_main and v is sched.main_g)
        ]
        if not victims:
            self.plan.record(self.rt.clock.now, FaultKind.PANIC_BLOCKED,
                             0, "no eligible victim", "rejected")
            return None
        victim = victims[self.plan.rng.randrange(len(victims))]
        reason = victim.wait_reason.value if victim.wait_reason else "?"
        exc = InjectedPanic(
            f"chaos: injected panic in blocked goroutine {victim.goid}")
        delivered = sched.deliver_panic(victim, exc)
        self.plan.record(
            self.rt.clock.now, FaultKind.PANIC_BLOCKED, victim.goid,
            f"was [{reason}]", "injected" if delivered else "rejected")
        return None

    def _spurious_wake(self, g: Goroutine, instr) -> None:
        sched = self.rt.sched
        sleepers = [
            v for v in sched.blocked_goroutines()
            if not v.is_system and v.wake_at is not None
            and not v.is_blocked_detectably
        ]
        if not sleepers:
            self.plan.record(self.rt.clock.now, FaultKind.SPURIOUS_WAKE,
                             0, "no timer-parked goroutine", "rejected")
            return None
        victim = sleepers[self.plan.rng.randrange(len(sleepers))]
        woken = sched.try_spurious_wakeup(victim)
        self.plan.record(
            self.rt.clock.now, FaultKind.SPURIOUS_WAKE, victim.goid,
            f"deadline was {victim.wake_at or 0}",
            "injected" if woken else "rejected")
        return None

    def _force_gc(self, g: Goroutine, instr) -> None:
        self.plan.record(self.rt.clock.now, FaultKind.FORCE_GC, g.goid,
                         f"during {type(instr).__name__}", "injected")
        self.rt.gc(reason="chaos")
        return None

    def _gc_perturb(self, g: Goroutine, instr) -> None:
        factor = self.plan.pacing_factor()
        self.rt.collector.perturb_pacing(factor)
        self.plan.record(self.rt.clock.now, FaultKind.GC_PERTURB, g.goid,
                         f"factor={factor}", "injected")
        return None

    def _clock_jitter(self, g: Goroutine, instr) -> None:
        jitter = self.plan.jitter_ns()
        self.rt.clock.advance(jitter)
        self.plan.record(self.rt.clock.now, FaultKind.CLOCK_JITTER, g.goid,
                         f"+{jitter}ns", "injected")
        return None

    def _reuse_pressure(self, g: Goroutine, instr) -> None:
        count = self.plan.churn_count()
        for _ in range(count):
            self.rt.sched.spawn(_churn, name="chaos-churn", system=True,
                                go_site="<chaos>")
        self.plan.record(self.rt.clock.now, FaultKind.REUSE_PRESSURE,
                         g.goid, f"spawned {count} churn goroutines",
                         "injected")
        return None

    def _gc_budget_perturb(self, g: Goroutine, instr) -> None:
        config = self.rt.config
        if not config.incremental:
            self.plan.record(self.rt.clock.now, FaultKind.GC_BUDGET_PERTURB,
                             g.goid, "atomic gc mode", "rejected")
            return None
        mark = self.plan.rng.randrange(1, 33)
        sweep = self.plan.rng.randrange(1, 33)
        config.mark_budget = mark
        config.sweep_budget = sweep
        self.plan.record(self.rt.clock.now, FaultKind.GC_BUDGET_PERTURB,
                         g.goid, f"mark={mark} sweep={sweep}", "injected")
        return None

    def _barrier_jitter(self, g: Goroutine, instr) -> None:
        heap = self.rt.heap
        if not self.rt.config.incremental:
            self.plan.record(self.rt.clock.now, FaultKind.BARRIER_JITTER,
                             g.goid, "atomic gc mode", "rejected")
            return None
        # One-shot: the next write-barrier shade jumps the virtual clock,
        # modeling a fault landing inside the barrier itself.  The jitter
        # is drawn now so the trace is deterministic even if no shade
        # ever happens.
        jitter = self.plan.jitter_ns()
        clock = self.rt.clock

        def hook(src, obj):
            heap.barrier_hook = None
            clock.advance(jitter)

        heap.barrier_hook = hook
        self.plan.record(self.rt.clock.now, FaultKind.BARRIER_JITTER,
                         g.goid, f"armed +{jitter}ns", "injected")
        return None

    _DISPATCH = {
        FaultKind.PANIC_SELF: _panic_self,
        FaultKind.PANIC_BLOCKED: _panic_blocked,
        FaultKind.SPURIOUS_WAKE: _spurious_wake,
        FaultKind.FORCE_GC: _force_gc,
        FaultKind.GC_PERTURB: _gc_perturb,
        FaultKind.CLOCK_JITTER: _clock_jitter,
        FaultKind.REUSE_PRESSURE: _reuse_pressure,
        FaultKind.GC_BUDGET_PERTURB: _gc_budget_perturb,
        FaultKind.BARRIER_JITTER: _barrier_jitter,
    }
