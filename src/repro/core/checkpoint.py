"""Checkpoint/restart recovery: restore service, not just memory.

GOLF's only recovery action is reclaim-and-drop (paper §5): the leaked
goroutine's memory returns, but whatever role it played in the service
is gone.  This module adds the restart path sketched by claude-flow's
checkpoint-rollback design (SNIPPETS.md): a service registers a
*subsystem* — its channels, its worker respawn recipes, and a host-side
state dict — and takes cheap checkpoints at quiescent points.  When the
detector condemns one of the subsystem's goroutines, the whole subsystem
is rolled back to its last checkpoint and restarted: every live worker
is force-killed, channel buffers are restored, and fresh workers are
re-spawned from the recipes.

Because generator frames cannot be snapshotted, workers restart *from
the top* rather than mid-flight — the same contract as a process-level
restart.  Zero data loss therefore rests on the service's protocol, not
on frame state: results must be made durable before they are
acknowledged, and an at-least-once submitter must redeliver unacked
work (see :mod:`repro.service.checkpointed`, which carries the oracle).

Rollbacks never run mid-cycle: condemned goroutines are *claimed* inside
the collector's report path (:meth:`CheckpointManager.on_condemned`,
which also keeps them out of the two-cycle reclaim list), and the
teardown/restart happens in :meth:`CheckpointManager.process_pending`,
called by the collector after the cycle — or detection-only daemon pass
— completes.  Recovery charges virtual time like a pause, so
recovery-time SLOs are measurable in the simulated clock.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError
from repro.runtime.goroutine import Goroutine, GStatus


class CheckpointError(ReproError):
    """Invalid checkpoint/recovery operation."""


def _copy_state(value: Any) -> Any:
    """Structural copy of host-side state: containers are duplicated,
    leaves (numbers, strings, heap objects) are shared by reference."""
    if isinstance(value, dict):
        return {k: _copy_state(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_copy_state(v) for v in value]
    if isinstance(value, set):
        return {_copy_state(v) for v in value}
    if isinstance(value, tuple):
        return tuple(_copy_state(v) for v in value)
    return value


class WorkerSpec:
    """A respawn recipe: how to re-create one subsystem goroutine."""

    __slots__ = ("name", "fn", "args")

    def __init__(self, name: str, fn: Callable[..., Any],
                 args: Tuple[Any, ...] = ()):
        self.name = name
        self.fn = fn
        self.args = tuple(args)

    def __repr__(self) -> str:
        return f"<worker-spec {self.name!r}>"


class SubsystemCheckpoint:
    """One quiescent-point snapshot of a subsystem."""

    __slots__ = ("taken_at_ns", "heap_state", "state")

    def __init__(self, taken_at_ns: int, heap_state: Dict[int, Any],
                 state: Dict[str, Any]):
        self.taken_at_ns = taken_at_ns
        #: ``{addr: payload}`` from :meth:`Heap.snapshot_objects` over
        #: the subsystem's registered channels/objects.
        self.heap_state = heap_state
        #: Structural copy of the host-side state dict.
        self.state = state

    def __repr__(self) -> str:
        return f"<checkpoint @{self.taken_at_ns}ns>"


class RecoveryRecord:
    """One completed subsystem rollback+restart."""

    __slots__ = ("subsystem", "at_ns", "recovery_ns", "workers_killed",
                 "workers_respawned", "condemned_goids", "checkpoint_age_ns",
                 "trigger")

    def __init__(self, subsystem: str, at_ns: int, recovery_ns: int,
                 workers_killed: int, workers_respawned: int,
                 condemned_goids: Tuple[int, ...], checkpoint_age_ns: int,
                 trigger: str):
        self.subsystem = subsystem
        self.at_ns = at_ns
        self.recovery_ns = recovery_ns
        self.workers_killed = workers_killed
        self.workers_respawned = workers_respawned
        self.condemned_goids = condemned_goids
        self.checkpoint_age_ns = checkpoint_age_ns
        #: ``"gc"`` or ``"daemon"`` — which detection path condemned.
        self.trigger = trigger

    def as_dict(self) -> Dict[str, Any]:
        return {
            "subsystem": self.subsystem,
            "at_ns": self.at_ns,
            "recovery_ns": self.recovery_ns,
            "workers_killed": self.workers_killed,
            "workers_respawned": self.workers_respawned,
            "condemned_goids": list(self.condemned_goids),
            "checkpoint_age_ns": self.checkpoint_age_ns,
            "trigger": self.trigger,
        }

    def __repr__(self) -> str:
        return (f"<recovery {self.subsystem!r} @{self.at_ns}ns "
                f"cost={self.recovery_ns}ns "
                f"respawned={self.workers_respawned}>")


class Subsystem:
    """A registered recovery unit: channels + worker recipes + state."""

    def __init__(self, manager: "CheckpointManager", name: str,
                 channels: Iterable[Any], specs: Iterable[WorkerSpec],
                 state: Optional[Dict[str, Any]] = None):
        self.manager = manager
        self.name = name
        self.channels = list(channels)
        self.specs = list(specs)
        #: Host-visible mutable state rolled back with the subsystem
        #: (ledgers, counters).  Durable stores should live *outside*.
        self.state: Dict[str, Any] = state if state is not None else {}
        #: Live worker goroutines, by goid.
        self.live: Dict[int, Goroutine] = {}
        self.last_checkpoint: Optional[SubsystemCheckpoint] = None
        self.checkpoints_taken = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn all workers and take the initial checkpoint."""
        for spec in self.specs:
            self._spawn(spec)
        self.take_checkpoint()

    def _spawn(self, spec: WorkerSpec) -> Goroutine:
        sched = self.manager.rt.sched
        # A checkpointed worker is restartable by definition and must
        # never become the program's main goroutine (kill() refuses
        # main).  Undo the scheduler's first-spawn main designation if
        # the subsystem starts before the real main is spawned.
        had_main = sched.main_g is not None
        g = sched.spawn(spec.fn, *spec.args, name=spec.name,
                        go_site=f"<subsystem:{self.name}>")
        if not had_main and sched.main_g is g:
            sched.main_g = None
        g.deadlock_label = spec.name
        self.live[g.goid] = g
        self.manager._members[g.goid] = self
        return g

    def take_checkpoint(self) -> SubsystemCheckpoint:
        """Snapshot channel contents and host state at a quiescent point.

        "Quiescent" means a consistent host-visible point: between run
        slices, or inside a cycle-completion hook — never mid-effect.
        """
        rt = self.manager.rt
        ckpt = SubsystemCheckpoint(
            taken_at_ns=rt.clock.now,
            heap_state=rt.heap.snapshot_objects(self.channels),
            state=_copy_state(self.state),
        )
        self.last_checkpoint = ckpt
        self.checkpoints_taken += 1
        if rt.telemetry is not None:
            rt.telemetry.on_checkpoint(self.name)
        return ckpt

    def live_workers(self) -> List[Goroutine]:
        return [g for g in self.live.values() if g.status != GStatus.DEAD]


class CheckpointManager:
    """Owns registered subsystems and executes rollback+restart.

    Wiring: constructing the manager installs it as the collector's
    ``recovery_manager``; the collector consults
    :meth:`on_condemned` when reporting and calls
    :meth:`process_pending` after every completed cycle or daemon
    detection pass.
    """

    #: Virtual-time cost model of one recovery: a fixed coordination
    #: cost, per-worker respawn cost, and per-restored-message cost.
    RECOVERY_BASE_NS = 200_000
    NS_PER_WORKER = 50_000
    NS_PER_VALUE = 1_000

    def __init__(self, rt):
        self.rt = rt
        self.subsystems: Dict[str, Subsystem] = {}
        self.recoveries: List[RecoveryRecord] = []
        #: goid -> owning subsystem, for every live worker.
        self._members: Dict[int, Subsystem] = {}
        #: goid -> (subsystem, report, trigger) for condemned-and-claimed
        #: workers awaiting rollback.
        self._claimed: Dict[int, Tuple[Subsystem, Any, str]] = {}
        #: Subsystems awaiting rollback at the next process_pending.
        self._dirty: List[Subsystem] = []
        rt.collector.recovery_manager = self

    # -- registration -------------------------------------------------------

    def register(self, name: str, channels: Iterable[Any],
                 workers: Iterable[WorkerSpec],
                 state: Optional[Dict[str, Any]] = None,
                 start: bool = True) -> Subsystem:
        """Register (and by default start) a recovery subsystem.

        The subsystem's channels are pinned *and* published as global
        roots: restart restores their contents in place (so the
        collector must never free them), and a worker idling on an
        empty subsystem channel is waiting on a service endpoint the
        outside world can still reach — publishing the channel in the
        global root set keeps GOLF from condemning such workers as
        leaks (paper, section 4.2: liveness flows from globals).
        """
        if name in self.subsystems:
            raise CheckpointError(f"subsystem {name!r} already registered")
        sub = Subsystem(self, name, channels, workers, state)
        for i, obj in enumerate(sub.channels):
            if not self.rt.heap.contains(obj):
                raise CheckpointError(
                    f"subsystem {name!r} channel not on the heap: {obj!r}")
            self.rt.heap.pin(obj)
            self.rt.heap.globals.set(f"checkpoint.{name}.{i}", obj)
        self.subsystems[name] = sub
        if start:
            sub.start()
        return sub

    def checkpoint(self, name: Optional[str] = None) -> None:
        """Take a checkpoint of one subsystem (or all, when ``name`` is
        None) at the current quiescent point."""
        if name is not None:
            self.subsystems[name].take_checkpoint()
            return
        for sub in self.subsystems.values():
            sub.take_checkpoint()

    # -- collector integration ----------------------------------------------

    def on_condemned(self, g: Goroutine, report: Any,
                     reason: str = "forced") -> bool:
        """Collector hook: claim a condemned goroutine for restart.

        Returns True when ``g`` belongs to a registered subsystem — the
        subsystem is queued for rollback and the collector must *not*
        schedule the goroutine for plain two-cycle reclaim (the rollback
        kills it, together with its sibling workers).  ``reason`` is the
        cycle reason (``"daemon"`` for detection-only passes).
        """
        sub = self._members.get(g.goid)
        if sub is None:
            return False
        trigger = "daemon" if reason == "daemon" else "gc"
        self._claimed[g.goid] = (sub, report, trigger)
        if sub not in self._dirty:
            self._dirty.append(sub)
        return True

    def process_pending(self) -> None:
        """Execute queued rollbacks.  Called by the collector after a
        cycle (or daemon detection pass) completes — never mid-sweep."""
        if not self._dirty:
            return
        dirty, self._dirty = self._dirty, []
        for sub in dirty:
            self._rollback(sub)

    # -- the rollback -------------------------------------------------------

    def _rollback(self, sub: Subsystem) -> None:
        rt = self.rt
        sched = rt.sched
        started_at = rt.clock.now
        ckpt = sub.last_checkpoint
        if ckpt is None:  # registered with start=False and never run
            ckpt = sub.take_checkpoint()

        # Which condemned workers triggered this rollback, and how.
        claimed = [(goid, rep, trig)
                   for goid, (s, rep, trig) in self._claimed.items()
                   if s is sub]
        for goid, _, _ in claimed:
            self._claimed.pop(goid, None)
        trigger = ("daemon"
                   if any(trig == "daemon" for _, _, trig in claimed)
                   else "gc")

        # 1. Tear down: force-kill every live worker (condemned ones
        #    included — they were claimed out of the reclaim list).
        killed = 0
        for g in list(sub.live.values()):
            self._members.pop(g.goid, None)
            if g.status != GStatus.DEAD:
                sched.kill(g)
                killed += 1
        sub.live.clear()

        # 2. Roll channel contents and host state back to the checkpoint.
        rt.heap.restore_objects(sub.channels, ckpt.heap_state)
        sub.state.clear()
        sub.state.update(_copy_state(ckpt.state))

        # 3. Restart: re-spawn every worker from its recipe.
        for spec in sub.specs:
            sub._spawn(spec)

        # 4. Charge the recovery's virtual time like a pause.
        restored_values = sum(
            len(st["buffer"]) for st in ckpt.heap_state.values()
            if isinstance(st, dict) and "buffer" in st)
        cost = (self.RECOVERY_BASE_NS
                + self.NS_PER_WORKER * len(sub.specs)
                + self.NS_PER_VALUE * restored_values)
        rt.clock.advance(cost)
        sched.stall_all(cost)

        record = RecoveryRecord(
            subsystem=sub.name,
            at_ns=rt.clock.now,
            recovery_ns=cost,
            workers_killed=killed,
            workers_respawned=len(sub.specs),
            condemned_goids=tuple(goid for goid, _, _ in claimed),
            checkpoint_age_ns=started_at - ckpt.taken_at_ns,
            trigger=trigger,
        )
        self.recoveries.append(record)

        # 5. Surface the recovery everywhere the leak itself surfaced:
        #    provenance evidence on the triggering reports, the execution
        #    trace, and telemetry.
        detail = (f"subsystem '{sub.name}' rolled back to checkpoint "
                  f"@{ckpt.taken_at_ns}ns and restarted: {killed} killed, "
                  f"{len(sub.specs)} respawned, cost {cost}ns")
        for goid, rep, _ in claimed:
            if rep is not None and rep.provenance is not None:
                rep.provenance.evidence.append(f"recovery: {detail}")
        if sched.tracer is not None:
            sched.tracer.emit("recovery-restart", 0, detail)
        if rt.telemetry is not None:
            rt.telemetry.on_recovery(record)

    # -- introspection ------------------------------------------------------

    def recovery_times_ns(self) -> List[int]:
        return [r.recovery_ns for r in self.recoveries]

    def total_recoveries(self) -> int:
        return len(self.recoveries)
