"""Fleet-level aggregation: merged reports, fingerprints, metrics.

Everything above the shards is *derived* from the picklable
:class:`~repro.fleet.shard.ShardResult` objects, never from live
runtimes — that is what makes the sequential oracle mode and the
multiprocessing mode comparable bit for bit: both modes hand this
module the same inputs, so a divergence can only come from shard
execution itself (which the mode-equivalence oracle would catch).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.fleet.shard import ShardResult
from repro.runtime.clock import SECOND
from repro.telemetry.profiles import FingerprintStore

#: Bumped when the `repro fleet` JSON artifact shape changes.
FLEET_SCHEMA_VERSION = 1


class FleetResult:
    """The merged outcome of one fleet run."""

    def __init__(self, mode: str, config: dict,
                 routing: Dict[int, List[int]],
                 shards: List[ShardResult], wall_s: float = 0.0):
        self.mode = mode
        self.config = config
        self.routing = routing
        self.shards = sorted(shards, key=lambda s: s.shard_id)
        #: Wall-clock seconds for the whole run.  Deliberately excluded
        #: from :meth:`to_dict` — the artifact must be byte-identical
        #: across same-seed runs; benchmarks read this attribute.
        self.wall_s = wall_s
        self.problems: List[str] = []

        # Cross-shard fingerprint dedup: fold each shard's store into
        # one fleet store, counting how many fingerprints collided
        # across shards (the same defect observed by several shards).
        self.fingerprints = FingerprintStore()
        self.cross_shard_added = 0
        self.cross_shard_conflicts = 0
        for shard in self.shards:
            stats = self.fingerprints.merge(
                FingerprintStore.from_dict(shard.fingerprints))
            self.cross_shard_added += stats.added
            self.cross_shard_conflicts += stats.conflicts

        # Merged leak reports with shard provenance, in (shard, report
        # order) — deterministic because each shard's log already is.
        self.reports: List[dict] = []
        for shard in self.shards:
            for report in shard.reports:
                entry = dict(report)
                entry["shard"] = shard.shard_id
                self.reports.append(entry)

        for shard in self.shards:
            for violation in shard.invariant_violations:
                self.problems.append(
                    f"shard {shard.shard_id}: {violation}")
            if shard.service_end_ns <= 0:
                self.problems.append(
                    f"shard {shard.shard_id}: did not complete")

        # Per-shard TSDB / alert dumps, keyed by shard id as a string —
        # present only when the fleet ran with scraping enabled, so the
        # artifact stays byte-identical to pre-TSDB runs otherwise.
        self.tsdb_sources: Dict[str, dict] = {
            str(s.shard_id): s.tsdb
            for s in self.shards if s.tsdb is not None}
        self.alert_sources: Dict[str, dict] = {
            str(s.shard_id): s.alerts
            for s in self.shards if s.alerts is not None}

    # -- aggregate numbers ----------------------------------------------------

    @property
    def clean(self) -> bool:
        return not self.problems

    @property
    def total_users(self) -> int:
        return sum(s.users for s in self.shards)

    @property
    def total_requests(self) -> int:
        return sum(s.requests_completed for s in self.shards)

    @property
    def total_leaks_detected(self) -> int:
        return sum(s.leaks_detected for s in self.shards)

    @property
    def total_leaks_reclaimed(self) -> int:
        return sum(s.leaks_reclaimed for s in self.shards)

    @property
    def makespan_ns(self) -> int:
        """Fleet virtual makespan: shards serve concurrently, so the
        fleet is done when its slowest shard is."""
        return max((s.service_end_ns for s in self.shards), default=0)

    @property
    def sustained_rps(self) -> float:
        """Fleet request throughput per virtual second of service (the
        repo's RPS convention, summed across concurrent shards)."""
        if self.makespan_ns <= 0:
            return 0.0
        return self.total_requests / (self.makespan_ns / SECOND)

    @property
    def leaks_per_s(self) -> float:
        """Fleet leak-detection throughput per virtual second."""
        if self.makespan_ns <= 0:
            return 0.0
        return self.total_leaks_detected / (self.makespan_ns / SECOND)

    # -- renderings -----------------------------------------------------------

    def report_log_text(self) -> str:
        """The merged leak-report log with shard provenance — the
        byte-identity surface of the mode-equivalence oracle."""
        lines: List[str] = []
        for shard in self.shards:
            for text in shard.report_texts:
                first, _, rest = text.partition("\n")
                lines.append(f"[shard {shard.shard_id}] {first}")
                if rest:
                    lines.append(rest)
        return "\n".join(lines) + ("\n" if lines else "")

    def prom_text(self) -> str:
        """One fleet exposition with a ``shard`` label on every sample."""
        from repro.telemetry.export import render_merged_prometheus

        return render_merged_prometheus(
            {str(s.shard_id): s.metrics for s in self.shards})

    def tsdb_rollup(self) -> Optional[dict]:
        """Fleet-level series rollup with ``shard`` labels (same label
        semantics as :func:`render_merged_prometheus`); None when the
        fleet ran without scraping."""
        if not self.tsdb_sources:
            return None
        from repro.telemetry.tsdb import merge_tsdb

        return merge_tsdb(self.tsdb_sources, label="shard")

    def alert_timeline(self) -> List[dict]:
        """All shards' alert transitions with shard provenance, ordered
        by (virtual time, shard, rule) — deterministic because each
        shard's timeline already is."""
        events: List[dict] = []
        for shard_id in sorted(self.alert_sources, key=int):
            for event in self.alert_sources[shard_id]["timeline"]:
                entry = dict(event)
                entry["shard"] = int(shard_id)
                events.append(entry)
        events.sort(key=lambda e: (e["t"], e["shard"], e["rule"]))
        return events

    def to_dict(self) -> dict:
        """The deterministic JSON artifact (no wall-clock anywhere)."""
        doc = {
            "schema_version": FLEET_SCHEMA_VERSION,
            "mode": self.mode,
            "config": dict(self.config),
            "routing": {str(shard): list(users)
                        for shard, users in sorted(self.routing.items())},
            "shards": [s.as_dict() for s in self.shards],
            "aggregate": {
                "users": self.total_users,
                "requests_completed": self.total_requests,
                "makespan_ns": self.makespan_ns,
                "sustained_rps": round(self.sustained_rps, 3),
                "leaks_detected": self.total_leaks_detected,
                "leaks_reclaimed": self.total_leaks_reclaimed,
                "leaks_per_s": round(self.leaks_per_s, 3),
                "reports": list(self.reports),
                "fingerprints": self.fingerprints.as_dict(),
                "cross_shard_added": self.cross_shard_added,
                "cross_shard_conflicts": self.cross_shard_conflicts,
            },
            "problems": list(self.problems),
            "clean": self.clean,
        }
        # Only present when scraping ran — keeps pre-TSDB artifacts
        # (and scraping-off runs) byte-identical.
        if self.tsdb_sources:
            doc["telemetry"] = {
                "rollup": self.tsdb_rollup(),
                "alert_timeline": self.alert_timeline(),
                "alerts": {sid: self.alert_sources[sid]["summary"]
                           for sid in sorted(self.alert_sources, key=int)},
            }
        return doc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def format(self) -> str:
        lines = [
            f"fleet run: {len(self.shards)} shard(s), mode={self.mode}, "
            f"{'clean' if self.clean else 'DIRTY'}",
            f"  users           : {self.total_users}",
            f"  requests        : {self.total_requests}",
            f"  sustained RPS   : {self.sustained_rps:.1f} "
            f"(makespan {self.makespan_ns / SECOND:.3f}s virtual)",
            f"  leaks           : {self.total_leaks_detected} detected, "
            f"{self.total_leaks_reclaimed} reclaimed "
            f"({self.leaks_per_s:.1f}/s)",
            f"  fingerprints    : {len(self.fingerprints)} distinct, "
            f"{self.cross_shard_conflicts} cross-shard conflict(s)",
        ]
        for shard in self.shards:
            lines.append(
                f"    shard {shard.shard_id}: users={shard.users:<4d} "
                f"requests={shard.requests_completed:<5d} "
                f"rps={shard.sustained_rps:<8.1f} "
                f"leaks={shard.leaks_detected:<4d} "
                f"gc={shard.num_gc}")
        for problem in self.problems:
            lines.append(f"  PROBLEM: {problem}")
        return "\n".join(lines)


def validate_fleet_artifact(doc: dict) -> Dict[str, int]:
    """Strictly check a `repro fleet` JSON artifact; raises ValueError.

    Returns summary counts so the CI smoke job can print what it saw.
    """
    def need(mapping, key, kind, where):
        if key not in mapping:
            raise ValueError(f"{where}: missing key {key!r}")
        if not isinstance(mapping[key], kind):
            raise ValueError(
                f"{where}: {key!r} should be {kind}, "
                f"got {type(mapping[key]).__name__}")
        return mapping[key]

    if need(doc, "schema_version", int, "artifact") != FLEET_SCHEMA_VERSION:
        raise ValueError(
            f"artifact: schema_version {doc['schema_version']} != "
            f"{FLEET_SCHEMA_VERSION}")
    need(doc, "mode", str, "artifact")
    need(doc, "config", dict, "artifact")
    need(doc, "clean", bool, "artifact")
    need(doc, "problems", list, "artifact")
    routing = need(doc, "routing", dict, "artifact")
    shards = need(doc, "shards", list, "artifact")
    if not shards:
        raise ValueError("artifact: no shards")
    shard_ids = set()
    for i, shard in enumerate(shards):
        where = f"shards[{i}]"
        shard_ids.add(need(shard, "shard_id", int, where))
        need(shard, "users", int, where)
        need(shard, "requests_completed", int, where)
        need(shard, "service_end_ns", int, where)
        need(shard, "leaks_detected", int, where)
        need(shard, "invariant_violations", list, where)
        for j, report in enumerate(need(shard, "reports", list, where)):
            for key in ("goid", "go_site", "block_site", "wait_reason",
                        "gc_cycle", "detected_at_ns"):
                if key not in report:
                    raise ValueError(
                        f"{where}.reports[{j}]: missing key {key!r}")
    if set(routing) != {str(s) for s in shard_ids}:
        raise ValueError("artifact: routing table and shard ids disagree")
    agg = need(doc, "aggregate", dict, "artifact")
    for key in ("users", "requests_completed", "makespan_ns",
                "leaks_detected", "leaks_reclaimed",
                "cross_shard_added", "cross_shard_conflicts"):
        need(agg, key, int, "aggregate")
    for key in ("sustained_rps", "leaks_per_s"):
        need(agg, key, (int, float), "aggregate")
    reports = need(agg, "reports", list, "aggregate")
    for j, report in enumerate(reports):
        if report.get("shard") not in shard_ids:
            raise ValueError(
                f"aggregate.reports[{j}]: shard provenance "
                f"{report.get('shard')!r} not a fleet shard")
    fingerprints = need(agg, "fingerprints", dict, "aggregate")
    need(fingerprints, "records", list, "aggregate.fingerprints")
    if agg["users"] != sum(s["users"] for s in shards):
        raise ValueError("aggregate: users != sum of shard users")
    if agg["requests_completed"] != sum(
            s["requests_completed"] for s in shards):
        raise ValueError("aggregate: requests != sum of shard requests")
    if agg["leaks_detected"] != len(reports):
        raise ValueError(
            "aggregate: leaks_detected != number of merged reports")
    return {
        "shards": len(shards),
        "reports": len(reports),
        "fingerprints": len(fingerprints["records"]),
    }


def equivalence_diff(a: "FleetResult", b: "FleetResult") -> List[str]:
    """Mode-equivalence oracle: everything but the mode tag must match.

    Compares the canonical artifacts (mode field excluded), the merged
    report-log text, and the fingerprint sets; returns human-readable
    mismatches (empty = equivalent).
    """
    mismatches: List[str] = []
    da, db = a.to_dict(), b.to_dict()
    da.pop("mode"), db.pop("mode")
    if da != db:
        for key in sorted(set(da) | set(db)):
            if da.get(key) != db.get(key):
                mismatches.append(f"artifact field {key!r} differs")
    if a.report_log_text() != b.report_log_text():
        mismatches.append("merged leak-report logs differ")
    if a.fingerprints.fingerprints() != b.fingerprints.fingerprints():
        mismatches.append("fleet fingerprint sets differ")
    return mismatches
