"""The collection cycle: baseline Go GC and the GOLF extension.

The baseline cycle follows the paper's section 5.1: initialization (new
mark epoch, root preparation), marking, mark termination, sweeping.  With
GOLF enabled (section 5.2), the root set starts from runnable goroutines
only, marking alternates with root-set expansion until the reachable
liveness fixpoint, unmarked user-blocked goroutines are reported as
partial deadlocks, and recovery proceeds under the two-cycle finalizer
protocol of :mod:`repro.core.recovery`.

Two execution modes (``GolfConfig.gc_mode``):

- ``atomic`` — the historical implementation: one call to
  :meth:`Collector.collect` performs the entire cycle while the world is
  logically stopped.
- ``incremental`` — the same cycle decomposed into the explicit phase
  machine of :mod:`repro.gc.phases`.  Only the two STW windows
  (MARK_SETUP, MARK_TERMINATION) pause the mutator; MARKING and SWEEPING
  advance in bounded work budgets driven by the scheduler between
  goroutine time slices, with a Dijkstra insertion write barrier
  (:meth:`repro.gc.heap.Heap.write_barrier`) keeping concurrent marking
  sound.  Both modes share the liveness fixpoint
  (:func:`repro.core.detector.expand_liveness_fixpoint`) and the cost
  model below, so they render identical deadlock verdicts and identical
  virtual-time totals on quiescent cycles — the equivalence oracle in
  ``tests/test_gc_equivalence.py``.

Simulated cost model (drives the paper's Table 2 / Figure 4 metrics):

- *marking clock* = traversed references x ``ns_per_mark_edge``.  Marking
  runs concurrently with the mutator in Go, so it contributes to GC CPU
  time but not to the pause.
- *pause* = two stop-the-world windows (``stw_base_ns`` each) plus, under
  GOLF, the liveness checks and forced shutdowns that run under
  stop-the-world conditions.  The pause advances the virtual clock and
  stalls in-flight instructions.  Incremental mode charges the setup
  window (base + reclaims) and the termination window (base + liveness
  checks) separately; their sum equals the atomic pause.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core import detector as detector_mod
from repro.core import masking, recovery
from repro.core.config import GolfConfig
from repro.core.reports import ReportLog
from repro.gc.heap import Heap
from repro.gc.marking import drain_budget, mark_from, push_roots
from repro.gc.phases import GCPhase
from repro.gc.stats import CycleStats, GCStats
from repro.runtime.clock import Clock
from repro.runtime.goroutine import Goroutine, GStatus
from repro.runtime.objects import HeapObject
from repro.runtime.scheduler import Scheduler
from repro.runtime.waitreason import WaitReason


class Collector:
    """Owns GC pacing and executes collection cycles."""

    def __init__(self, heap: Heap, sched: Scheduler, clock: Clock,
                 config: GolfConfig, reports: ReportLog):
        self.heap = heap
        self.sched = sched
        self.clock = clock
        self.config = config
        self.reports = reports
        self.stats = GCStats()
        self._next_target = config.min_heap_bytes
        self._pending_reclaim: List[Goroutine] = []
        # Incremental phase-machine state (quiescent between cycles).
        self.phase = GCPhase.IDLE
        self._gray: List[HeapObject] = []
        self._cycle: Optional[CycleStats] = None
        self._detect_now = False
        self._candidates: List[Goroutine] = []
        self._sweep_list: List[HeapObject] = []
        self._sweep_pos = 0
        self._finalizer_thunks: List[Callable[[], None]] = []
        self._shades_at_setup = 0
        # runtime.GC callers parked until a full cycle completes: the
        # current cycle's waiters, plus those queued for the next one.
        self._gc_waiters: List[Goroutine] = []
        self._queued_waiters: List[Goroutine] = []
        self._gc_requested = False
        #: Optional checkpoint/restart recovery manager (see
        #: :mod:`repro.core.checkpoint`).  When set, condemned goroutines
        #: belonging to a registered subsystem are claimed for rollback
        #: instead of plain reclaim, and pending rollbacks run at cycle
        #: completion via :meth:`~CheckpointManager.process_pending`.
        self.recovery_manager = None
        # Wire the runtime hooks.
        sched.gc_hook = self.collect
        sched.alloc_hook = self.maybe_collect
        if config.golf:
            sched.mask_key = masking.mask_addr
        if config.incremental:
            sched.gc_step_hook = self.gc_step
            sched.gc_request_hook = self.request_gc
            sched.gc_wake_hook = self.on_masked_wake

    # -- pacing -----------------------------------------------------------

    def maybe_collect(self) -> Optional[CycleStats]:
        """Allocation hook: collect when the heap passes the GOGC target."""
        if self.heap.live_bytes >= self._next_target:
            if self.config.incremental:
                # Kick off a cycle; the scheduler's gc_step_hook advances
                # it between time slices.  If one is already in flight,
                # the pacer is satisfied by its completion (the target is
                # recomputed then).
                if self.phase is GCPhase.IDLE:
                    self._begin_cycle("pacer")
                return None
            return self.collect(reason="pacer")
        return None

    def perturb_pacing(self, factor: float) -> None:
        """Scale the next pacer trigger by ``factor`` (chaos hook).

        ``factor > 1`` delays the next organic collection, ``factor < 1``
        hastens it — perturbing *when* GC runs without touching what a
        cycle does.  GOLF's guarantees must be cadence-independent
        (paper §6.2 runs detection on arbitrary cycles), which the chaos
        suite verifies by fuzzing exactly this knob.
        """
        if factor <= 0:
            raise ValueError("pacing factor must be positive")
        self._next_target = max(
            self.config.min_heap_bytes, int(self._next_target * factor)
        )

    # -- the cycle ----------------------------------------------------------

    def collect(self, reason: str = "forced") -> CycleStats:
        """Run one full collection cycle synchronously.

        In incremental mode this first drives any in-flight cycle to
        completion (its stats are recorded normally), then runs a fresh
        full cycle through the phase machine without yielding to the
        mutator — the synchronous entry point (``rt.gc()``, chaos-forced
        GC) still observes complete-cycle semantics.
        """
        if not self.config.incremental:
            return self._collect_atomic(reason)
        while self.phase is not GCPhase.IDLE:
            self.gc_step()
        self._begin_cycle(reason)
        cs = self._cycle
        while self.phase is not GCPhase.IDLE:
            self.gc_step()
        assert cs is not None
        return cs

    def _collect_atomic(self, reason: str) -> CycleStats:
        """The atomic cycle: everything under one logical STW."""
        cycle_no = self.stats.num_gc + 1
        cs = CycleStats(cycle_no, reason, self.config.mode, self.clock.now)
        cs.heap_bytes_before = self.heap.live_bytes
        cs.heap_objects_before = self.heap.live_objects

        self.heap.begin_cycle()

        # sync.Pool integration: each cycle ages the pools' caches
        # (primary -> victim -> released), as Go does under STW.  Pools
        # register themselves on the heap's aging registry at allocation
        # time, so this no longer scans the whole heap.
        for obj in self.heap.gc_aged_objects():
            obj.on_gc()  # type: ignore[attr-defined]

        # Second half of the two-cycle recovery protocol: shut down the
        # goroutines reported (and finalizer-cleared) last detection.
        telemetry = self.sched.telemetry
        for g in self._pending_reclaim:
            if telemetry is not None:
                # Before reclaim: the goroutine still carries its sites.
                telemetry.on_reclaim(g)
            self.sched.reclaim_deadlocked(g)
            cs.goroutines_reclaimed += 1
        self._pending_reclaim = []

        detect_now = (
            self.config.golf
            and (cycle_no - 1) % self.config.detect_every == 0
        )
        if detect_now:
            self._golf_cycle(cs)
        else:
            self._baseline_cycle(cs)

        sweep_result, finalizer_thunks = self.heap.sweep()
        cs.swept_objects = sweep_result.freed_objects
        cs.swept_bytes = sweep_result.freed_bytes
        cs.finalizers_queued = sweep_result.finalizers_queued
        for thunk in finalizer_thunks:
            thunk()

        cs.mark_clock_ns = (
            cs.mark_work_units * self.config.ns_per_mark_edge
            + cs.mark_iterations * self.config.ns_per_mark_iteration
        )
        cs.pause_setup_ns = self.config.stw_base_ns
        cs.pause_termination_ns = self.config.stw_base_ns
        if detect_now:
            cs.pause_setup_ns += (
                cs.goroutines_reclaimed * self.config.ns_per_reclaim)
            cs.pause_termination_ns += (
                cs.liveness_checks * self.config.ns_per_liveness_check)
        # Marking runs concurrently with the mutator in Go but still
        # consumes CPU; approximate its mutator impact by spreading the
        # marking clock across the virtual processors.
        mark_stall = cs.mark_clock_ns // max(1, len(self.sched.procs))
        total_stall = cs.pause_ns + mark_stall
        self.clock.advance(total_stall)
        self.sched.stall_all(total_stall)

        self._finish_cycle_stats(cs)
        if self.recovery_manager is not None:
            self.recovery_manager.process_pending()
        return cs

    def detect_only(self, reason: str = "daemon") -> Optional[CycleStats]:
        """Run the GOLF liveness fixpoint without collecting.

        The detection daemon's entry point (paper §6.2 argues detection
        is sound on *any* cycle; this decouples it from GC cadence
        entirely): a fresh mark epoch, the full reachable-liveness
        fixpoint over the current candidates, and the shared
        report/recovery path — but no sweep, no pause accounting, and no
        virtual-time charge, so running it between GC cycles never
        perturbs the mutator schedule.  Goroutines condemned here join
        ``_pending_reclaim`` and are freed by the next real cycle (or are
        claimed by checkpoint/restart recovery).

        Returns the detection stats, or ``None`` when skipped because an
        incremental cycle is in flight (its own mark termination will
        render the verdicts; a second concurrent fixpoint would fight
        over mark bits and masks).
        """
        if not self.config.golf:
            return None
        if self.phase is not GCPhase.IDLE:
            return None
        cs = CycleStats(self.stats.num_gc, reason, self.config.mode,
                        self.clock.now)
        cs.heap_bytes_before = self.heap.live_bytes
        cs.heap_objects_before = self.heap.live_objects
        self.heap.begin_cycle()
        self._golf_cycle(cs)
        cs.heap_bytes_after = self.heap.live_bytes
        cs.heap_objects_after = self.heap.live_objects
        if self.recovery_manager is not None:
            self.recovery_manager.process_pending()
        return cs

    def _baseline_cycle(self, cs: CycleStats) -> None:
        """Regular Go marking: every goroutine is a root."""
        roots = [self.heap.globals] + [
            g for g in self.sched.allgs if g.status != GStatus.DEAD
        ]
        roots.extend(self.sched.inflight_heap_refs())
        work, _ = mark_from(self.heap, roots, respect_masks=False)
        cs.mark_iterations = 1
        cs.mark_work_units = work

    def _golf_cycle(self, cs: CycleStats) -> None:
        """GOLF marking, detection, and the first half of recovery."""
        det = detector_mod.detect(
            self.heap, self.sched.allgs,
            on_the_fly=self.config.on_the_fly_roots,
            dead_global_hints=self.config.dead_global_hints,
            extra_roots=self.sched.inflight_heap_refs(),
        )
        cs.mark_iterations = det.mark_iterations
        cs.mark_work_units = det.mark_work_units
        cs.liveness_checks = det.liveness_checks
        cs.proof_skips = det.proof_skips

        if self.config.dead_global_hints:
            # Hints affect liveness only, never collection: re-mark the
            # full global view so hinted objects are not swept while the
            # global table still references them.
            extra_work, _ = mark_from(
                self.heap, [self.heap.globals], respect_masks=True)
            cs.mark_work_units += extra_work

        self._report_and_recover(cs, det.deadlocked)
        masking.unmask_all(self.sched.allgs)

    def _report_and_recover(self, cs: CycleStats,
                            deadlocked: List[Goroutine]) -> None:
        """Report detected partial deadlocks and start recovery.

        Shared by both gc modes: the report log entries, callbacks,
        finalizer keep-alive decision, and PENDING_RECLAIM scheduling are
        byte-for-byte identical regardless of how marking was driven.
        """
        prov_map = {}
        if deadlocked:
            # Capture why-leaked evidence for the whole condemned set
            # *before* recovery marks any exclusive subgraph below: the
            # absence proofs read the post-fixpoint mark bits, which
            # scan_and_mark_subgraph would flip.  Lazy import: the trace
            # package pulls in telemetry/export, which imports this module.
            from repro.trace.provenance import capture_provenance
            prov_map = capture_provenance(
                deadlocked, self.heap, self.sched, cs.cycle,
                cs.started_at_ns, self.sched.tracer)
        for g in deadlocked:
            # Timestamp with the cycle's start: in atomic mode the clock
            # has not advanced yet at this point, so this is clock.now;
            # in incremental mode the setup window has already elapsed,
            # and anchoring to the start keeps report logs byte-identical
            # across the two modes (the equivalence oracle checks this).
            report = self.reports.add(g, cs.cycle, cs.started_at_ns)
            report.provenance = prov_map.get(g.goid)
            g.reported = True
            if self.sched.tracer is not None:
                self.sched.tracer.on_leak(report)
            if self.config.on_report is not None:
                self.config.on_report(report)
            cs.deadlocks_detected += 1
            # Schedule the goroutine's memory for marking this cycle and
            # probe the exclusively reachable subgraph for finalizers.
            g.masked = False
            has_finalizer, extra_work, exclusive_bytes = (
                recovery.scan_and_mark_subgraph(self.heap, g)
            )
            cs.mark_work_units += extra_work
            cs.reachable_dead_bytes += exclusive_bytes
            kept = has_finalizer or not self.config.reclaim
            g.wait_seq += 1  # verdict changes the detector classification
            if kept:
                g.status = GStatus.DEADLOCKED
                if has_finalizer:
                    cs.deadlocks_kept_for_finalizers += 1
            else:
                g.status = GStatus.PENDING_RECLAIM
                if (self.recovery_manager is not None
                        and self.recovery_manager.on_condemned(
                            g, report, reason=cs.reason)):
                    # Claimed by checkpoint/restart recovery: the manager
                    # tears the whole subsystem down (this goroutine
                    # included) at cycle completion, so the two-cycle
                    # reclaim must not also free the descriptor.
                    pass
                else:
                    self._pending_reclaim.append(g)
            if self.sched.telemetry is not None:
                self.sched.telemetry.on_leak_report(report, kept=kept)

    def _finish_cycle_stats(self, cs: CycleStats) -> None:
        """Record after-stats, retarget the pacer, and publish the cycle."""
        cs.heap_bytes_after = self.heap.live_bytes
        cs.heap_objects_after = self.heap.live_objects
        self._next_target = max(
            self.config.min_heap_bytes,
            self.heap.live_bytes * (100 + self.config.gogc) // 100,
        )
        self.stats.record(cs)
        if self.sched.tracer is not None:
            self.sched.tracer.on_gc_cycle(cs)
        if self.sched.telemetry is not None:
            self.sched.telemetry.on_gc_cycle(cs, self.sched, self.heap)

    # -- incremental phase machine ----------------------------------------

    def _transition(self, phase: GCPhase) -> None:
        self.phase = phase
        cycle_no = self._cycle.cycle if self._cycle is not None else 0
        if self.sched.tracer is not None:
            self.sched.tracer.on_gc_phase(phase.value, cycle_no)
        telemetry = self.sched.telemetry
        if telemetry is not None:
            telemetry.on_gc_phase(phase.value, cycle_no)

    def _begin_cycle(self, reason: str) -> None:
        """MARK_SETUP: the first STW window of an incremental cycle.

        Ages pools, runs pending reclaims, snapshots the detection
        candidates and masks them, shades the root set gray, and arms the
        write barrier before handing the world back to the mutator.
        """
        assert self.phase is GCPhase.IDLE, self.phase
        cycle_no = self.stats.num_gc + 1
        cs = CycleStats(cycle_no, reason, self.config.mode, self.clock.now)
        cs.heap_bytes_before = self.heap.live_bytes
        cs.heap_objects_before = self.heap.live_objects
        self._cycle = cs
        self._transition(GCPhase.MARK_SETUP)

        self.heap.begin_cycle()
        for obj in self.heap.gc_aged_objects():
            obj.on_gc()  # type: ignore[attr-defined]

        telemetry = self.sched.telemetry
        for g in self._pending_reclaim:
            if telemetry is not None:
                telemetry.on_reclaim(g)
            self.sched.reclaim_deadlocked(g)
            cs.goroutines_reclaimed += 1
        self._pending_reclaim = []

        self._detect_now = (
            self.config.golf
            and (cycle_no - 1) % self.config.detect_every == 0
        )
        self._gray = []
        self._shades_at_setup = self.heap.barrier_shades
        if self._detect_now:
            # Candidates are snapshotted under STW: goroutines that block
            # detectably *after* setup were woken-then-blocked by live
            # mutators and are shaded by the barrier/rescan instead.
            # Same fused classify/mask/root pass as detector.detect —
            # memoized on wait_seq, so back-to-back cycles only
            # reclassify goroutines whose wait state changed.
            hints = self.config.dead_global_hints
            if hints:
                roots = list(self.heap.globals.referents_excluding(hints))
            else:
                roots = [self.heap.globals]
            self._candidates = []
            proof_skips = 0
            for g in self.sched.allgs:
                c = detector_mod.classify(g)
                if c == detector_mod.CLASS_NEITHER:
                    if g.status != GStatus.DEAD:
                        roots.append(g)
                elif c == detector_mod.CLASS_CANDIDATE:
                    g.masked = True
                    self._candidates.append(g)
                else:
                    g.masked = False
                    proof_skips += 1
                    roots.append(g)
            cs.proof_skips = proof_skips
        else:
            self._candidates = []
            roots = [self.heap.globals] + [
                g for g in self.sched.allgs if g.status != GStatus.DEAD
            ]
        roots.extend(self.sched.inflight_heap_refs())
        work, _ = push_roots(self.heap, roots, self._gray,
                             respect_masks=self._detect_now)
        cs.mark_iterations = 1
        cs.mark_work_units += work
        self.heap.enable_barrier(self._gray)

        pause = self.config.stw_base_ns
        if self._detect_now:
            # Reclaims are a detection-cycle cost in the atomic model;
            # charge them identically so pause totals line up.
            pause += cs.goroutines_reclaimed * self.config.ns_per_reclaim
        cs.pause_setup_ns = pause
        self.clock.advance(pause)
        self.sched.stall_all(pause)
        self._transition(GCPhase.MARKING)

    def gc_step(self) -> bool:
        """Advance the in-flight cycle by one bounded unit of work.

        Called by the scheduler between goroutine time slices (and by
        :meth:`collect` to drive a cycle synchronously).  Returns True
        while a cycle remains in flight.  Steps consume no virtual time:
        marking/sweeping CPU cost is charged as the termination-window
        mark stall, exactly as in atomic mode, keeping the two modes'
        clocks in lockstep.
        """
        if self.phase is GCPhase.MARKING:
            cs = self._cycle
            assert cs is not None
            cs.mark_steps += 1
            work, _ = drain_budget(
                self.heap, self._gray, self.config.mark_budget,
                respect_masks=self._detect_now)
            cs.mark_work_units += work
            if not self._gray:
                self._mark_termination()
        elif self.phase is GCPhase.SWEEPING:
            self._sweep_step()
        return self.phase is not GCPhase.IDLE

    def _mark_termination(self) -> None:
        """MARK_TERMINATION: the second STW window.

        Rescans barrier-less roots (goroutine stacks, in-flight
        instruction operands), runs the liveness fixpoint and
        report/recovery when this is a detection cycle, charges the
        termination pause plus the spread marking clock, and freezes the
        sweep candidate list.
        """
        cs = self._cycle
        assert cs is not None
        self._transition(GCPhase.MARK_TERMINATION)
        self.heap.disable_barrier()

        # Goroutine stacks carry no write barrier (Go re-examines stacks
        # at mark termination): re-traverse every unmasked live
        # goroutine's stack and the operands in flight on virtual
        # processors, catching stores the concurrent phase missed.
        # Charged to rescan_work_units, not the marking clock — Go does
        # this inside the termination window, and keeping it off the
        # clock preserves virtual-time parity with atomic mode.
        rescan_roots: List[HeapObject] = []
        for g in self.sched.allgs:
            if g.status == GStatus.DEAD or g.masked:
                continue
            rescan_roots.extend(g.stack_heap_refs())
        rescan_roots.extend(self.sched.inflight_heap_refs())
        rescan_work, _ = mark_from(
            self.heap, rescan_roots, respect_masks=self._detect_now)
        cs.rescan_work_units += rescan_work

        if self._detect_now:
            det = detector_mod.DetectionResult()
            pending = [g for g in self._candidates if g.masked]
            deadlocked = detector_mod.expand_liveness_fixpoint(
                self.heap, pending, det)
            cs.mark_iterations += det.mark_iterations
            cs.mark_work_units += det.mark_work_units
            cs.liveness_checks += det.liveness_checks
            if self.config.dead_global_hints:
                extra_work, _ = mark_from(
                    self.heap, [self.heap.globals], respect_masks=True)
                cs.mark_work_units += extra_work
            self._report_and_recover(cs, deadlocked)
            masking.unmask_all(self.sched.allgs)
        self._candidates = []

        cs.mark_clock_ns = (
            cs.mark_work_units * self.config.ns_per_mark_edge
            + cs.mark_iterations * self.config.ns_per_mark_iteration
        )
        pause = self.config.stw_base_ns
        if self._detect_now:
            pause += cs.liveness_checks * self.config.ns_per_liveness_check
        cs.pause_termination_ns = pause
        mark_stall = cs.mark_clock_ns // max(1, len(self.sched.procs))
        total_stall = pause + mark_stall
        self.clock.advance(total_stall)
        self.sched.stall_all(total_stall)

        # Freeze the sweep candidate list under STW: everything still
        # white is unreachable now and cannot be resurrected (allocation
        # is black until the next cycle's epoch bump), so sweeping it
        # lazily is safe.
        self._sweep_list = [
            obj for obj in self.heap.objects()
            if not self.heap.is_marked(obj) and not self.heap.is_pinned(obj)
        ]
        self._sweep_pos = 0
        self._finalizer_thunks = []
        self._transition(GCPhase.SWEEPING)

    def _sweep_step(self) -> None:
        """One bounded SWEEPING step over the frozen candidate list."""
        cs = self._cycle
        assert cs is not None
        cs.sweep_steps += 1
        budget = self.config.sweep_budget
        examined = 0
        while self._sweep_pos < len(self._sweep_list) and examined < budget:
            obj = self._sweep_list[self._sweep_pos]
            self._sweep_pos += 1
            examined += 1
            freed, freed_bytes, thunk = self.heap.sweep_one(obj)
            if freed:
                cs.swept_objects += 1
                cs.swept_bytes += freed_bytes
            elif thunk is not None:
                cs.finalizers_queued += 1
                self._finalizer_thunks.append(thunk)
        if self._sweep_pos >= len(self._sweep_list):
            self._complete_cycle()

    def _complete_cycle(self) -> None:
        """Sweep done: run finalizers, publish stats, wake RunGC waiters."""
        cs = self._cycle
        assert cs is not None
        for thunk in self._finalizer_thunks:
            thunk()
        self._finalizer_thunks = []
        self._sweep_list = []
        self._sweep_pos = 0
        cs.barrier_shades = self.heap.barrier_shades - self._shades_at_setup
        self._finish_cycle_stats(cs)
        self._transition(GCPhase.IDLE)
        self._cycle = None
        if self.recovery_manager is not None:
            self.recovery_manager.process_pending()

        waiters, self._gc_waiters = self._gc_waiters, []
        for g in waiters:
            # Guard against chaos panics or reclaims having moved the
            # waiter on: only wake goroutines still parked on this cycle.
            if (g.status == GStatus.WAITING
                    and g.wait_reason is WaitReason.GC_WAIT):
                self.sched.wake(g)
        if self._gc_requested or self._queued_waiters:
            self._gc_requested = False
            self._gc_waiters = self._queued_waiters
            self._queued_waiters = []
            self._begin_cycle("forced")

    def request_gc(self, g: Goroutine) -> bool:
        """``runtime.GC()`` in incremental mode.

        Returns True when the caller was enrolled as a cycle waiter (the
        executor parks it with ``WaitReason.GC_WAIT`` until the cycle
        completes — Go's "wait for GC cycle"); False in atomic mode, where
        the executor falls back to the blocking ``gc_hook``.  A request
        arriving while a cycle is in flight waits for the *next* full
        cycle: ``runtime.GC`` must observe a complete mark from its call
        point.
        """
        if not self.config.incremental:
            return False
        if self.phase is GCPhase.IDLE:
            self._gc_waiters.append(g)
            self._begin_cycle("forced")
        else:
            self._gc_requested = True
            self._queued_waiters.append(g)
        return True

    def on_masked_wake(self, g: Goroutine) -> None:
        """Scheduler hook: a masked candidate is being woken mid-cycle.

        While a detection cycle is concurrently marking, a live goroutine
        may complete the operation a candidate blocks on; the wake itself
        proves liveness, so the candidate rejoins the root set (GOLF root
        re-expansion).  Outside MARKING the mask is simply dropped — the
        fixpoint owning it has already concluded or not yet begun.
        """
        if (self.phase is GCPhase.MARKING and self._detect_now
                and self._cycle is not None):
            detector_mod.reexpand_on_wake(self.heap, g, self._gray)
            self._cycle.root_reexpansions += 1
        else:
            g.masked = False

    def check_barrier_invariant(self) -> List[str]:
        """Verify the tricolor invariant during concurrent marking.

        During MARKING every black object (marked and not on the gray
        queue) must have no white heap referent — each referent is
        marked, a masked goroutine descriptor (liveness flows only via
        the detector's fixpoint), or off-heap.  Goroutine descriptors are
        exempt: their stacks mutate without a barrier and are rescanned
        at mark termination.  Returns human-readable violations; empty
        when sound.  The chaos harness calls this after every injected
        fault.
        """
        problems: List[str] = []
        if self.phase is not GCPhase.MARKING:
            return problems
        gray_ids = {id(o) for o in self._gray}
        for obj in self.heap.objects():
            if not self.heap.is_marked(obj) or id(obj) in gray_ids:
                continue
            if obj.kind == "goroutine":
                continue
            for ref in obj.referents():
                if ref.kind == "goroutine" and getattr(ref, "masked", False):
                    continue
                if not self.heap.contains(ref):
                    continue
                if not self.heap.is_marked(ref):
                    problems.append(
                        f"barrier invariant: black {obj.kind} "
                        f"0x{obj.addr:x} -> white {ref.kind} "
                        f"0x{ref.addr:x}")
        return problems
