"""Fault plans: seeded, replayable schedules of injection decisions.

A :class:`FaultPlan` owns the chaos RNG and decides, at each
interposition point the injector offers it, whether to fire and which
fault kind to fire.  Because the runtime itself is deterministic given
``(program, procs, seed)`` and the plan is deterministic given
``(seed, scenario)``, re-running a schedule with the same parameters
reproduces the *identical* sequence of injections — the trace of
:class:`FaultRecord` entries is byte-for-byte replayable, which the
determinism tests assert.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chaos.scenarios import Scenario


class FaultKind:
    """The fault vocabulary (string constants, not an enum, so traces
    serialize to JSON without adapters)."""

    #: Panic the currently executing goroutine at its yield point.
    PANIC_SELF = "panic-self"
    #: Panic a random *blocked* goroutine (purging its wait-queue state).
    PANIC_BLOCKED = "panic-blocked"
    #: Spurious wakeup of a random timer-parked goroutine.
    SPURIOUS_WAKE = "spurious-wake"
    #: Force a full GC cycle mid-instruction.
    FORCE_GC = "force-gc"
    #: Perturb the pacer target (starve or hasten organic GC).
    GC_PERTURB = "gc-perturb"
    #: Advance the virtual clock by a random jitter.
    CLOCK_JITTER = "clock-jitter"
    #: Spawn short-lived churn goroutines to cycle the ``*g`` free pool.
    REUSE_PRESSURE = "reuse-pressure"
    #: Shrink the incremental collector's mark/sweep budgets to tiny
    #: values (maximally fragmented phases; rejected in atomic mode).
    GC_BUDGET_PERTURB = "gc-budget-perturb"
    #: Arm a one-shot clock jitter on the next write-barrier shade
    #: (a fault landing *inside* the barrier; rejected in atomic mode).
    BARRIER_JITTER = "barrier-jitter"
    #: Downstream dependency fails fast (service layer polls for this).
    DOWNSTREAM_FAIL = "downstream-fail"
    #: Downstream dependency responds slowly (service layer polls).
    DOWNSTREAM_SLOW = "downstream-slow"

    #: Kinds the scheduler-level injector dispatches (downstream faults
    #: are polled by the service layer instead).
    SCHEDULER_KINDS = (
        PANIC_SELF, PANIC_BLOCKED, SPURIOUS_WAKE, FORCE_GC,
        GC_PERTURB, CLOCK_JITTER, REUSE_PRESSURE,
        GC_BUDGET_PERTURB, BARRIER_JITTER,
    )


class FaultRecord:
    """One injection attempt, as recorded in the replayable trace.

    ``outcome`` is ``"injected"`` when the fault fired, or ``"rejected"``
    when the runtime legally refused it (no eligible victim, spurious
    wakeup of a detectably blocked goroutine, panic into a reported
    goroutine...).  Rejections are part of the trace: a sound runtime is
    *allowed* to refuse a fault, but it must refuse deterministically.
    """

    __slots__ = ("index", "time_ns", "kind", "target_goid", "detail",
                 "outcome")

    def __init__(self, index: int, time_ns: int, kind: str,
                 target_goid: int, detail: str, outcome: str):
        self.index = index
        self.time_ns = time_ns
        self.kind = kind
        self.target_goid = target_goid
        self.detail = detail
        self.outcome = outcome

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "time_ns": self.time_ns,
            "kind": self.kind,
            "target_goid": self.target_goid,
            "detail": self.detail,
            "outcome": self.outcome,
        }

    def __repr__(self) -> str:
        return (
            f"<fault #{self.index} {self.kind} g{self.target_goid} "
            f"{self.outcome} @{self.time_ns}ns>"
        )


class FaultPlan:
    """Decides when and what to inject; records what happened.

    Args:
        seed: chaos RNG seed — independent of the runtime's scheduling
            seed so the two sources of nondeterminism can be varied
            separately.
        scenario: the fault mix (see :mod:`repro.chaos.scenarios`).
    """

    def __init__(self, seed: int, scenario: "Scenario"):
        self.seed = seed
        self.scenario = scenario
        self.rng = random.Random(seed ^ 0xC4A05)
        self.trace: List[FaultRecord] = []
        self._kinds, self._weights = scenario.scheduler_mix()

    # -- decisions ---------------------------------------------------------

    def next_fault(self) -> Optional[str]:
        """Called at every yield point: the kind to inject, or None.

        Stops offering faults once ``max_faults`` injections fired, so a
        schedule's tail (the settle + GC phase of the microbench
        template) runs undisturbed and detection always gets a chance to
        quiesce.
        """
        if not self._kinds or self.injected_count() >= self.scenario.max_faults:
            return None
        if self.rng.random() >= self.scenario.rate:
            return None
        return self.rng.choices(self._kinds, weights=self._weights, k=1)[0]

    def downstream_outcome(self) -> Tuple[str, int]:
        """Service-layer poll: ``(outcome, extra_latency_ns)``.

        ``outcome`` is ``"ok"``, ``"fail"`` or ``"slow"``; slow calls
        carry the extra latency the dependency takes to answer.
        """
        roll = self.rng.random()
        if roll < self.scenario.downstream_fail_rate:
            return "fail", 0
        if roll < (self.scenario.downstream_fail_rate
                   + self.scenario.downstream_slow_rate):
            return "slow", self.rng.randrange(*self.scenario.slow_extra_ns)
        return "ok", 0

    def jitter_ns(self) -> int:
        return self.rng.randrange(*self.scenario.clock_jitter_ns)

    def pacing_factor(self) -> float:
        return self.rng.choice(self.scenario.pacing_factors)

    def churn_count(self) -> int:
        return self.rng.randrange(*self.scenario.churn_goroutines)

    # -- trace --------------------------------------------------------------

    def record(self, time_ns: int, kind: str, target_goid: int,
               detail: str, outcome: str) -> FaultRecord:
        rec = FaultRecord(len(self.trace), time_ns, kind, target_goid,
                          detail, outcome)
        self.trace.append(rec)
        return rec

    def injected_count(self) -> int:
        return sum(1 for r in self.trace if r.outcome == "injected")

    def rejected_count(self) -> int:
        return sum(1 for r in self.trace if r.outcome == "rejected")

    def injected_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for r in self.trace:
            if r.outcome == "injected":
                counts[r.kind] = counts.get(r.kind, 0) + 1
        return counts

    def trace_dicts(self) -> List[Dict[str, object]]:
        return [r.to_dict() for r in self.trace]
