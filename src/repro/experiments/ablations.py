"""Ablations over GOLF's design choices (DESIGN.md, section 4).

Three studies:

1. **Fixpoint strategy** — the paper's restart-based mark iterations vs
   the on-the-fly root expansion it sketches in section 5.3.  Both must
   report identical deadlock sets; the on-the-fly variant needs exactly
   one iteration where the restart variant needs one per daisy-chain hop.
2. **Detection cadence** — running detection every Nth GC cycle (the
   paper's closing remark in section 6.2): overhead drops, detections
   are merely delayed, never lost.
3. **Recovery on/off** — monitor-only GOLF still reports but memory
   stays leaked; recovery reclaims it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.config import GolfConfig
from repro.runtime.api import Runtime
from repro.runtime.clock import MICROSECOND, MILLISECOND
from repro.runtime.instructions import (
    Alloc,
    Go,
    MakeChan,
    Recv,
    RunGC,
    Send,
    Sleep,
)
from repro.runtime.objects import Blob


def _chain_program(length: int):
    """A daisy chain of blocked goroutines, the detector's worst case
    (section 5.2): main holds only the head channel, each stage holds the
    next hop, so the whole chain is *live* but every restart iteration
    can discover exactly one more goroutine."""

    def stage(src, remaining: int):
        if remaining == 0:
            yield Recv(src)  # the tail consumes and exits
            return
        dst = yield MakeChan(0)
        yield Go(stage, dst, remaining - 1)
        value, _ = yield Recv(src)
        yield Send(dst, value)

    def main():
        head = yield MakeChan(0)
        yield Go(stage, head, length - 1)
        yield Sleep(100 * MICROSECOND)
        yield RunGC()
        # Feed the chain so everything winds down cleanly.
        yield Send(head, 1)

    return main


class FixpointAblation:
    """Iteration/work comparison between the two fixpoint strategies."""

    def __init__(self) -> None:
        self.rows: List[Dict[str, float]] = []

    def run(self, chain_lengths=(2, 4, 8, 16), seed: int = 0) -> "FixpointAblation":
        for length in chain_lengths:
            row: Dict[str, float] = {"chain": length}
            for on_the_fly in (False, True):
                rt = Runtime(
                    procs=2, seed=seed,
                    config=GolfConfig(on_the_fly_roots=on_the_fly),
                )
                rt.spawn_main(_chain_program(length))
                rt.run(until_ns=50 * MILLISECOND)
                cycles = rt.collector.stats.cycles
                detect_cycles = [c for c in cycles if c.mode == "golf"]
                key = "otf" if on_the_fly else "restart"
                row[f"{key}_iterations"] = max(
                    c.mark_iterations for c in detect_cycles)
                row[f"{key}_checks"] = sum(
                    c.liveness_checks for c in detect_cycles)
                row[f"{key}_deadlocks"] = rt.reports.total()
            self.rows.append(row)
        return self

    def format(self) -> str:
        lines = [f"{'chain':>6s} {'restart iters':>14s} {'otf iters':>10s} "
                 f"{'restart checks':>15s} {'otf checks':>11s}"]
        for row in self.rows:
            lines.append(
                f"{row['chain']:>6.0f} {row['restart_iterations']:>14.0f} "
                f"{row['otf_iterations']:>10.0f} "
                f"{row['restart_checks']:>15.0f} {row['otf_checks']:>11.0f}"
            )
        return "\n".join(lines)


def _leaky_burst_program(bursts: int, per_burst: int, payload: int):
    """Spawns bursts of leaky goroutines, each pinning a payload blob,
    with a GC after every burst."""

    def main():
        for _ in range(bursts):
            for _ in range(per_burst):
                ch = yield MakeChan(0)

                def leaker(c=ch):
                    data = yield Alloc(Blob(payload))
                    yield Send(c, data)

                yield Go(leaker, name="burst-leaker")
            yield Sleep(20 * MICROSECOND)
            yield RunGC()
        yield Sleep(100 * MICROSECOND)
        yield RunGC()
        yield RunGC()

    return main


def _pool_with_leaks_program(pool: int, leaks: int, cycles: int):
    """A steady population of blocked-but-live workers (a job pool the
    main goroutine keeps reachable) plus a few genuine leaks, collected
    over many cycles.  The pool is what every detection pass has to
    re-examine — the cost the paper's every-Nth-cycle knob amortizes."""

    def main():
        jobs = yield MakeChan(0)

        def worker():
            yield Recv(jobs)  # parked on a live channel forever

        for _ in range(pool):
            yield Go(worker, name="pool-worker")

        def leaker(c):
            yield Send(c, 1)

        for _ in range(leaks):
            ch = yield MakeChan(0)
            yield Go(leaker, ch, name="pool-leaker")
            del ch
        for _ in range(cycles):
            yield Sleep(20 * MICROSECOND)
            yield RunGC()

    return main


class CadenceAblation:
    """Detect-every-N: pause cost vs detection latency."""

    def __init__(self) -> None:
        self.rows: List[Dict[str, float]] = []

    def run(self, cadences=(1, 2, 5, 10), pool: int = 50,
            leaks: int = 10, cycles: int = 30,
            seed: int = 0) -> "CadenceAblation":
        for every in cadences:
            rt = Runtime(
                procs=2, seed=seed,
                config=GolfConfig(detect_every=every),
            )
            rt.spawn_main(_pool_with_leaks_program(pool, leaks, cycles))
            rt.run(until_ns=500 * MILLISECOND)
            stats = rt.collector.stats
            self.rows.append({
                "detect_every": every,
                "num_gc": stats.num_gc,
                "detected": stats.total_deadlocks_detected,
                "checks": sum(c.liveness_checks for c in stats.cycles),
                "pause_total_us": stats.pause_total_ns / 1000,
            })
        return self

    def format(self) -> str:
        lines = [f"{'every':>6s} {'cycles':>7s} {'detected':>9s} "
                 f"{'checks':>7s} {'pause total (us)':>17s}"]
        for row in self.rows:
            lines.append(
                f"{row['detect_every']:>6.0f} {row['num_gc']:>7.0f} "
                f"{row['detected']:>9.0f} {row['checks']:>7.0f} "
                f"{row['pause_total_us']:>17.1f}"
            )
        return "\n".join(lines)


class RecoveryAblation:
    """Reclaim vs monitor-only: detections equal, memory wildly not."""

    def __init__(self) -> None:
        self.rows: List[Dict[str, float]] = []

    def run(self, bursts: int = 20, per_burst: int = 5,
            payload: int = 64 * 1024, seed: int = 0) -> "RecoveryAblation":
        for reclaim in (False, True):
            rt = Runtime(
                procs=2, seed=seed,
                config=GolfConfig(reclaim=reclaim),
            )
            rt.spawn_main(_leaky_burst_program(bursts, per_burst, payload))
            rt.run(until_ns=200 * MILLISECOND)
            rt.gc_until_quiescent()
            ms = rt.memstats()
            self.rows.append({
                "reclaim": float(reclaim),
                "detected": rt.reports.total(),
                "heap_alloc_kb": ms.heap_alloc / 1024,
                "goroutines": ms.num_goroutine,
            })
        return self

    def format(self) -> str:
        lines = [f"{'reclaim':>8s} {'detected':>9s} {'heap (KB)':>10s} "
                 f"{'goroutines':>11s}"]
        for row in self.rows:
            lines.append(
                f"{'on' if row['reclaim'] else 'off':>8s} "
                f"{row['detected']:>9.0f} {row['heap_alloc_kb']:>10.1f} "
                f"{row['goroutines']:>11.0f}"
            )
        return "\n".join(lines)
