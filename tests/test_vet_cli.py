"""End-to-end tests for the `repro vet` CLI, annotations, the baselines
adapter, and the telemetry instruments.

The exit-code contract: 0 when nothing at or above ``--fail-on`` fires,
SystemExit (exit 1) with the findings otherwise, argparse errors exit 2.
"""

import json

import pytest

from repro.cli import main
from repro.staticcheck import vet_paths

LEAKY_SERVICE = "examples/leaky_service.py"
ZOO = "examples/deadlock_zoo.py"


class TestExitCodes:
    def test_default_fail_on_error_passes_warnings(self, capsys):
        assert main(["vet", LEAKY_SERVICE]) == 0
        assert "send-may-drop" in capsys.readouterr().out

    def test_fail_on_warning_fails(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["vet", LEAKY_SERVICE, "--fail-on", "warning"])
        assert "vet FAILED" in str(exc.value)

    def test_fail_on_never_always_passes(self):
        assert main(["vet", "examples", "--fail-on", "never"]) == 0

    def test_unknown_severity_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["vet", LEAKY_SERVICE, "--fail-on", "fatal"])
        assert exc.value.code == 2


class TestListing7Acceptance:
    """`repro vet examples/leaky_service.py` must flag the Listing-7
    send-leak with its full provenance chain, in text and JSON."""

    def test_text_provenance_chain(self, capsys):
        main(["vet", LEAKY_SERVICE])
        out = capsys.readouterr().out
        assert "send-may-drop" in out
        assert "email.done" in out
        for role in ("make-chan", "go", "send"):
            assert role in out
        assert "blocks here" in out

    def test_json_provenance_chain(self, capsys):
        main(["vet", LEAKY_SERVICE, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-vet-report/1"
        (fn,) = payload["functions"]
        diag = next(d for d in fn["diagnostics"]
                    if d["rule"] == "send-may-drop")
        roles = [step["role"] for step in diag["provenance"]]
        assert roles[0] == "make-chan"
        assert "go" in roles
        assert roles[-1] == "send"
        # make-site -> spawn-site -> blocked-send site: every step is a
        # clickable file:line.
        for step in diag["provenance"]:
            assert LEAKY_SERVICE in step["site"]

    def test_json_report_is_byte_deterministic(self, capsys):
        main(["vet", LEAKY_SERVICE, "--json"])
        first = capsys.readouterr().out
        main(["vet", LEAKY_SERVICE, "--json"])
        assert capsys.readouterr().out == first


class TestAnnotations:
    def test_examples_reproduce_their_expectations_exactly(self, capsys):
        # The satellite contract: the annotated expectations in
        # examples/ are exactly what the analyzer finds.
        assert main(["vet", ZOO, LEAKY_SERVICE, "--expect",
                     "--fail-on", "error"]) == 0

    def test_zoo_covers_the_whole_catalog(self):
        vet = vet_paths([ZOO], expect=True)
        hit = set()
        for report in vet.reports:
            for diag in report.diagnostics:
                if not diag.suppressed:
                    hit.add(diag.rule)
        from repro.staticcheck import ALL_RULES

        assert hit == set(ALL_RULES)

    def test_missing_expectation_is_a_mismatch(self, tmp_path, capsys):
        source = (
            "from repro.runtime.instructions import MakeChan, Recv\n"
            "\n"
            "\n"
            "# vet: clean\n"
            "def body():\n"
            "    ch = yield MakeChan(0)\n"
            "    yield Recv(ch)\n"
        )
        path = tmp_path / "wrong.py"
        path.write_text(source)
        with pytest.raises(SystemExit) as exc:
            main(["vet", str(path), "--expect"])
        assert "recv-no-send" in str(exc.value)

    def test_unfulfilled_expectation_is_a_mismatch(self, tmp_path):
        source = (
            "from repro.runtime.instructions import MakeChan, Close\n"
            "\n"
            "\n"
            "# vet: expect send-no-recv\n"
            "def body():\n"
            "    ch = yield MakeChan(0)\n"
            "    yield Close(ch)\n"
        )
        path = tmp_path / "unfulfilled.py"
        path.write_text(source)
        with pytest.raises(SystemExit) as exc:
            main(["vet", str(path), "--expect"])
        assert "send-no-recv" in str(exc.value)

    def test_ok_suppression_is_line_scoped(self, tmp_path):
        source = (
            "from repro.runtime.instructions import MakeChan, Send\n"
            "\n"
            "\n"
            "def body():\n"
            "    ch = yield MakeChan(0)\n"
            "    yield Send(ch, 1)  # vet: ok send-no-recv known demo\n"
        )
        path = tmp_path / "waived.py"
        path.write_text(source)
        vet = vet_paths([str(path)])
        (report,) = vet.reports
        assert report.verdict == "clean"
        (diag,) = report.diagnostics
        assert diag.suppressed


class TestServiceLayerGate:
    def test_service_layer_has_zero_error_findings(self):
        # The resilient service layer is intentionally racy (its seeded
        # handler defect is a may-drop), so it must vet clean at the
        # error level: the static analyzer introduces no false alarms
        # on running production code.
        vet = vet_paths(["src/repro/service"])
        assert vet.failures("error") == []
        assert all(d.severity != "error"
                   for r in vet.reports for d in r.diagnostics)

    def test_seeded_resilience_defect_is_warning_only(self):
        vet = vet_paths(["src/repro/service/resilience.py"])
        rules = {d.rule for r in vet.reports for d in r.diagnostics}
        assert "send-may-drop" in rules


class TestCrossvalCli:
    def test_crossval_passes_floor_and_writes_artifact(self, tmp_path,
                                                       capsys):
        assert main(["vet", "--crossval",
                     "--json-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "recall" in out
        payload = json.loads((tmp_path / "vet-crossval.json").read_text())
        assert payload["schema"] == "repro-vet-crossval/1"
        assert payload["summary"]["recall"] >= 0.75
        assert payload["summary"]["fp"] == 0

    def test_unreachable_recall_floor_fails(self):
        with pytest.raises(SystemExit) as exc:
            main(["vet", "--crossval", "--min-recall", "1.0"])
        assert "FAILED" in str(exc.value)


class TestBaselinesAdapter:
    def test_static_detector_needs_no_run(self):
        from repro.baselines import find_static_leaks
        from repro.microbench.registry import benchmarks_by_name

        bench = benchmarks_by_name()["cgo/sendmail"]
        records = find_static_leaks(bench.body, name=bench.name,
                                    min_severity="warning")
        assert records
        assert all(rec.site for rec in records)

    def test_verify_static_none_raises_on_leak(self):
        from repro.baselines import StaticLeakError, verify_static_none
        from repro.microbench.registry import benchmarks_by_name

        benches = benchmarks_by_name()
        with pytest.raises(StaticLeakError):
            verify_static_none(benches["cgo/sendmail"].body,
                               min_severity="warning")

    def test_verify_static_none_passes_fixed_variant(self):
        from repro.baselines import verify_static_none
        from repro.microbench.registry import all_benchmarks

        bench = next(b for b in all_benchmarks() if b.fixed is not None)
        verify_static_none(bench.fixed, name=f"{bench.name}__fixed")


class TestTelemetry:
    def test_on_vet_run_populates_instruments(self):
        from repro.telemetry import TelemetryHub

        hub = TelemetryHub()
        vet = vet_paths([LEAKY_SERVICE])
        hub.on_vet_run(vet)
        assert hub.vet_runs.value == 1
        assert hub.vet_functions.labels("suspect").value == 1
        assert hub.vet_diagnostics.labels(
            "send-may-drop", "warning").value == 1

    def test_cli_reports_into_default_hub(self, capsys):
        from repro.telemetry import get_default_hub, set_default_hub
        from repro.telemetry import TelemetryHub

        hub = TelemetryHub()
        set_default_hub(hub)
        try:
            main(["vet", LEAKY_SERVICE])
        finally:
            set_default_hub(None)
        assert hub.vet_runs.value == 1
