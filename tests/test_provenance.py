"""The leak-provenance engine: why-leaked evidence for every report.

The acceptance bar: every leak report GOLF produces — across the whole
73-benchmark registry — carries a :class:`ProvenanceRecord` with a
non-empty causal evidence chain, and the records identify the blocked
operation and last-communication partners correctly on the paper's
listings (Listing 2 analog ``cgo/timeout-leak``, Listing 7
``cgo/sendmail``).
"""

from __future__ import annotations

import json

import pytest

from repro.microbench.harness import run_microbenchmark
from repro.microbench.registry import all_benchmarks, benchmarks_by_name
from repro.trace.driver import run_traced_benchmark, write_trace_artifacts


def _run_with_reports(bench, procs=2, seed=1, rt_hook=None):
    captured = []

    def hook(rt):
        captured.append(rt)
        if rt_hook is not None:
            rt_hook(rt)

    run_microbenchmark(bench, procs=procs, seed=seed, rt_hook=hook)
    rt = captured[0]
    rt.gc_until_quiescent()
    reports = list(rt.reports.reports)
    rt.shutdown()
    return reports


class TestRegistrySweep:
    def test_every_report_in_the_registry_has_evidence(self):
        """All 73 buggy variants: no report without a why-leaked record.

        Detection of every site is Table 1's concern, not this test's;
        here any report that *does* exist must explain itself.
        """
        missing = []
        total = 0
        for bench in all_benchmarks():
            for report in _run_with_reports(bench):
                total += 1
                prov = report.provenance
                if prov is None or not prov.evidence:
                    missing.append(f"{bench.name}: {report.glabel}")
        assert not missing, missing
        assert total > 73  # the sweep actually exercised the registry

    def test_provenance_matches_its_report(self):
        bench = benchmarks_by_name()["cgo/sendmail"]
        (report,) = _run_with_reports(bench)
        prov = report.provenance
        assert prov.goid == report.goid
        assert prov.glabel == report.glabel
        assert prov.wait_reason == report.wait_reason
        assert prov.gc_cycle == report.gc_cycle


class TestListingEvidence:
    def test_listing2_timeout_leak_blocked_op(self):
        """Listing 2 analog: a worker abandoned by a timed-out parent."""
        result = run_traced_benchmark("cgo/timeout-leak", procs=2, seed=0)
        (prov,) = result.provenance_records
        assert prov.wait_reason == "chan send"
        (op,) = prov.blocked_op
        assert op["kind"] == "chan"
        assert op["capacity"] == 0
        assert op["waiting_senders"] == 1
        assert op["waiting_receivers"] == 0
        assert not op["closed"]
        # Nobody ever took the result: the ledger proves the absence of
        # a communication partner.
        (partner,) = prov.partners
        assert partner["transfers"] == 0
        # The trace names the goroutine that walked away.
        assert any("body#" in line for line in prov.abandoned_by)

    def test_listing7_sendmail_evidence_chain(self):
        """Listing 7: the sendmail task blocked on an abandoned chan."""
        result = run_traced_benchmark("cgo/sendmail", procs=2, seed=0)
        (prov,) = result.provenance_records
        assert prov.wait_reason == "chan send"
        (op,) = prov.blocked_op
        assert op["kind"] == "chan"
        assert op["label"] == "done"
        assert len(prov.evidence) >= 3
        text = prov.format()
        assert "why-leaked" in text
        assert "chan send" in text
        assert prov.glabel in text
        # The event slice ends at the fatal park.
        assert prov.event_slice
        assert prov.event_slice[-1]["kind"] == "go-park"

    def test_double_send_records_first_transfer_partner(self):
        """cgo/double-send: the first send completed — the ledger must
        name both ends before the second send wedges."""
        result = run_traced_benchmark("cgo/double-send", procs=2, seed=0)
        (prov,) = result.provenance_records
        (partner,) = prov.partners
        assert partner["transfers"] == 1
        assert partner["last_sender_goid"] == prov.goid
        assert partner["last_receiver_goid"] > 0
        assert partner["last_receiver_goid"] != prov.goid

    def test_provenance_without_tracer_still_has_evidence(self):
        """The engine is not gated on tracing: a bare GOLF run gets
        why-leaked records too (minus the event slice)."""
        bench = benchmarks_by_name()["cgo/timeout-leak"]
        (report,) = _run_with_reports(bench)
        prov = report.provenance
        assert prov is not None
        assert len(prov.evidence) >= 3
        assert prov.event_slice == []


class TestArtifacts:
    def test_provenance_json_round_trips(self, tmp_path):
        result = run_traced_benchmark("cgo/sendmail", procs=2, seed=0)
        paths = write_trace_artifacts(result, str(tmp_path))
        with open(paths["provenance"]) as fh:
            doc = json.load(fh)
        assert doc["benchmark"] == "cgo/sendmail"
        assert doc["procs"] == 2 and doc["seed"] == 0
        (leak,) = doc["leaks"]
        assert leak["evidence"]
        assert leak["glabel"] == result.provenance_records[0].glabel

    def test_artifacts_byte_identical_across_runs(self, tmp_path):
        blobs = []
        for i in range(2):
            result = run_traced_benchmark("cgo/timeout-leak", procs=2,
                                          seed=5)
            paths = write_trace_artifacts(result, str(tmp_path / str(i)))
            blobs.append({k: open(p, "rb").read()
                          for k, p in paths.items()})
        assert blobs[0] == blobs[1]

    def test_cli_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["trace", "--benchmark", "cgo/sendmail",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "why-leaked" in out
        assert "chrome schema   : valid" in out
        assert (tmp_path / "trace-cgo-sendmail-p2-s0.trace.json").exists()

    def test_report_as_dict_excludes_provenance_object(self):
        """The equivalence oracle compares report dicts across GC modes;
        provenance stays out of that surface (it is its own artifact)."""
        bench = benchmarks_by_name()["cgo/sendmail"]
        (report,) = _run_with_reports(bench)
        assert "provenance" not in report.as_dict()
        assert report.as_dict()["glabel"] == report.glabel
