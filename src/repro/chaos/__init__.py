"""Deterministic fault injection for the simulated runtime.

The chaos engine perturbs the runtime at its natural interposition
points — scheduler yield points, timers, the GC pacer, the service
layer's downstream calls — and checks that GOLF's guarantees hold *under*
the perturbation:

- **soundness**: no live goroutine is ever reported (the scheduler's
  wake-of-reported tripwire raises :class:`~repro.errors.SchedulerError`
  the instant a reported goroutine would resume);
- **integrity**: :func:`repro.runtime.invariants.check_invariants` stays
  clean after every injected fault and at the end of every schedule;
- **idempotence**: once a schedule quiesces, additional GC cycles detect
  and reclaim nothing.

Everything is reproducible: a fault schedule is fully determined by
``(benchmark, procs, seed, scenario)``, and every injection attempt is
recorded in a replayable trace (:class:`FaultRecord`).

Typical use::

    from repro.chaos import run_chaos_campaign

    report = run_chaos_campaign(seeds=200, scenario="mixed")
    assert report.false_positives == 0
    assert report.invariant_violations == 0
"""

from repro.chaos.injector import FaultInjector
from repro.chaos.plan import FaultKind, FaultPlan, FaultRecord
from repro.chaos.recovery import (
    RECOVERY_P99_SLO_NS,
    RecoveryReport,
    RecoveryScheduleResult,
    SUCCESS_RATE_SLO,
    run_recovery_campaign,
)
from repro.chaos.report import (
    ChaosReport,
    ScheduleResult,
    run_chaos_campaign,
    run_chaos_schedule,
)
from repro.chaos.scenarios import SCENARIOS, Scenario, get_scenario

__all__ = [
    "ChaosReport",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRecord",
    "RECOVERY_P99_SLO_NS",
    "RecoveryReport",
    "RecoveryScheduleResult",
    "SCENARIOS",
    "SUCCESS_RATE_SLO",
    "Scenario",
    "ScheduleResult",
    "get_scenario",
    "run_chaos_campaign",
    "run_chaos_schedule",
    "run_recovery_campaign",
]
