"""Per-rule minimal programs for the vet rule engine.

One test per rule of the catalog (docs/STATIC_ANALYSIS.md): the smallest
body that trips it, plus the discharged twin that must stay clean.
Severity encodes the paper's taxonomy: ``error`` = blocks on every
execution that reaches it, ``warning`` = leaks on some executions only
(GOLF's flaky population).
"""

from repro.runtime.instructions import (
    Close,
    CondWait,
    GetGlobal,
    Go,
    Lock,
    MakeChan,
    NewCond,
    NewMutex,
    NewSema,
    NewWaitGroup,
    Recv,
    RecvCase,
    Select,
    SemAcquire,
    SemRelease,
    Send,
    Unlock,
    WgAdd,
    WgDone,
    WgWait,
)
from repro.staticcheck import analyze_callable
from repro.staticcheck.model import CLEAN, LEAKY, SUSPECT


def _rules(report, severity=None):
    return sorted({d.rule for d in report.diagnostics
                   if not d.suppressed
                   and (severity is None or d.severity == severity)})


def _recv_once(ch):
    yield Recv(ch)


def _send_once(ch):
    yield Send(ch, 1)


class TestChannelRules:
    def test_send_no_recv(self):
        def body():
            ch = yield MakeChan(0)
            yield Go(_send_once, ch)

        report = analyze_callable(body)
        assert report.verdict == LEAKY
        assert _rules(report, "error") == ["send-no-recv"]

    def test_send_overflow_exact_arithmetic(self):
        def body():
            ch = yield MakeChan(1)
            yield Go(_recv_once, ch)
            yield Send(ch, 1)
            yield Send(ch, 2)
            yield Send(ch, 3)

        report = analyze_callable(body)
        assert report.verdict == LEAKY
        assert _rules(report, "error") == ["send-overflow"]

    def test_send_absorbed_by_capacity_is_clean(self):
        def body():
            ch = yield MakeChan(2)
            yield Send(ch, 1)
            yield Send(ch, 2)

        assert analyze_callable(body).verdict == CLEAN

    def test_send_may_drop_when_receiver_races(self):
        def poller(ch):
            yield Select([RecvCase(ch)], default=True)

        def body():
            ch = yield MakeChan(0)
            yield Go(poller, ch)
            yield Send(ch, 1)

        report = analyze_callable(body)
        assert report.verdict == SUSPECT
        assert _rules(report, "warning") == ["send-may-drop"]

    def test_recv_no_send(self):
        def body():
            ch = yield MakeChan(0)
            yield Recv(ch)

        report = analyze_callable(body)
        assert report.verdict == LEAKY
        assert _rules(report, "error") == ["recv-no-send"]

    def test_recv_discharged_by_close_is_clean(self):
        def body():
            ch = yield MakeChan(0)
            yield Close(ch)
            yield Recv(ch)

        assert analyze_callable(body).verdict == CLEAN

    def test_recv_no_close_on_unbounded_drain(self):
        def producer(ch):
            yield Send(ch, 1)

        def body():
            ch = yield MakeChan(0)
            yield Go(producer, ch)
            while True:
                yield Recv(ch)

        report = analyze_callable(body)
        assert report.verdict == LEAKY
        assert _rules(report, "error") == ["recv-no-close"]

    def test_recv_may_starve_on_conditional_close(self):
        def closer(ch):
            mode = yield GetGlobal("mode")
            if mode:
                yield Close(ch)

        def body():
            ch = yield MakeChan(0)
            yield Go(closer, ch)
            yield Recv(ch)

        report = analyze_callable(body)
        assert report.verdict == SUSPECT
        assert _rules(report, "warning") == ["recv-may-starve"]

    def test_select_dead(self):
        def body():
            a = yield MakeChan(0)
            b = yield MakeChan(0)
            yield Select([RecvCase(a), RecvCase(b)])

        report = analyze_callable(body)
        assert report.verdict == LEAKY
        assert _rules(report, "error") == ["select-dead"]

    def test_select_with_live_case_is_clean(self):
        def body():
            a = yield MakeChan(0)
            b = yield MakeChan(0)
            yield Go(_send_once, a)
            yield Select([RecvCase(a), RecvCase(b)])

        assert analyze_callable(body).verdict == CLEAN

    def test_nil_chan_op(self):
        def body():
            ch = None
            yield Send(ch, 1)

        report = analyze_callable(body)
        assert report.verdict == LEAKY
        assert _rules(report, "error") == ["nil-chan-op"]


class TestSyncRules:
    def test_wg_imbalance(self):
        def body():
            wg = yield NewWaitGroup()
            yield WgAdd(wg, 1)
            yield WgWait(wg)

        report = analyze_callable(body)
        assert report.verdict == LEAKY
        assert _rules(report, "error") == ["wg-imbalance"]

    def test_wg_balanced_is_clean(self):
        def worker(wg):
            yield WgDone(wg)

        def body():
            wg = yield NewWaitGroup()
            yield WgAdd(wg, 1)
            yield Go(worker, wg)
            yield WgWait(wg)

        assert analyze_callable(body).verdict == CLEAN

    def test_mutex_held_forever(self):
        def hog(mu):
            yield Lock(mu)

        def body():
            mu = yield NewMutex()
            yield Go(hog, mu)
            yield Lock(mu)
            yield Unlock(mu)

        report = analyze_callable(body)
        assert report.verdict == LEAKY
        assert "mutex-held-forever" in _rules(report, "error")

    def test_lock_unlock_pairs_are_clean(self):
        def polite(mu):
            yield Lock(mu)
            yield Unlock(mu)

        def body():
            mu = yield NewMutex()
            yield Go(polite, mu)
            yield Lock(mu)
            yield Unlock(mu)

        assert analyze_callable(body).verdict == CLEAN

    def test_double_lock(self):
        def body():
            mu = yield NewMutex()
            yield Lock(mu)
            yield Lock(mu)

        report = analyze_callable(body)
        assert report.verdict == LEAKY
        assert "double-lock" in _rules(report, "error")

    def test_cond_no_signal(self):
        def body():
            mu = yield NewMutex()
            cv = yield NewCond(mu)
            yield Lock(mu)
            yield CondWait(cv)
            yield Unlock(mu)

        report = analyze_callable(body)
        assert report.verdict == LEAKY
        assert _rules(report, "error") == ["cond-no-signal"]

    def test_sema_no_release(self):
        def body():
            sem = yield NewSema(0)
            yield SemAcquire(sem)

        report = analyze_callable(body)
        assert report.verdict == LEAKY
        assert _rules(report, "error") == ["sema-no-release"]

    def test_sema_with_release_is_clean(self):
        def releaser(sem):
            yield SemRelease(sem)

        def body():
            sem = yield NewSema(0)
            yield Go(releaser, sem)
            yield SemAcquire(sem)

        assert analyze_callable(body).verdict == CLEAN


class TestTransitiveBlocking:
    def test_blocked_wait_makes_downstream_recv_leak(self):
        # The paper's wg_and_channel_pair: the waiter blocks on an
        # imbalanced WaitGroup, so its receive never happens and the
        # sender leaks transitively.
        def waiter(wg, ch):
            yield WgWait(wg)
            yield Recv(ch)

        def body():
            wg = yield NewWaitGroup()
            ch = yield MakeChan(0)
            yield WgAdd(wg, 1)
            yield Go(waiter, wg, ch)
            yield Send(ch, 1)

        report = analyze_callable(body)
        assert report.verdict == LEAKY
        rules = _rules(report, "error")
        assert "wg-imbalance" in rules
        assert "send-no-recv" in rules


class TestProvenance:
    def test_provenance_chain_spans_spawns(self):
        def worker(ch):
            yield Send(ch, 1)

        def spawner(ch):
            yield Go(worker, ch)

        def body():
            ch = yield MakeChan(0)
            yield Go(spawner, ch)

        report = analyze_callable(body)
        diag = next(d for d in report.diagnostics
                    if d.rule == "send-no-recv")
        roles = [role for role, _site, _detail in diag.provenance]
        # make-site -> spawn-site(s) -> blocked-send site, in order.
        assert roles[0] == "make-chan"
        assert roles[-1] == "send"
        assert roles.count("go") == 2

    def test_diagnostics_are_deterministically_sorted(self):
        def body():
            a = yield MakeChan(0)
            b = yield MakeChan(0)
            yield Recv(a)
            yield Recv(b)

        first = [d.format() for d in analyze_callable(body).diagnostics]
        second = [d.format() for d in analyze_callable(body).diagnostics]
        assert first == second
