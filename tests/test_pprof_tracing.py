"""Tests for goroutine profiles (pprof) and runtime tracing."""

from repro import GolfConfig, Runtime
from repro.runtime.clock import MICROSECOND
from repro.runtime.goroutine import GStatus
from repro.runtime.instructions import (
    Go,
    MakeChan,
    Recv,
    RunGC,
    Send,
    Sleep,
)
from repro.runtime.pprof import (
    format_goroutine_profile,
    format_stack_dump,
    goroutine_profile,
)
from tests.conftest import run_to_end


def _pool_runtime(rt, n=4):
    state = {}

    def main():
        jobs = yield MakeChan(0)
        state["jobs"] = jobs

        def worker():
            yield Recv(jobs)

        for _ in range(n):
            yield Go(worker, name="pool-worker")
        yield Sleep(20 * MICROSECOND)
        yield Sleep(100_000 * MICROSECOND)

    rt.spawn_main(main)
    rt.run(until_ns=100 * MICROSECOND)
    return state


class TestGoroutineProfile:
    def test_groups_identical_stacks(self, rt):
        _pool_runtime(rt, n=4)
        records = goroutine_profile(rt)
        pool = [r for r in records if r.count == 4]
        assert len(pool) == 1
        assert pool[0].wait_reason == "chan receive"
        assert len(pool[0].goids) == 4

    def test_profile_sorted_by_count(self, rt):
        _pool_runtime(rt, n=3)
        records = goroutine_profile(rt)
        counts = [r.count for r in records]
        assert counts == sorted(counts, reverse=True)

    def test_system_goroutines_hidden_by_default(self):
        rt = Runtime(procs=2, seed=1)
        rt.enable_periodic_gc(50 * MICROSECOND)
        _pool_runtime(rt, n=1)
        visible = goroutine_profile(rt)
        with_system = goroutine_profile(rt, include_system=True)
        assert sum(r.count for r in with_system) > sum(
            r.count for r in visible)

    def test_text_format(self, rt):
        _pool_runtime(rt, n=2)
        text = format_goroutine_profile(rt)
        assert text.startswith("goroutine profile: total ")
        assert "chan receive" in text
        assert "#\t" in text

    def test_dead_goroutines_absent(self, rt):
        def main():
            def quick():
                yield Sleep(MICROSECOND)

            yield Go(quick)
            yield Sleep(20 * MICROSECOND)

        run_to_end(rt, main)
        records = goroutine_profile(rt)
        assert sum(r.count for r in records) == 0


class TestGoroutineProfileEdgeStates:
    def _leak_one(self, rt, label="leaky-sender"):
        def main():
            ch = yield MakeChan(0)

            def sender(c):
                yield Send(c, 1)

            yield Go(sender, c := ch, name=label)
            del ch, c
            yield Sleep(20 * MICROSECOND)

        run_to_end(rt, main)

    def test_pending_reclaim_renders(self, rt):
        self._leak_one(rt)
        rt.gc()  # cycle 1: reported, scheduled for reclamation
        pending = [g for g in rt.sched.allgs
                   if g.status == GStatus.PENDING_RECLAIM]
        assert len(pending) == 1
        records = goroutine_profile(rt)
        states = {r.status for r in records}
        assert "pending-reclaim" in states
        text = format_goroutine_profile(rt)
        assert "pending-reclaim" in text
        assert "chan send" in text

    def test_deadlocked_kept_renders(self):
        rt = Runtime(procs=2, seed=7, config=GolfConfig.monitor_only())
        self._leak_one(rt)
        rt.gc()
        rt.gc()
        kept = [g for g in rt.sched.allgs
                if g.status == GStatus.DEADLOCKED]
        assert len(kept) == 1
        text = format_goroutine_profile(rt)
        assert "deadlocked" in text
        # The stack dump prints the wait reason (Go style), not the
        # status — the kept goroutine must still be listed.
        assert (f"goroutine {kept[0].trace_label} [chan send]"
                in format_stack_dump(rt))

    def test_panicking_goroutine_renders(self, rt):
        self._leak_one(rt)
        (victim,) = [g for g in rt.sched.allgs
                     if g.deadlock_label == "leaky-sender"]
        victim.panicking = RuntimeError("mid-unwind snapshot")
        text = format_goroutine_profile(rt)
        assert "chan send" in text
        assert format_stack_dump(rt)

    def test_labels_group_onto_one_record(self, rt):
        _pool_runtime(rt, n=4)
        (pool,) = [r for r in goroutine_profile(rt) if r.count == 4]
        assert pool.labels == ["pool-worker"] * 4

    def test_reclaimed_goroutine_leaves_profile(self, rt):
        self._leak_one(rt)
        rt.gc()
        rt.gc()  # cycle 2: reclaimed -> DEAD -> invisible
        states = {r.status for r in goroutine_profile(rt)}
        assert "pending-reclaim" not in states
        assert "deadlocked" not in states


class TestTracing:
    def _traced_leak_run(self):
        rt = Runtime(procs=2, seed=3, config=GolfConfig())
        tracer = rt.enable_tracing()

        def main():
            ch = yield MakeChan(0)

            def sender(c):
                yield Send(c, 1)

            yield Go(sender, c := ch, name="traced-leaker")
            del ch, c
            yield Sleep(20 * MICROSECOND)
            yield RunGC()
            yield RunGC()

        rt.spawn_main(main)
        rt.run(until_ns=100_000_000)
        return rt, tracer

    def test_lifecycle_events_recorded(self):
        rt, tracer = self._traced_leak_run()
        kinds = {e.kind for e in tracer.events}
        assert {"go-create", "go-park", "go-end",
                "gc-cycle", "partial-deadlock", "go-reclaim"} <= kinds

    def test_deadlock_event_names_goroutine(self):
        rt, tracer = self._traced_leak_run()
        (event,) = tracer.of_kind("partial-deadlock")
        assert "chan send" in event.detail
        reclaim_events = tracer.of_kind("go-reclaim")
        assert [e.goid for e in reclaim_events] == [event.goid]

    def test_per_goroutine_history(self):
        rt, tracer = self._traced_leak_run()
        (dl,) = tracer.of_kind("partial-deadlock")
        history = [e.kind for e in tracer.for_goroutine(dl.goid)]
        assert history[0] == "go-create"
        assert history[-1] == "go-reclaim"
        assert "go-park" in history

    def test_events_timestamped_monotonically(self):
        rt, tracer = self._traced_leak_run()
        times = [e.t_ns for e in tracer.events]
        assert times == sorted(times)

    def test_format_renders_lines(self):
        rt, tracer = self._traced_leak_run()
        text = tracer.format(limit=5)
        assert text.count("\n") == 4
        assert "ns]" in text

    def test_capacity_bound(self):
        rt = Runtime(procs=1, seed=1)
        tracer = rt.enable_tracing(capacity=10)

        def main():
            for _ in range(50):
                yield Sleep(MICROSECOND)

        rt.spawn_main(main)
        rt.run()
        assert len(tracer) == 10
        assert tracer.dropped > 0
        assert "dropped" in tracer.format()

    def test_tracing_off_by_default(self, rt):
        assert rt.tracer is None


class TestEventKindInterning:
    """The event vocabulary is interned at module load (hot-path
    overhaul): one shared object per kind, so tracer emits and kind
    filters compare by pointer."""

    def test_vocabulary_is_interned(self):
        import sys

        from repro.trace import events as ev

        for name in ev._KIND_NAMES:
            kind = getattr(ev, name)
            assert sys.intern(kind) is kind, name
        assert ev.VOCABULARY == frozenset(
            getattr(ev, name) for name in ev._KIND_NAMES)

    def test_emitted_kinds_are_the_shared_constants(self):
        from repro.trace import events as ev

        rt = Runtime(procs=1, seed=5)
        tracer = rt.enable_tracing()

        def main():
            ch = yield MakeChan(1)
            yield Send(ch, 1)
            yield Recv(ch)

        rt.spawn_main(main)
        rt.run()
        kinds = {e.kind for e in tracer.events}
        assert ev.CHAN_SEND in kinds and ev.CHAN_RECV in kinds
        for e in tracer.events:
            # identity, not equality: instrumentation sites must pass
            # the interned constants, never fresh literals
            assert any(e.kind is k for k in ev.VOCABULARY), e.kind
