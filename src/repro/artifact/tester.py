"""The artifact testing harness (paper appendix A.4-A.6).

The original artifact annotates each potentially deadlocking ``go``
instruction with ``// deadlocks: e`` (an exact count, or ``x > 0`` for
"at least one"), runs every benchmark under the GOLF runtime at several
``GOMAXPROCS`` settings, and writes:

- ``results`` — the coverage report: one row per annotated instruction
  with detections per core count, ``Unexpected DL`` markers for
  unannotated detections, ``[runtime failure]`` markers for panics, a
  collapsed row for always-detected instructions, and the aggregate
  percentage (appendix A.5.1);
- ``results-perf.csv`` — per-benchmark marking-phase metrics with the
  baseline collector (``OFF``) and GOLF (``ON``) (appendix A.5.2).

This module reproduces that workflow over the corpus in
:mod:`repro.microbench`; annotations are derived from each benchmark's
declared leaky sites (``x > 0`` by default, exact counts when given).
"""

from __future__ import annotations

import csv
import io
import re
from typing import Dict, List, Optional, Sequence

from repro.core.config import GolfConfig
from repro.microbench.harness import run_microbenchmark
from repro.microbench.registry import Microbenchmark, all_benchmarks


class Annotation:
    """One ``// deadlocks:`` annotation on a ``go`` instruction."""

    __slots__ = ("label", "exact")

    def __init__(self, label: str, exact: Optional[int] = None):
        self.label = label
        #: ``None`` means the artifact's ``x > 0`` form.
        self.exact = exact

    def satisfied_by(self, count: int) -> bool:
        if self.exact is None:
            return count > 0
        return count == self.exact

    def expectation(self) -> str:
        return "x > 0" if self.exact is None else str(self.exact)

    def __repr__(self) -> str:
        return f"<deadlocks: {self.expectation()} @ {self.label}>"


class TesterConfig:
    """Harness inputs, mirroring the artifact's CLI flags.

    Args:
        match: only run benchmarks whose name matches this regex
            (the artifact's ``-match``).
        repeats: runs per (benchmark, GOMAXPROCS) pair (``-repeats``).
        procs_list: GOMAXPROCS configurations.
        perf: also measure baseline-vs-GOLF marking (``-perf``).
        base_seed: seed base; runs use ``base_seed + i``.
    """

    __test__ = False  # named after the artifact's tool, not a pytest class

    def __init__(self, match: str = "", repeats: int = 10,
                 procs_list: Sequence[int] = (1, 2, 4, 10),
                 perf: bool = False, base_seed: int = 0):
        if repeats < 1:
            raise ValueError("repeats must be positive")
        self.match = match
        self.repeats = repeats
        self.procs_list = tuple(procs_list)
        self.perf = perf
        self.base_seed = base_seed

    def selected(self, benches: List[Microbenchmark]) -> List[Microbenchmark]:
        if not self.match:
            return benches
        pattern = re.compile(self.match)
        return [b for b in benches if pattern.search(b.name)]


class SiteRow:
    """Coverage tallies for one annotated ``go`` instruction."""

    __slots__ = ("annotation", "per_procs", "runs")

    def __init__(self, annotation: Annotation, procs_list, runs: int):
        self.annotation = annotation
        self.per_procs: Dict[int, int] = {p: 0 for p in procs_list}
        self.runs = runs

    @property
    def total_rate(self) -> float:
        total = sum(self.per_procs.values())
        return total / (self.runs * len(self.per_procs))

    @property
    def always_detected(self) -> bool:
        return all(v == self.runs for v in self.per_procs.values())


class PerfRow:
    """Marking metrics for one benchmark: baseline OFF vs GOLF ON."""

    __slots__ = ("benchmark", "mark_clock_off_us", "mark_clock_on_us",
                 "num_gc_off", "num_gc_on")

    def __init__(self, benchmark: str, mark_clock_off_us: float,
                 mark_clock_on_us: float, num_gc_off: float,
                 num_gc_on: float):
        self.benchmark = benchmark
        self.mark_clock_off_us = mark_clock_off_us
        self.mark_clock_on_us = mark_clock_on_us
        self.num_gc_off = num_gc_off
        self.num_gc_on = num_gc_on


class TesterReport:
    """The harness outputs: coverage rows, anomalies, perf table."""

    __test__ = False  # named after the artifact's tool, not a pytest class

    def __init__(self, config: TesterConfig):
        self.config = config
        self.rows: Dict[str, SiteRow] = {}
        #: (benchmark, label) pairs detected without an annotation.
        self.unexpected: List[str] = []
        #: per-benchmark runtime failures (panics).
        self.failures: Dict[str, int] = {}
        self.perf_rows: List[PerfRow] = []
        self.benchmarks_run = 0

    # -- coverage ----------------------------------------------------------

    def aggregated(self, procs: Optional[int] = None) -> float:
        if not self.rows:
            return 0.0
        if procs is None:
            total = sum(sum(r.per_procs.values()) for r in self.rows.values())
            denom = (self.config.repeats * len(self.config.procs_list)
                     * len(self.rows))
        else:
            total = sum(r.per_procs[procs] for r in self.rows.values())
            denom = self.config.repeats * len(self.rows)
        return total / denom

    def validate(self) -> List[str]:
        """Annotated sites never detected in any run/configuration —
        either insufficient repeats for a very flaky benchmark (the
        etcd/7443 family needs ~100 runs at ten cores) or a regression."""
        return [
            label for label, row in self.rows.items()
            if not any(row.per_procs.values())
        ]

    def format_results(self) -> str:
        """The artifact's ``results`` report (appendix A.5.1)."""
        header = (
            f"{'Benchmark':34s} "
            + " ".join(f"{p}P".rjust(5) for p in self.config.procs_list)
            + f" {'Total':>8s}"
        )
        lines = [header, "-" * len(header)]
        collapsed = 0
        for label in sorted(self.rows):
            row = self.rows[label]
            if row.always_detected:
                collapsed += 1
                continue
            cells = " ".join(
                f"{row.per_procs[p]:>5d}" for p in self.config.procs_list
            )
            lines.append(f"{label:34s} {cells} {row.total_rate:>7.2%}")
        if collapsed:
            lines.append(
                f"Remaining {collapsed} go instructions "
                f"({self.benchmarks_run} benchmarks){'100.00%':>20s}"
            )
        agg = " ".join(
            f"{self.aggregated(p):>5.1%}" for p in self.config.procs_list
        )
        lines.append(f"{'Aggregated':34s} {agg} {self.aggregated():>7.2%}")
        for item in self.unexpected:
            lines.append(f"Unexpected DL: {item}")
        for bench, count in sorted(self.failures.items()):
            lines.append(f"[runtime failure] {bench} x{count}")
        return "\n".join(lines)

    # -- perf ----------------------------------------------------------------

    def format_perf_csv(self) -> str:
        """The artifact's ``results-perf.csv`` (appendix A.5.2)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow([
            "Benchmark", "Mark clock OFF (us)", "Mark clock ON (us)",
            "GC cycles OFF", "GC cycles ON",
        ])
        for row in self.perf_rows:
            writer.writerow([
                row.benchmark,
                f"{row.mark_clock_off_us:.2f}",
                f"{row.mark_clock_on_us:.2f}",
                f"{row.num_gc_off:.1f}",
                f"{row.num_gc_on:.1f}",
            ])
        return buffer.getvalue()

    def write(self, results_path: str,
              perf_path: Optional[str] = None) -> None:
        with open(results_path, "w") as fh:
            fh.write(self.format_results() + "\n")
        if perf_path is not None and self.perf_rows:
            with open(perf_path, "w") as fh:
                fh.write(self.format_perf_csv())


def _annotations_for(bench: Microbenchmark) -> List[Annotation]:
    return [Annotation(label) for label in bench.sites]


def run_tester(config: Optional[TesterConfig] = None,
               benchmarks: Optional[List[Microbenchmark]] = None,
               ) -> TesterReport:
    """Execute the artifact workflow and return the report."""
    config = config or TesterConfig()
    benches = config.selected(
        benchmarks if benchmarks is not None else all_benchmarks())
    report = TesterReport(config)
    report.benchmarks_run = len(benches)

    for bench in benches:
        for annotation in _annotations_for(bench):
            report.rows[annotation.label] = SiteRow(
                annotation, config.procs_list, config.repeats)

    for bench in benches:
        expected = set(bench.sites)
        for procs in config.procs_list:
            for i in range(config.repeats):
                seed = config.base_seed + i * 6151 + procs * 389
                outcome = run_microbenchmark(bench, procs=procs, seed=seed)
                if outcome.panic is not None:
                    report.failures[bench.name] = (
                        report.failures.get(bench.name, 0) + 1)
                    continue
                for label in outcome.detected:
                    if label in expected:
                        report.rows[label].per_procs[procs] += 1
                    else:
                        report.unexpected.append(
                            f"{bench.name}: {label or '<unlabeled>'}")

        if config.perf:
            report.perf_rows.append(_measure_perf(bench, config))
    return report


def _measure_perf(bench: Microbenchmark, config: TesterConfig) -> PerfRow:
    """Baseline-vs-GOLF marking comparison for one benchmark (1 core,
    averaged over the configured repeats), as appendix A.5.2 reports."""
    clocks = {True: [], False: []}
    cycles = {True: [], False: []}
    for golf in (False, True):
        gc_config = GolfConfig() if golf else GolfConfig.baseline()
        for i in range(config.repeats):
            outcome = run_microbenchmark(
                bench, procs=1, seed=config.base_seed + i * 31,
                config=gc_config)
            clocks[golf].append(outcome.mark_clock_ns)
            cycles[golf].append(outcome.num_gc)

    def mean(values):
        return sum(values) / len(values) if values else 0.0

    return PerfRow(
        benchmark=bench.name,
        mark_clock_off_us=mean(clocks[False]) / 1000.0,
        mark_clock_on_us=mean(clocks[True]) / 1000.0,
        num_gc_off=mean(cycles[False]),
        num_gc_on=mean(cycles[True]),
    )
