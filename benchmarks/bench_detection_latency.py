"""Detection latency vs GC cadence (the flip side of paper section 6.2).

Detecting every Nth cycle reduces overhead "at no cost to the efficacy"
— every leak is still found — but time-to-detection scales with
(interval x cadence).  This bench quantifies that trade-off.
"""

from benchmarks.conftest import emit, once
from repro.experiments.latency import (
    format_daemon_sweep,
    format_latency_sweep,
    run_daemon_latency_sweep,
    run_latency_sweep,
)


def test_detection_latency_sweep(benchmark):
    results = once(benchmark, lambda: run_latency_sweep(
        gc_intervals_ms=(0.5, 2.0, 8.0), cadences=(1, 5), leaks=60))
    emit("detection_latency", format_latency_sweep(results))

    by_key = {(r.gc_interval_ms, r.detect_every): r for r in results}
    # Efficacy: everything detected everywhere.
    assert all(r.detected == r.leaks for r in results)
    # Latency scales with the effective detection period.
    assert (by_key[(0.5, 1)].mean_ms() < by_key[(2.0, 1)].mean_ms()
            < by_key[(8.0, 1)].mean_ms())
    assert by_key[(2.0, 5)].mean_ms() > 2 * by_key[(2.0, 1)].mean_ms()


def test_daemon_latency_slo_curve(benchmark):
    """Latency vs daemon interval, GC pinned at its operational 100ms.

    The always-on daemon's SLO: time-to-detection is bounded by the
    daemon interval, not the GC cadence.
    """
    results = once(benchmark, lambda: run_daemon_latency_sweep(
        daemon_intervals_ms=(5.0, 20.0, 50.0, 200.0),
        gc_interval_ms=100.0, leaks=60))
    emit("daemon_latency_slo", format_daemon_sweep(results))

    baseline = results[0]
    by_daemon = {r.daemon_interval_ms: r for r in results[1:]}
    assert baseline.daemon_interval_ms is None
    # Efficacy is untouched: everything detected in every setting.
    assert all(r.detected == r.leaks for r in results)
    # The headline SLO: daemon at 50ms beats the 100ms GC cadence
    # baseline on p99 detection latency.
    assert by_daemon[50.0].p99_ms() < baseline.p99_ms()
    # The curve tracks the daemon interval below the GC cadence...
    assert (by_daemon[5.0].p99_ms() < by_daemon[20.0].p99_ms()
            < by_daemon[50.0].p99_ms())
    # ...and each such row is bounded by its interval (+ one fixpoint).
    for interval in (5.0, 20.0, 50.0):
        assert by_daemon[interval].p99_ms() <= interval + 1.0
    # Above the GC cadence the daemon adds nothing: the row collapses
    # onto the baseline.
    assert by_daemon[200.0].p99_ms() <= baseline.p99_ms() + 1.0
