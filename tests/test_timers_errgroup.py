"""Tests for Ticker/Timer and the errgroup analog."""

import pytest

from repro import Runtime
from repro.baselines.goleak import find_leaks
from repro.runtime.clock import MICROSECOND, MILLISECOND
from repro.runtime.errgroup import group_go, group_wait, new_group, with_context
from repro.runtime.goroutine import GStatus
from repro.runtime.instructions import (
    Go,
    MakeChan,
    Recv,
    Send,
    Sleep,
)
from repro.runtime.timers import new_ticker, new_timer
from tests.conftest import run_to_end


class TestTicker:
    def test_delivers_ticks(self, rt):
        ticks = []

        def main():
            ticker = yield from new_ticker(10 * MICROSECOND)
            for _ in range(3):
                t, ok = yield Recv(ticker.ch)
                ticks.append(t)
            ticker.stop()
            yield Sleep(30 * MICROSECOND)

        run_to_end(rt, main)
        assert len(ticks) == 3
        assert ticks == sorted(ticks)

    def test_stop_terminates_loop(self, rt):
        def main():
            ticker = yield from new_ticker(10 * MICROSECOND)
            yield Recv(ticker.ch)
            ticker.stop()
            yield Sleep(50 * MICROSECOND)

        run_to_end(rt, main)
        lingering = [g for g in rt.sched.allgs
                     if g.status != GStatus.DEAD and not g.is_system]
        assert lingering == []

    def test_ticks_dropped_when_consumer_lags(self, rt):
        def main():
            ticker = yield from new_ticker(5 * MICROSECOND)
            yield Sleep(100 * MICROSECOND)  # many intervals pass
            # Only one tick is buffered (cap 1), the rest were dropped.
            assert len(ticker.ch) == 1
            ticker.stop()
            yield Sleep(20 * MICROSECOND)

        assert run_to_end(rt, main) == "main-exited"

    def test_forgotten_stop_is_runaway_live_not_deadlock(self, rt):
        def main():
            ticker = yield from new_ticker(10 * MICROSECOND)
            yield Recv(ticker.ch)
            # forgot ticker.stop()

        run_to_end(rt, main)
        rt.gc_until_quiescent()
        assert rt.reports.total() == 0  # GOLF is (correctly) silent
        # goleak with external categories sees the runaway loop.
        assert find_leaks(rt, include_external=True, include_running=True)

    def test_invalid_interval(self, rt):
        def main():
            yield from new_ticker(0)

        rt.spawn_main(main)
        with pytest.raises(ValueError):
            rt.run()


class TestTimer:
    def test_fires_once(self, rt):
        state = {}

        def main():
            timer = yield from new_timer(20 * MICROSECOND)
            t, ok = yield Recv(timer.ch)
            state["fired_at"] = t
            state["ok"] = ok

        run_to_end(rt, main)
        assert state["ok"] and state["fired_at"] >= 20 * MICROSECOND

    def test_stop_suppresses_firing(self, rt):
        def main():
            timer = yield from new_timer(20 * MICROSECOND)
            timer.stop()
            yield Sleep(50 * MICROSECOND)
            assert len(timer.ch) == 0

        assert run_to_end(rt, main) == "main-exited"

    def test_unread_timer_never_leaks(self, rt):
        def main():
            yield from new_timer(10 * MICROSECOND)
            yield Sleep(50 * MICROSECOND)
            # channel dropped unread: the cap-1 buffer absorbed the send

        run_to_end(rt, main)
        rt.gc_until_quiescent()
        assert rt.reports.total() == 0


class TestErrgroup:
    def test_wait_joins_all_tasks(self, rt):
        finished = []

        def main():
            group = yield from new_group()

            def task(i):
                yield Sleep((i + 1) * 5 * MICROSECOND)
                finished.append(i)
                return None

            for i in range(4):
                yield from group_go(group, task, i)
            err = yield from group_wait(group)
            finished.append(("err", err))

        run_to_end(rt, main)
        assert finished[-1] == ("err", None)
        assert sorted(finished[:-1]) == [0, 1, 2, 3]

    def test_first_error_wins(self, rt):
        state = {}

        def main():
            group = yield from new_group()

            def ok_task():
                yield Sleep(5 * MICROSECOND)
                return None

            def failing_task(msg, delay):
                yield Sleep(delay)
                return msg

            yield from group_go(group, ok_task)
            yield from group_go(group, failing_task, "first", 10 * MICROSECOND)
            yield from group_go(group, failing_task, "second", 30 * MICROSECOND)
            state["err"] = yield from group_wait(group)

        run_to_end(rt, main)
        assert state["err"] == "first"

    def test_with_context_cancels_on_error(self, rt):
        state = {}

        def main():
            group, ctx = yield from with_context()

            def failing():
                yield Sleep(10 * MICROSECOND)
                return "boom"

            def watcher():
                _, ok = yield Recv(ctx.done)
                state["cancelled_seen"] = True

            yield Go(watcher)
            yield from group_go(group, failing)
            state["err"] = yield from group_wait(group)
            yield Sleep(20 * MICROSECOND)

        run_to_end(rt, main)
        assert state["err"] == "boom"
        assert state.get("cancelled_seen") is True

    def test_wait_cancels_context_even_on_success(self, rt):
        state = {}

        def main():
            group, ctx = yield from with_context()

            def ok_task():
                yield Sleep(5 * MICROSECOND)
                return None

            yield from group_go(group, ok_task)
            yield from group_wait(group)
            state["err_after_wait"] = ctx.err

        run_to_end(rt, main)
        assert state["err_after_wait"] is not None  # ctx released

    def test_task_exception_crashes_like_panic(self, rt):
        def main():
            group = yield from new_group()

            def bad_task():
                yield Sleep(MICROSECOND)
                raise RuntimeError("task bug")

            yield from group_go(group, bad_task)
            yield from group_wait(group)

        rt.spawn_main(main)
        with pytest.raises(RuntimeError, match="task bug"):
            rt.run()
