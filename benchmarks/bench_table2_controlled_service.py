"""Table 2: the controlled service, baseline vs GOLF at 0% / 10% leaks.

Paper highlights at 10% leak: GOLF gives ~9% higher client throughput,
~1.5-1.6x better tail latency, ~49x lower HeapAlloc, and more (shorter)
GC cycles; per-cycle pauses are ~2.5x higher under GOLF (B/G ~0.39).
With 0% leaks the two runtimes are equivalent outside GC pauses.
"""

import os

from benchmarks.conftest import emit, once
from repro.experiments import format_table2, run_table2
from repro.service.controlled import ControlledConfig

DURATION_S = int(os.environ.get("REPRO_TABLE2_DURATION_S", "15"))


_SPARK = " ▁▂▃▄▅▆▇█"


def _sparkline(values):
    peak = max(values) if values else 0
    if peak == 0:
        return "(flat at 0)"
    return "".join(
        _SPARK[min(len(_SPARK) - 1, v * (len(_SPARK) - 1) // peak)]
        for v in values
    )


def test_table2_service_metrics(benchmark):
    config = ControlledConfig(duration_s=DURATION_S, warmup_s=3, seed=1)
    result = once(benchmark, lambda: run_table2(config=config))
    emit("table2", format_table2(result))

    # Companion artifact: the per-second leak build-up under 10% leaks —
    # baseline accumulates, GOLF holds flat (the paper's memory story).
    series_lines = ["blocked goroutines per virtual second (10% leaks):"]
    for golf in (False, True):
        cell = result.cells[(0.10, golf)]
        tag = "GOLF    " if golf else "baseline"
        series_lines.append(
            f"  {tag} {_sparkline(cell.blocked_series)} "
            f"peak={max(cell.blocked_series or [0])}"
        )
    emit("table2_series", "\n".join(series_lines))

    # No leaks: equivalent service metrics...
    assert 0.95 <= result.ratio(0.0, "throughput_rps") <= 1.05
    assert 0.9 <= result.ratio(0.0, "p99_ms") <= 1.1
    # ...but GOLF pays more pause per cycle (paper B/G = 0.38).
    assert result.ratio(0.0, "pause_per_cycle_ns") < 0.95

    # 10% leaks: GOLF wins memory by a wide margin (paper: ~49x).
    assert result.ratio(0.10, "heap_alloc_mb") > 20
    assert result.ratio(0.10, "heap_objects") > 2
    assert result.ratio(0.10, "stack_inuse_mb") > 2
    # Tail latency and throughput favor GOLF under leaks.
    assert result.ratio(0.10, "p99_ms") > 1.0
    assert result.ratio(0.10, "throughput_rps") <= 1.0
    # Baseline GC fraction worsens under leaks (paper 30% vs 26%).
    assert result.ratio(0.10, "gc_cpu_fraction") >= 1.0
