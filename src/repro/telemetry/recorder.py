"""The flight recorder: a bounded ring of structured runtime events.

Production services cannot afford an unbounded trace (the failure mode
the old ``runtime/tracing.py`` list had); the flight recorder keeps the
*last* ``capacity`` events — drop-oldest, with a dropped-event counter —
so when something goes wrong the recent history is always on hand.

Events carry a severity and a category; both can be filtered at record
time (so a production configuration can keep only WARN+ service events)
and again at read time.  *Incidents* — watchdog stalls, panics, leak
reports — snapshot the tail of the buffer at the moment they happen,
preserving the context even after the ring has rolled past it.

Timestamps come from the virtual clock, so dumps are byte-identical
across runs of the same ``(program, procs, seed)``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set

DEBUG = 10
INFO = 20
WARN = 30
ERROR = 40

SEVERITY_NAMES = {DEBUG: "DEBUG", INFO: "INFO", WARN: "WARN", ERROR: "ERROR"}


class RingBuffer:
    """A fixed-capacity drop-oldest buffer with a dropped counter."""

    __slots__ = ("capacity", "_items", "_start", "dropped")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._items: List = []
        self._start = 0
        self.dropped = 0

    def append(self, item) -> None:
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        self._items[self._start] = item
        self._start = (self._start + 1) % self.capacity
        self.dropped += 1

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        n = len(self._items)
        for i in range(n):
            yield self._items[(self._start + i) % n]

    def last(self, n: int) -> List:
        items = list(self)
        return items[-n:] if n < len(items) else items

    def clear(self) -> None:
        self._items = []
        self._start = 0
        self.dropped = 0


class RecorderEvent:
    """One structured, timestamped event."""

    __slots__ = ("t_ns", "category", "kind", "severity", "goid", "detail")

    def __init__(self, t_ns: int, category: str, kind: str, severity: int,
                 goid: int = 0, detail: str = ""):
        self.t_ns = t_ns
        self.category = category
        self.kind = kind
        self.severity = severity
        self.goid = goid
        self.detail = detail

    def format(self) -> str:
        sev = SEVERITY_NAMES.get(self.severity, str(self.severity))
        who = f" g{self.goid}" if self.goid else ""
        detail = f" {self.detail}" if self.detail else ""
        return (f"[{self.t_ns:>12d}ns] {sev:<5} {self.category:<8} "
                f"{self.kind}{who}{detail}")

    def as_dict(self) -> dict:
        return {
            "t_ns": self.t_ns,
            "category": self.category,
            "kind": self.kind,
            "severity": SEVERITY_NAMES.get(self.severity, str(self.severity)),
            "goid": self.goid,
            "detail": self.detail,
        }

    def __repr__(self) -> str:
        return f"<{self.format()}>"


class Incident:
    """A snapshot of the recorder tail taken when something went wrong."""

    __slots__ = ("t_ns", "reason", "detail", "events")

    def __init__(self, t_ns: int, reason: str, detail: str,
                 events: Sequence[RecorderEvent]):
        self.t_ns = t_ns
        self.reason = reason
        self.detail = detail
        self.events = tuple(events)

    def format(self) -> str:
        lines = [f"== incident [{self.reason}] at {self.t_ns}ns =="]
        if self.detail:
            lines.extend(f"  {line}" for line in self.detail.splitlines())
        lines.append(f"  last {len(self.events)} event(s):")
        lines.extend(f"  {e.format()}" for e in self.events)
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "t_ns": self.t_ns,
            "reason": self.reason,
            "detail": self.detail,
            "events": [e.as_dict() for e in self.events],
        }


class FlightRecorder:
    """Bounded event log with severity/category filtering and incidents.

    Args:
        clock: virtual clock used to timestamp events (may be attached
            later; events recorded without one are stamped 0).
        capacity: ring size.
        min_severity: events below this are not recorded at all.
        categories: if given, only these categories are recorded.
        incident_tail: events snapshotted into each incident.
        max_incidents: incidents beyond this are counted, not stored.
    """

    def __init__(self, clock=None, capacity: int = 8192,
                 min_severity: int = DEBUG,
                 categories: Optional[Sequence[str]] = None,
                 incident_tail: int = 64, max_incidents: int = 64):
        self.clock = clock
        self.min_severity = min_severity
        self.categories: Optional[Set[str]] = (
            set(categories) if categories is not None else None)
        self.incident_tail = incident_tail
        self.max_incidents = max_incidents
        self._ring = RingBuffer(capacity)
        self.incidents: List[Incident] = []
        self.incidents_suppressed = 0
        self.filtered = 0

    # -- recording -----------------------------------------------------------

    def record(self, category: str, kind: str, goid: int = 0,
               detail: str = "", severity: int = INFO,
               t_ns: Optional[int] = None) -> None:
        if severity < self.min_severity or (
                self.categories is not None
                and category not in self.categories):
            self.filtered += 1
            return
        if t_ns is None:
            t_ns = self.clock.now if self.clock is not None else 0
        self._ring.append(
            RecorderEvent(t_ns, category, kind, severity, goid, detail))

    def incident(self, reason: str, detail: str = "") -> Optional[Incident]:
        """Snapshot the buffer tail; returns None past ``max_incidents``."""
        if len(self.incidents) >= self.max_incidents:
            self.incidents_suppressed += 1
            return None
        t_ns = self.clock.now if self.clock is not None else 0
        incident = Incident(t_ns, reason, detail,
                            self._ring.last(self.incident_tail))
        self.incidents.append(incident)
        return incident

    # -- reading -------------------------------------------------------------

    @property
    def dropped(self) -> int:
        return self._ring.dropped

    def __len__(self) -> int:
        return len(self._ring)

    def events(self, category: Optional[str] = None,
               min_severity: int = DEBUG) -> List[RecorderEvent]:
        return [
            e for e in self._ring
            if (category is None or e.category == category)
            and e.severity >= min_severity
        ]

    def dump(self, limit: Optional[int] = None) -> str:
        """A deterministic, human-readable dump of the buffer and the
        incident log — what an operator reads after a wedge."""
        events = list(self._ring) if limit is None else self._ring.last(limit)
        lines = [f"flight recorder: {len(self._ring)} event(s) buffered, "
                 f"{self.dropped} dropped, {len(self.incidents)} incident(s)"]
        lines.extend(e.format() for e in events)
        for incident in self.incidents:
            lines.append("")
            lines.append(incident.format())
        if self.incidents_suppressed:
            lines.append(
                f"... {self.incidents_suppressed} further incident(s) "
                f"suppressed (max_incidents)")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "buffered": len(self._ring),
            "dropped": self.dropped,
            "filtered": self.filtered,
            "events": [e.as_dict() for e in self._ring],
            "incidents": [i.as_dict() for i in self.incidents],
            "incidents_suppressed": self.incidents_suppressed,
        }
