"""Runtime watchdog: detects global stalls and dumps goroutine state.

In the simulator, a *stall* is the situation Go's runtime can never
diagnose on its own: every user goroutine is detectably blocked (channel
or ``sync`` wait — no timer will save them) and nothing changed since the
last poll, yet the process as a whole keeps "running" because system
goroutines (periodic GC, tickers, the watchdog itself) still have timers
pending.  The scheduler's global-deadlock fatal error never fires in that
state, so long-running services wedge silently — exactly the failure mode
GOLF's recovery is meant to repair.

The watchdog takes cheap user-state snapshots and reports a
:class:`StallReport` (with a full goroutine dump, like Go's fatal-error
listing) when two consecutive polls see the same fully-blocked picture.
Use it host-side between ``run_for`` slices, or install it as a system
goroutine that polls on a virtual-time interval::

    wd = Watchdog(rt)
    wd.install(interval_ns=10 * MILLISECOND)
    rt.run(until_ns=...)
    if wd.stalls:
        print(wd.stalls[0].dump)
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.runtime.clock import MILLISECOND
from repro.runtime.goroutine import GStatus
from repro.runtime.instructions import Sleep


class StallReport:
    """One detected stall: when, who, and the stack listing."""

    __slots__ = ("time_ns", "goids", "dump")

    def __init__(self, time_ns: int, goids: Tuple[int, ...], dump: str):
        self.time_ns = time_ns
        self.goids = goids
        self.dump = dump

    def __repr__(self) -> str:
        return (
            f"<stall @{self.time_ns}ns goroutines={list(self.goids)}>"
        )


class Watchdog:
    """Polls a runtime for global stalls among user goroutines.

    A stall is declared when, for two consecutive polls, every live user
    goroutine is detectably blocked (``B(g)`` non-empty, no timer) with
    unchanged identity and wait reason.  Goroutines GOLF already
    reported (kept-deadlocked) are excluded — they are diagnosed, not
    stalled.  Each distinct stalled snapshot is reported once, so a
    wedge that GOLF later repairs does not flood the log.
    """

    def __init__(self, rt):
        self.rt = rt
        self.stalls: List[StallReport] = []
        self._last_snapshot: Optional[Tuple] = None
        self._reported_snapshots: set = set()

    def _snapshot(self) -> Optional[Tuple]:
        """The current fully-blocked user picture, or None if any user
        goroutine can still make progress on its own."""
        blocked = []
        for g in self.rt.sched.allgs:
            # System goroutines (watchdog itself, forcegc) and the
            # detection daemon run forever by design: a stall verdict
            # must never implicate them, and their timer parks must not
            # mask a wedged user program either.
            if g.is_system or g.is_daemon or g.status == GStatus.DEAD:
                continue
            if g.status in (GStatus.DEADLOCKED, GStatus.PENDING_RECLAIM):
                continue  # already diagnosed by GOLF
            if not g.is_blocked_detectably:
                return None  # runnable, running, or timer-parked
            reason = g.wait_reason.value if g.wait_reason else "?"
            blocked.append((g.goid, reason))
        if not blocked:
            return None
        return tuple(sorted(blocked))

    def poll(self) -> Optional[StallReport]:
        """Compare against the previous poll; report a new stall if any."""
        snap = self._snapshot()
        stalled = snap is not None and snap == self._last_snapshot
        self._last_snapshot = snap
        if not stalled or snap in self._reported_snapshots:
            return None
        self._reported_snapshots.add(snap)
        goids = tuple(goid for goid, _ in snap)
        sched = self.rt.sched
        victims = [g for g in sched.allgs if g.goid in set(goids)]
        report = StallReport(self.rt.clock.now, goids,
                             sched.goroutine_dump(victims))
        self.stalls.append(report)
        if sched.tracer is not None:
            sched.tracer.emit(
                "watchdog-stall", 0,
                f"{len(goids)} user goroutines wedged: {list(goids)}")
        if sched.telemetry is not None:
            sched.telemetry.on_stall(report)
        return report

    def install(self, interval_ns: int = 10 * MILLISECOND) -> None:
        """Spawn a system goroutine polling every ``interval_ns``.

        The polling goroutine only sleeps and snapshots — it cannot wake
        anyone, so it never masks the stall it is looking for.
        """

        def watchdog_loop():
            while True:
                yield Sleep(interval_ns)
                self.poll()

        self.rt.sched.spawn(watchdog_loop, name="watchdog", system=True,
                            go_site="<runtime>")
