"""One runtime shard: an independent heap/scheduler/collector/detector.

A :class:`ShardSpec` is a small picklable recipe — shard id, seed
derivation, routed user ids, and the traffic model — from which
:class:`ShardRunner` builds a full :class:`~repro.runtime.api.Runtime`
(its own :class:`TelemetryHub`, periodic GC, and optionally the
always-on detection daemon) and serves the routed users' sessions
through an RPC-style server, exactly like the paper's controlled
service but per shard.

Execution is *stepped*: :meth:`ShardRunner.step` advances the shard by
one bounded slice of virtual time.  The sequential fleet mode
interleaves slices round-robin across shards; the multiprocessing mode
runs the same stepping loop to completion inside a worker process.
Because both modes drive the identical slice cadence from the identical
spec, a shard's entire execution — reports, fingerprints, metrics — is
a pure function of the spec, regardless of mode.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.config import GolfConfig
from repro.fleet.router import TrafficModel, stable_hash64
from repro.runtime.api import Runtime
from repro.runtime.clock import MILLISECOND, SECOND
from repro.runtime.instructions import (
    Alloc,
    Go,
    MakeChan,
    Recv,
    RecvCase,
    Select,
    Send,
    Sleep,
    WgAdd,
    WgDone,
    WgWait,
    Work,
)
from repro.runtime.objects import GoMap
from repro.runtime.scheduler import RunStatus


class ShardSpec:
    """Everything needed to (re)build one shard, picklable."""

    def __init__(self, shard_id: int, fleet_seed: int,
                 user_ids: List[int], model: TrafficModel,
                 procs: int = 2, step_ms: int = 50,
                 periodic_gc_ms: int = 20, handler_work_us: int = 100,
                 map_entries: int = 256, drain_ms: int = 50,
                 daemon_interval_ms: Optional[float] = None,
                 scrape_interval_ms: Optional[float] = None):
        self.shard_id = shard_id
        self.fleet_seed = fleet_seed
        self.user_ids = list(user_ids)
        self.model = model
        self.procs = procs
        self.step_ms = step_ms
        self.periodic_gc_ms = periodic_gc_ms
        self.handler_work_us = handler_work_us
        self.map_entries = map_entries
        self.drain_ms = drain_ms
        self.daemon_interval_ms = daemon_interval_ms
        self.scrape_interval_ms = scrape_interval_ms

    @property
    def shard_seed(self) -> int:
        """Per-shard scheduler seed, derived so shards never share an
        RNG stream."""
        return stable_hash64(self.fleet_seed, "shard", self.shard_id) % (2**31)

    @property
    def step_ns(self) -> int:
        return self.step_ms * MILLISECOND


class ShardResult:
    """Picklable outcome of one shard's run (what crosses the pipe)."""

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        self.users = 0
        self.requests_completed = 0
        self.service_end_ns = 0
        self.leaks_detected = 0
        self.leaks_reclaimed = 0
        self.num_gc = 0
        self.reports: List[dict] = []
        self.report_texts: List[str] = []
        self.fingerprints: dict = {}
        self.metrics: dict = {}
        self.memstats: Dict[str, float] = {}
        self.invariant_violations: List[str] = []
        self.daemon_checks = 0
        #: TSDB dump + alert-engine dump, populated only when the spec
        #: asked for scraping (None keeps pre-TSDB artifacts byte-equal).
        self.tsdb: Optional[dict] = None
        self.alerts: Optional[dict] = None

    @property
    def sustained_rps(self) -> float:
        """Virtual-time request throughput (the repo's RPS convention:
        completed requests per virtual second of service)."""
        if self.service_end_ns <= 0:
            return 0.0
        return self.requests_completed / (self.service_end_ns / SECOND)

    @property
    def leaks_per_s(self) -> float:
        """Virtual-time leak-detection throughput."""
        if self.service_end_ns <= 0:
            return 0.0
        return self.leaks_detected / (self.service_end_ns / SECOND)

    def as_dict(self) -> dict:
        out = {
            "shard_id": self.shard_id,
            "users": self.users,
            "requests_completed": self.requests_completed,
            "service_end_ns": self.service_end_ns,
            "sustained_rps": round(self.sustained_rps, 3),
            "leaks_detected": self.leaks_detected,
            "leaks_reclaimed": self.leaks_reclaimed,
            "leaks_per_s": round(self.leaks_per_s, 3),
            "num_gc": self.num_gc,
            "daemon_checks": self.daemon_checks,
            "reports": list(self.reports),
            "memstats": dict(self.memstats),
            "invariant_violations": list(self.invariant_violations),
        }
        if self.tsdb is not None:
            out["tsdb"] = self.tsdb
            out["alerts"] = self.alerts
        return out


class ShardRunner:
    """Owns one shard's runtime and drives it in bounded virtual slices."""

    def __init__(self, spec: ShardSpec):
        from repro.telemetry.hub import TelemetryHub

        self.spec = spec
        self.done = False
        self.result = ShardResult(spec.shard_id)
        self.result.users = len(spec.user_ids)
        self._state = {"completed": 0}
        self.rt = Runtime(procs=spec.procs, seed=spec.shard_seed,
                          config=GolfConfig())
        self.hub = TelemetryHub()
        self.hub.attach(self.rt)
        self.hub.fingerprints.begin_run(f"shard-{spec.shard_id}")
        self.rt.enable_periodic_gc(spec.periodic_gc_ms * MILLISECOND)
        if spec.daemon_interval_ms is not None:
            self.rt.detect_partial_deadlock(spec.daemon_interval_ms)
        self.scraper = None
        if spec.scrape_interval_ms is not None:
            from repro.telemetry.alerts import builtin_slo_rules

            self.hub.enable_tsdb(
                scrape_interval_ms=spec.scrape_interval_ms,
                rules=builtin_slo_rules(
                    daemon_interval_ms=spec.daemon_interval_ms,
                    gc_interval_ms=spec.periodic_gc_ms))
            self.scraper = self.rt.start_metrics_scrape(self.hub)
        self._install_program()

    # -- the workload ---------------------------------------------------------

    def _install_program(self) -> None:
        spec = self.spec
        model = spec.model
        rt = self.rt
        state = self._state
        request_ch = rt.make_chan(capacity=max(4, len(spec.user_ids)),
                                  label=f"shard{spec.shard_id}.requests")
        # The accept queue is a live listener (package-level state), so
        # the idle server loop is never mistaken for a leak.
        rt.set_global("fleet.request_ch", request_ch)
        wg = rt.new_waitgroup(label=f"shard{spec.shard_id}.sessions")
        controlled = model.workload == "controlled"

        def handler(reply_ch, leaky):
            if controlled:
                # The controlled service's "double send": parent selects
                # on two channels and returns after the first message;
                # a leaky child blocks forever on the second send.
                parent_map = yield Alloc(GoMap.sized(spec.map_entries))
                c1 = yield MakeChan(0, label="fleet-c1")
                c2 = yield MakeChan(0, label="fleet-c2")

                def child():
                    child_map = yield Alloc(GoMap.sized(spec.map_entries))
                    yield Work(20)
                    if leaky:
                        yield Send(c1, "partial")
                        yield Send(c2, "final")  # never received: leaks
                    else:
                        yield Send(c1, "done")

                yield Go(child, name="fleet-child")
                yield Work(max(1, spec.handler_work_us))
                yield Select([RecvCase(c1), RecvCase(c2)])
            else:
                # Listing 7: the handler forgets to read the completion
                # channel on the leaky path, stranding the async task.
                done = yield MakeChan(0, label="fleet-done")

                def async_task():
                    task_map = yield Alloc(GoMap.sized(spec.map_entries))
                    yield Work(50)
                    yield Send(done, ())

                yield Go(async_task, name="fleet-task")
                yield Work(max(1, spec.handler_work_us))
                if not leaky:
                    yield Recv(done)
            yield Send(reply_ch, "ok")

        def server():
            while True:
                (reply_ch, leaky), ok = yield Recv(request_ch)
                if not ok:
                    return
                yield Go(handler, reply_ch, leaky, name="fleet-handler")

        def client(user_id):
            session = model.session(user_id)
            for think_ns, leaky in session.requests:
                reply = yield MakeChan(1)
                yield Send(request_ch, (reply, leaky))
                yield Recv(reply)
                state["completed"] += 1
                yield Sleep(think_ns)
            yield WgDone(wg)

        def main():
            yield WgAdd(wg, len(spec.user_ids))
            yield Go(server, name="fleet-server")
            for user_id in spec.user_ids:
                yield Go(client, user_id, name=f"user-{user_id}")
            yield WgWait(wg)
            yield Sleep(spec.drain_ms * MILLISECOND)

        rt.spawn_main(main)

    # -- stepping -------------------------------------------------------------

    def step(self) -> bool:
        """Advance one bounded slice of virtual time; True when done."""
        if self.done:
            return True
        status = self.rt.run(until_ns=self.rt.clock.now + self.spec.step_ns)
        if status != RunStatus.TIMEOUT:
            self._finish()
        return self.done

    def run_to_completion(self) -> ShardResult:
        """Drive the same stepping loop the sequential mode interleaves
        (identical slice cadence ⇒ identical execution)."""
        while not self.step():
            pass
        return self.result

    def _finish(self) -> None:
        rt = self.rt
        result = self.result
        result.service_end_ns = rt.clock.now
        rt.gc_until_quiescent()
        if rt.detection_daemon is not None:
            result.daemon_checks = rt.detection_daemon.stats.checks
            rt.stop_partial_deadlock_detection()
        result.requests_completed = self._state["completed"]
        # The report log, not CycleStats: daemon-surfaced leaks produce
        # reports without a GC cycle record.
        result.leaks_detected = rt.reports.total()
        result.leaks_reclaimed = rt.collector.stats.total_goroutines_reclaimed
        result.num_gc = rt.collector.stats.num_gc
        result.reports = [r.as_dict() for r in rt.reports]
        result.report_texts = [r.format() for r in rt.reports]
        if self.scraper is not None:
            self.rt.stop_metrics_scrape()
            # One final scrape at the (post-quiescence) end time, so
            # the series and alert states cover the whole shard run.
            self.hub.scrape_tick(rt.clock.now)
            result.tsdb = self.hub.tsdb.to_dict()
            result.alerts = self.hub.alerts.to_dict()
        result.fingerprints = self.hub.fingerprints.as_dict()
        result.metrics = self.hub.snapshot()["metrics"]
        result.memstats = rt.memstats().as_dict()
        result.invariant_violations = rt.check_invariants()
        rt.shutdown()
        self.done = True


def run_shard(spec: ShardSpec) -> ShardResult:
    """Build and run one shard to completion (the worker entry point)."""
    return ShardRunner(spec).run_to_completion()
