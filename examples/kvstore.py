#!/usr/bin/env python3
"""A realistic application: an etcd-style KV store with a watch-hub leak.

``repro.apps.kvstore`` is a full concurrent system built on the public
runtime API: an RWMutex-guarded store, a prefix watch hub, a ticker-driven
TTL sweeper, and context-deadlined request handlers.  Its injectable
defect — cancelled watchers whose "drain" goroutine parks forever — is
the etcd-shaped leak family GOLF was built for.

The demo runs the same workload four ways (clean/leaky x baseline/GOLF)
and prints the operational picture an SRE would see.

Run:  python examples/kvstore.py
"""

from repro.apps import KVConfig, run_kv_workload

if __name__ == "__main__":
    print(f"{'variant':22s} {'requests':>9s} {'watches':>8s} "
          f"{'lingering':>10s} {'GOLF reports':>13s}")
    print("-" * 68)
    for leaky in (False, True):
        for golf in (False, True):
            config = KVConfig(leak_watch_cancel=leaky, seed=3,
                              duration_ms=50)
            result = run_kv_workload(config, golf=golf)
            variant = (("leaky" if leaky else "clean")
                       + " / " + ("GOLF" if golf else "baseline"))
            print(f"{variant:22s} {result.requests:>9d} "
                  f"{result.stats['watches_created']:>8d} "
                  f"{result.lingering_goroutines:>10d} "
                  f"{result.deadlock_reports:>13d}")
            if golf and leaky:
                assert result.dedup_sites == ["kv-watch-drainer"]
                print(f"{'':22s} -> triaged to a single source: "
                      f"{result.dedup_sites[0]}")
