"""Combinators used by microbenchmark bodies.

All helpers are generator functions meant to be called with
``yield from`` inside a goroutine body.  Randomness comes from genuine
runtime non-determinism — the scheduler's select-case choice — never from
module-level RNG, so a benchmark's flakiness responds to the runtime seed
and core count the way real Go races do.
"""

from __future__ import annotations


from repro.runtime.clock import MICROSECOND
from repro.runtime.instructions import (
    Go,
    MakeChan,
    Now,
    Recv,
    RecvCase,
    Select,
    Send,
    Sleep,
    Work,
)


def after(ns: int):
    """``time.After(ns)``: a cap-1 channel that receives a tick at +ns.

    The timer goroutine sends into a buffered channel, so it never leaks
    even if nobody consumes the tick.
    """
    ch = yield MakeChan(1, label="timer")

    def timer():
        yield Sleep(ns)
        yield Send(ch, None)

    yield Go(timer, name="")
    return ch


def coin_flip():
    """One fair scheduler-driven coin flip (True/False).

    Implemented as a select over two ready channels: the runtime chooses
    a ready case uniformly at random.
    """
    heads = yield MakeChan(1)
    tails = yield MakeChan(1)
    yield Send(heads, True)
    yield Send(tails, False)
    _, value, _ = yield Select([RecvCase(heads), RecvCase(tails)])
    return value


def bernoulli(numerator: int, denominator: int = 1024):
    """True with probability ``numerator / denominator``.

    ``denominator`` must be a power of two; draws ``log2(denominator)``
    coin flips to form a uniform integer and compares it against the
    numerator.
    """
    if denominator <= 0 or denominator & (denominator - 1):
        raise ValueError("denominator must be a power of two")
    if not 0 <= numerator <= denominator:
        raise ValueError("numerator out of range")
    bits = denominator.bit_length() - 1
    draw = 0
    for _ in range(bits):
        flip = yield from coin_flip()
        draw = (draw << 1) | (1 if flip else 0)
    return draw < numerator


def wake_delay(sleep_ns: int = MICROSECOND):
    """Sleep and report how late the wake-up was dispatched.

    On a loaded single processor the goroutine is woken long after its
    timer fires because running code monopolizes the core; with spare
    processors the delay is tiny.  Core-count-sensitive benchmarks use
    this to express races that need true parallelism.
    """
    t0 = yield Now()
    yield Sleep(sleep_ns)
    t1 = yield Now()
    return (t1 - t0) - sleep_ns


def spawn_hogs(count: int, micros: int):
    """Spawn ``count`` goroutines that each monopolize a processor for
    ``micros`` microseconds of non-preemptible work."""

    def hog():
        yield Work(micros)

    for _ in range(count):
        yield Go(hog, name="")


def drain(ch, count: int):
    """Receive ``count`` messages from ``ch``."""
    for _ in range(count):
        yield Recv(ch)
