"""Parametrized tests over the deterministic leak-pattern library.

Every leaky pattern must leak exactly at its annotated sites; every
fixed variant must run clean (no report, no lingering goroutine).
"""

import pytest

from repro.baselines.goleak import find_leaks
from repro.microbench import patterns
from repro.microbench.harness import run_microbenchmark
from repro.microbench.registry import Microbenchmark

ALL_BUILDERS = patterns.DETERMINISTIC_BUILDERS
FIXABLE_BUILDERS = [
    b for b in ALL_BUILDERS
    if b("probe")[2] is not None
]


def _bench(builder, use_name="pattern"):
    body, labels, fixed = builder(use_name)
    return Microbenchmark(use_name, "test", body, labels, fixed=fixed)


@pytest.mark.parametrize(
    "builder", ALL_BUILDERS, ids=lambda b: b.__name__)
class TestLeakyVariants:
    def test_all_sites_detected(self, builder):
        bench = _bench(builder)
        result = run_microbenchmark(bench, procs=2, seed=13)
        assert result.panic is None, result.panic
        assert result.detected == set(bench.sites)

    def test_no_spurious_detection(self, builder):
        bench = _bench(builder)
        result = run_microbenchmark(bench, procs=2, seed=14)
        assert result.detected <= set(bench.sites)

    def test_detection_stable_across_cores(self, builder):
        bench = _bench(builder)
        for procs in (1, 4):
            result = run_microbenchmark(bench, procs=procs, seed=15)
            assert result.detected == set(bench.sites), (
                f"{builder.__name__} at procs={procs}"
            )


@pytest.mark.parametrize(
    "builder", FIXABLE_BUILDERS, ids=lambda b: b.__name__)
class TestFixedVariants:
    def test_fixed_variant_is_clean(self, builder):
        bench = _bench(builder)
        result = run_microbenchmark(bench, procs=2, seed=16, use_fixed=True)
        assert result.panic is None, result.panic
        assert result.detected == set()

    def test_fixed_variant_leaves_no_goroutines(self, builder):
        from repro import GolfConfig, Runtime
        from repro.runtime.clock import MILLISECOND
        from repro.runtime.instructions import Go, Sleep

        body, _, fixed = builder("fixed-check")
        rt = Runtime(procs=2, seed=17, config=GolfConfig.baseline())

        def main():
            yield Go(fixed)
            yield Sleep(5 * MILLISECOND)

        rt.spawn_main(main)
        rt.run(until_ns=200 * MILLISECOND)
        assert find_leaks(rt) == []


class TestPatternDetails:
    def test_double_send_first_message_arrives(self):
        bench = _bench(patterns.double_send)
        result = run_microbenchmark(bench, procs=1, seed=5)
        # Exactly one goroutine leaks (the second send), not two.
        assert result.report_count == 1

    def test_daisy_chain_leaks_whole_chain(self):
        bench = _bench(patterns.daisy_chain)
        result = run_microbenchmark(bench, procs=2, seed=5)
        assert result.report_count == 4  # default chain length

    def test_fanin_leaks_every_producer(self):
        bench = _bench(patterns.fanin_no_consumer)
        result = run_microbenchmark(bench, procs=2, seed=5)
        assert result.report_count == 3

    def test_pipeline_leaks_all_three_stages(self):
        bench = _bench(patterns.pipeline_no_cancellation)
        result = run_microbenchmark(bench, procs=2, seed=5)
        assert result.report_count == 3

    def test_rwmutex_pair_reports_both_reasons(self):
        from repro import GolfConfig, Runtime
        from repro.runtime.clock import MILLISECOND
        from repro.runtime.instructions import Go, RunGC, Sleep

        body, labels, _ = patterns.rwmutex_stuck_pair("rw")
        rt = Runtime(procs=2, seed=8, config=GolfConfig())

        def main():
            yield Go(body)
            yield Sleep(3 * MILLISECOND)
            yield RunGC()

        rt.spawn_main(main)
        rt.run(until_ns=100 * MILLISECOND)
        reasons = {r.wait_reason for r in rt.reports}
        assert "chan receive" in reasons
        assert "sync.RWMutex.Lock" in reasons

    def test_listing7_deferred_send_is_the_leak(self):
        from repro import GolfConfig, Runtime
        from repro.runtime.clock import MILLISECOND
        from repro.runtime.instructions import Go, RunGC, Sleep

        body, labels, _ = patterns.listing7_sendmail("l7")
        rt = Runtime(procs=2, seed=8, config=GolfConfig())

        def main():
            yield Go(body)
            yield Sleep(3 * MILLISECOND)
            yield RunGC()

        rt.spawn_main(main)
        rt.run(until_ns=100 * MILLISECOND)
        (report,) = list(rt.reports)
        assert report.wait_reason == "chan send"
