"""Hot-path classes must stay ``__dict__``-free.

The hot-path overhaul put ``__slots__`` on everything the per-yield and
per-mark loops allocate or touch: instruction objects (allocated per
yield), sudogs and wakeups (per channel operation), goroutine
descriptors and heap objects (per mark visit), virtual processors and
GC bookkeeping.  A per-instance ``__dict__`` on any of these costs an
extra allocation per hot-path object and slower attribute access — this
test walks ``repro.runtime`` and ``repro.gc`` so a future class (or a
slotless subclass of a slotted one) cannot silently regress that.
"""

from __future__ import annotations

import enum
import importlib
import inspect
import pkgutil

import pytest

import repro.gc
import repro.runtime
from repro.runtime.instructions import Instruction
from repro.runtime.objects import HeapObject

#: Classes that legitimately keep a ``__dict__``: per-runtime singletons
#: on cold construction paths, where dynamic attributes (test hooks,
#: tracers, chaos engines) matter more than instance size.
ALLOWED_DICT = {
    "repro.runtime.api.Runtime",
    "repro.runtime.scheduler.Scheduler",
    "repro.runtime.watchdog.Watchdog",
    "repro.gc.collector.Collector",
    "repro.gc.heap.Heap",
}

#: Hot classes flagged by name, beyond the subclass sweeps below.
EXTRA_HOT = {
    "repro.runtime.scheduler._Proc",
    "repro.runtime.scheduler.RunStatus",
    "repro.runtime.channel.Wakeup",
    "repro.runtime.goroutine.Sudog",
    "repro.runtime.sema.SemaTable",
    "repro.runtime.sema._TreapNode",
    "repro.gc.stats.CycleStats",
    "repro.gc.stats.GCStats",
    "repro.gc.stats.MemStats",
}


def _walk_classes():
    """Every class defined in the two hot packages."""
    for pkg in (repro.runtime, repro.gc):
        for info in pkgutil.iter_modules(pkg.__path__, pkg.__name__ + "."):
            mod = importlib.import_module(info.name)
            for cls in vars(mod).values():
                if inspect.isclass(cls) and cls.__module__ == info.name:
                    yield cls


def _qualname(cls) -> str:
    return f"{cls.__module__}.{cls.__name__}"


def _instances_have_dict(cls) -> bool:
    """True if instances of ``cls`` carry a ``__dict__``.

    A class is dict-free iff every class on its MRO (bar ``object``)
    declares ``__slots__`` — one slotless link reintroduces the dict.
    """
    return any(
        "__slots__" not in vars(c)
        for c in cls.__mro__[:-1]
    )


def _is_hot(cls) -> bool:
    if issubclass(cls, enum.Enum):
        return False  # enum members are class-level singletons
    if issubclass(cls, (Instruction, HeapObject)):
        return True
    return _qualname(cls) in EXTRA_HOT


ALL_CLASSES = sorted(_walk_classes(), key=_qualname)
HOT_CLASSES = [cls for cls in ALL_CLASSES if _is_hot(cls)]


def test_sweep_finds_the_hot_classes():
    """The sweep actually covers the classes the overhaul targeted."""
    names = {_qualname(cls) for cls in HOT_CLASSES}
    for expected in (
        "repro.runtime.instructions.Send",
        "repro.runtime.instructions.Lock",
        "repro.runtime.instructions.Gosched",
        "repro.runtime.goroutine.Goroutine",
        "repro.runtime.goroutine.Sudog",
        "repro.runtime.channel.Channel",
        "repro.runtime.channel.Wakeup",
        "repro.runtime.scheduler._Proc",
        "repro.gc.stats.CycleStats",
    ):
        assert expected in names
    assert len(HOT_CLASSES) > 50  # the instruction set alone


@pytest.mark.parametrize(
    "cls", HOT_CLASSES, ids=[_qualname(c) for c in HOT_CLASSES])
def test_hot_class_has_no_instance_dict(cls):
    offenders = [
        c.__name__ for c in cls.__mro__[:-1] if "__slots__" not in vars(c)
    ]
    assert not _instances_have_dict(cls), (
        f"{_qualname(cls)} instances carry a __dict__ "
        f"(slotless MRO links: {offenders}); hot-path classes must "
        f"declare __slots__ (see docs/PERFORMANCE.md)")


def test_allowed_dict_list_is_tight():
    """Entries in ALLOWED_DICT must both exist and still need the dict.

    If someone slots a singleton later, this forces the allowlist entry
    to be dropped so the exemption cannot hide a future regression.
    """
    by_name = {_qualname(cls): cls for cls in ALL_CLASSES}
    for name in sorted(ALLOWED_DICT):
        assert name in by_name, f"stale ALLOWED_DICT entry {name}"
        assert _instances_have_dict(by_name[name]), (
            f"{name} is now slotted; remove it from ALLOWED_DICT")


def test_no_unflagged_dict_carriers():
    """Any class outside the allowlist that carries a __dict__ is either
    cold (fine) or a new hot class someone forgot to slot — surface the
    full list so additions are a conscious decision."""
    carriers = {
        _qualname(cls)
        for cls in ALL_CLASSES
        if not issubclass(cls, enum.Enum) and _instances_have_dict(cls)
    }
    assert carriers <= ALLOWED_DICT | {
        _qualname(cls) for cls in ALL_CLASSES if not _is_hot(cls)
    }
    # And no hot class sneaks in via the allowlist.
    assert not {_qualname(c) for c in HOT_CLASSES} & ALLOWED_DICT
