"""Figure 1: blocked goroutines over time in a leaking service.

Paper: weekday redeployments hide the leak; the count spikes over
weekends and holidays.  We run 21 virtual days with a two-day holiday and
check the sawtooth: weekend/holiday peaks far above the post-redeploy
weekday levels, and a flat profile once GOLF reclaims the leaks.
"""

from benchmarks.conftest import emit, once
from repro.experiments import format_figure1, run_figure1
from repro.service.longrun import LongRunConfig


def test_figure1_leak_sawtooth(benchmark):
    config = LongRunConfig(days=21, requests_per_hour=120, leak_every=6,
                           procs=4, seed=3)
    result = once(benchmark, lambda: run_figure1(config, include_golf=True))
    emit("figure1", format_figure1(result))

    base = result.baseline
    assert base.weekend_peak() > 3 * base.weekday_evening_mean()
    assert base.peak() > 200
    assert len(base.redeploys) >= 10
    # GOLF flattens the curve by more than an order of magnitude.
    assert result.golf.peak() < base.peak() / 10
