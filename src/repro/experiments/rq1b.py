"""RQ1(b): GOLF vs goleak on the synthetic enterprise corpus.

The paper's headline numbers: goleak reported 29 513 individual partial
deadlocks across 3 111 package test suites, deduplicated to 357; GOLF
detected 17 872 of the individual reports (60%), deduplicating to 180
(50%).  This driver runs the scaled corpus and reports the same four
numbers plus the ratios.
"""

from __future__ import annotations

from typing import Optional

from repro.corpus.generator import CorpusConfig
from repro.corpus.runner import CorpusResult, run_corpus


class RQ1bResult:
    """Headline counts plus the underlying corpus result."""

    def __init__(self, corpus: CorpusResult, config: CorpusConfig):
        self.corpus = corpus
        self.config = config

    @property
    def goleak_total(self) -> int:
        return self.corpus.goleak_total

    @property
    def golf_total(self) -> int:
        return self.corpus.golf_total

    @property
    def goleak_dedup(self) -> int:
        return self.corpus.goleak_dedup

    @property
    def golf_dedup(self) -> int:
        return self.corpus.golf_dedup

    @property
    def individual_ratio(self) -> float:
        return self.golf_total / max(1, self.goleak_total)

    @property
    def dedup_ratio(self) -> float:
        return self.golf_dedup / max(1, self.goleak_dedup)


def run_rq1b(config: Optional[CorpusConfig] = None) -> RQ1bResult:
    config = config or CorpusConfig()
    return RQ1bResult(run_corpus(config), config)


def format_rq1b(result: RQ1bResult) -> str:
    return "\n".join([
        f"Corpus: {result.config.n_packages} packages, "
        f"{result.config.n_sites} library sites "
        f"(paper: 3111 packages)",
        f"goleak individual reports: {result.goleak_total} "
        f"(paper: 29513)",
        f"GOLF   individual reports: {result.golf_total} "
        f"({result.individual_ratio:.0%}; paper: 17872 = 60%)",
        f"goleak deduplicated:       {result.goleak_dedup} (paper: 357)",
        f"GOLF   deduplicated:       {result.golf_dedup} "
        f"({result.dedup_ratio:.0%}; paper: 180 = 50%)",
    ])
