"""Known false-negative patterns (paper, section 4.3, Listings 4-5).

GOLF is sound but incomplete: a deadlocked goroutine whose blocking
object stays reachable from live memory is never reported.  These
builders construct the two real-world shapes the paper highlights —
global channels and runaway live goroutines — plus the finalizer-keep
case of section 5.5.  They are exercised by the completeness tests and
stand in for the GOLEAK-only findings in the RQ1(b) corpus.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.runtime.clock import MICROSECOND
from repro.runtime.instructions import (
    Alloc,
    Go,
    MakeChan,
    Recv,
    Send,
    SetFinalizer,
    SetGlobal,
    Sleep,
)
from repro.runtime.objects import Box, Struct


def global_channel_leak(name: str, line: int = 59) -> Tuple[Callable, List[str]]:
    """Listing 4: a sender on a *global* channel deadlocks, but the
    channel is intrinsically reachable, so GOLF never reports it."""
    label = f"{name}:{line}"

    def body():
        ch = yield MakeChan(0, label="global-ch")
        yield SetGlobal(f"{name}.ch", ch)

        def sender():
            yield Send(ch, 1)

        yield Go(sender, name=label)

    return body, [label]


def runaway_heartbeat(name: str, line: int = 80) -> Tuple[Callable, List[str]]:
    """Listing 5: a heartbeat goroutine keeps the dispatcher (and its
    channel) reachable forever, hiding the deadlocked sender."""
    label = f"{name}:{line}"

    def body():
        ch = yield MakeChan(0, label="dispatcher.ch")
        dispatcher = yield Alloc(Struct(ch=ch, ticks=0))

        def heartbeat():
            while True:
                yield Sleep(100 * MICROSECOND)
                dispatcher["ticks"] = dispatcher["ticks"] + 1

        def sender():
            yield Send(dispatcher["ch"], ())

        yield Go(heartbeat)  # always reachably live; pins `dispatcher`
        yield Go(sender, name=label)

    return body, [label]


def finalizer_keeps_goroutine(name: str,
                              line: int = 86) -> Tuple[Callable, List[str]]:
    """Listing 6: the leaked goroutine's stack holds an object with a
    finalizer.  GOLF *reports* the deadlock but must not reclaim it —
    the goroutine is parked in the DEADLOCKED state instead, keeping Go
    semantics (the finalizer's effects stay unobservable)."""
    label = f"{name}:{line}"
    fired: List[bool] = []

    def body():
        ch = yield MakeChan(0, label="values")

        def averager():
            values = yield Alloc(Box([]))
            yield SetFinalizer(values, lambda obj: fired.append(True))
            yield Recv(ch)  # caller never sends: deadlocks

        yield Go(averager, name=label)

    body.finalizer_fired = fired  # test hook
    return body, [label]
