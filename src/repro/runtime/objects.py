"""Heap object model: the memory graph of the simulated runtime.

The paper (section 4) models program memory as a set of objects ``M`` with
a reference relation ``REF(a, b)``.  This module provides the concrete
object model: every garbage-collected entity of the simulated runtime —
channels, sync primitives, goroutines, and user data — derives from
:class:`HeapObject` and reports its outgoing references via
:meth:`HeapObject.referents`.

User programs build data out of the concrete value types here (:class:`Box`,
:class:`Struct`, :class:`Slice`, :class:`GoMap`, :class:`Blob`), which is
what allows the collector to trace the object graph and the GOLF detector
to decide whether the concurrency objects a goroutine is blocked on are
reachable.

Plain Python values (ints, strings, ...) may be stored anywhere a reference
may be stored; they occupy no simulated heap space and are invisible to the
collector.  Python container values (lists, tuples, dicts, sets) are
scanned *through* conservatively, so a plain list of channels held in a
goroutine local keeps those channels reachable, just as a Go slice on the
stack would.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

#: Simulated pointer size in bytes; used by the default size model.
WORD_SIZE = 8

#: Maximum depth when scanning through plain Python containers for heap
#: references.  Deeper nesting is almost certainly a bug in user code; the
#: limit keeps conservative scanning linear in practice.
_MAX_SCAN_DEPTH = 16


class HeapObject:
    """Base class for every simulated heap-allocated object.

    Instances are *not* live on the simulated heap until they are
    allocated via :meth:`repro.gc.heap.Heap.allocate` (the runtime facade
    does this automatically for objects created through its API).

    Attributes:
        addr: simulated address, assigned by the heap at allocation time
            (``0`` until allocated).  Addresses are unique per heap and
            never reused.
        size: simulated size in bytes, used for memory accounting
            (``HeapAlloc`` and friends in the paper's Table 2).
    """

    __slots__ = ("addr", "size", "_mark_epoch", "_finalizer", "_heap")

    #: Short human-readable tag used in reports and ``repr``.
    kind: str = "object"

    #: Extra marking work (in traversal units) charged when the collector
    #: scans this object, modeling the cost of walking large pointer-ful
    #: objects (Go scans map buckets; ``[]byte`` blobs are noscan).
    scan_work: int = 0

    def __init__(self, size: int = WORD_SIZE):
        self.addr: int = 0
        self.size: int = size
        self._mark_epoch: int = -1
        self._finalizer: Optional[Callable[["HeapObject"], None]] = None
        #: Back-reference to the owning heap, set at allocation time, so
        #: post-allocation growth flows into the memory accounting.
        self._heap: Optional[Any] = None

    def resize(self, new_size: int) -> None:
        """Change the simulated size, keeping heap accounting consistent.

        Growing a slice or inserting into a map changes how much memory
        the object stands for; in Go those are allocation events (a new
        backing array, new buckets).  Crediting the delta against the
        owning heap's counters keeps ``HeapAlloc`` equal to the sum of
        live object sizes — an invariant ``check_invariants`` enforces.
        """
        if new_size < 0:
            raise ValueError("object size must be non-negative")
        delta = new_size - self.size
        self.size = new_size
        heap = self._heap
        if heap is not None and delta:
            if delta > 0:
                heap.total_alloc_bytes += delta
            else:
                heap.total_freed_bytes += -delta

    # -- reference graph -------------------------------------------------

    def _barrier(self, value: Any) -> None:
        """Route a reference store through the heap's write barrier.

        Called by every mutating accessor before the store lands.  A
        no-op until the object is allocated and the incremental
        collector's MARKING phase is active (see
        :meth:`repro.gc.heap.Heap.write_barrier`).
        """
        heap = self._heap
        if heap is not None:
            heap.write_barrier(self, value)

    def referents(self) -> Iterator["HeapObject"]:
        """Yield the heap objects this object directly references.

        Subclasses override this; the default object has no outgoing
        references.  The collector treats the transitive closure of this
        relation as ``REF`` from the paper.
        """
        return iter(())

    # -- checkpoint/restart support ---------------------------------------

    def checkpoint_state(self) -> Any:
        """Snapshot this object's restorable payload.

        Checkpoint/restart recovery (:mod:`repro.core.checkpoint`) calls
        this at quiescent points and feeds the result back through
        :meth:`restore_state` on rollback.  The default object carries no
        payload; value types and channels override both methods.
        References inside the payload are recorded as-is: the snapshot
        restores the *shape* of the subsystem state, and everything it
        points at stays alive because the checkpointed objects are
        pinned and reachable.
        """
        return None

    def restore_state(self, state: Any) -> None:
        """Restore payload captured by :meth:`checkpoint_state`."""

    # -- finalizers -------------------------------------------------------

    def set_finalizer(self, fn: Callable[["HeapObject"], None]) -> None:
        """Attach a finalizer, as ``runtime.SetFinalizer`` does in Go.

        The finalizer runs (once) when the collector reclaims the object.
        GOLF refuses to reclaim deadlocked goroutines whose exclusively
        reachable subgraph contains finalizers, to preserve Go semantics
        (paper, section 5.5).
        """
        self._finalizer = fn

    @property
    def finalizer(self) -> Optional[Callable[["HeapObject"], None]]:
        return self._finalizer

    def __repr__(self) -> str:
        return f"<{self.kind} @0x{self.addr:x} size={self.size}>"


class Box(HeapObject):
    """A single mutable reference cell (a pointer-sized heap allocation)."""

    __slots__ = ("_value",)
    kind = "box"

    def __init__(self, value: Any = None):
        super().__init__(size=2 * WORD_SIZE)
        self._value = value

    @property
    def value(self) -> Any:
        return self._value

    @value.setter
    def value(self, new_value: Any) -> None:
        self._barrier(new_value)
        self._value = new_value

    def referents(self) -> Iterator[HeapObject]:
        return iter_heap_refs(self._value)

    def checkpoint_state(self) -> Any:
        return self._value

    def restore_state(self, state: Any) -> None:
        self._barrier(state)
        self._value = state


class Struct(HeapObject):
    """A heap object with named fields, analogous to a Go struct pointer.

    Fields are set at construction or via :meth:`set`; reading uses
    :meth:`get` or index syntax.  Fields may hold heap objects, plain
    Python values, or containers of either.
    """

    __slots__ = ("fields",)
    kind = "struct"

    def __init__(self, **fields: Any):
        super().__init__(size=2 * WORD_SIZE + WORD_SIZE * max(1, len(fields)))
        self.fields: Dict[str, Any] = dict(fields)

    def get(self, name: str) -> Any:
        return self.fields[name]

    def set(self, name: str, value: Any) -> None:
        self._barrier(value)
        self.fields[name] = value

    def __getitem__(self, name: str) -> Any:
        return self.fields[name]

    def __setitem__(self, name: str, value: Any) -> None:
        self._barrier(value)
        self.fields[name] = value

    def referents(self) -> Iterator[HeapObject]:
        for value in self.fields.values():
            yield from iter_heap_refs(value)

    def checkpoint_state(self) -> Any:
        return dict(self.fields)

    def restore_state(self, state: Any) -> None:
        for value in state.values():
            self._barrier(value)
        self.fields = dict(state)


class Slice(HeapObject):
    """A growable sequence of references, analogous to a Go slice."""

    __slots__ = ("items",)
    kind = "slice"

    def __init__(self, items: Optional[Iterable[Any]] = None):
        self.items: List[Any] = list(items) if items is not None else []
        super().__init__(size=3 * WORD_SIZE + WORD_SIZE * len(self.items))

    def append(self, value: Any) -> None:
        self._barrier(value)
        self.items.append(value)
        self.resize(self.size + WORD_SIZE)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> Any:
        return self.items[index]

    def __setitem__(self, index: int, value: Any) -> None:
        self._barrier(value)
        self.items[index] = value

    def __iter__(self) -> Iterator[Any]:
        return iter(self.items)

    def referents(self) -> Iterator[HeapObject]:
        for value in self.items:
            yield from iter_heap_refs(value)

    def checkpoint_state(self) -> Any:
        return list(self.items)

    def restore_state(self, state: Any) -> None:
        for value in state:
            self._barrier(value)
        self.items = list(state)
        self.resize(3 * WORD_SIZE + WORD_SIZE * len(self.items))


class GoMap(HeapObject):
    """A key-value mapping, analogous to a Go map.

    Sized per entry so that large maps (the paper's controlled service
    allocates two 100K-entry maps per request) exert realistic pressure on
    the simulated heap.
    """

    __slots__ = ("entries", "scan_work")
    kind = "map"

    #: Simulated bytes per map entry (key word + value word + bucket
    #: overhead), chosen so a 100K-entry map is a few MB, as in Go.
    BYTES_PER_ENTRY = 3 * WORD_SIZE

    def __init__(self, entries: Optional[Dict[Any, Any]] = None):
        self.entries: Dict[Any, Any] = dict(entries) if entries else {}
        super().__init__(
            size=6 * WORD_SIZE + self.BYTES_PER_ENTRY * len(self.entries)
        )
        self.scan_work = len(self.entries)

    @classmethod
    def with_entries(cls, count: int) -> "GoMap":
        """Build a map pre-populated with ``count`` opaque entries.

        The entries are plain integers: they cost simulated memory but do
        not add edges to the reference graph, matching a ``map[int]int``.
        """
        return cls({i: i for i in range(count)})

    @classmethod
    def sized(cls, count: int) -> "GoMap":
        """A map *accounted* as holding ``count`` entries without
        materializing them.

        Workload simulators use this for the paper's 100K-entry
        per-request hash maps: the simulated size and marking cost scale
        with ``count`` while the Python-side cost stays O(1).
        """
        m = cls()
        m.size = 6 * WORD_SIZE + cls.BYTES_PER_ENTRY * count
        m.scan_work = count
        return m

    def get(self, key: Any, default: Any = None) -> Any:
        return self.entries.get(key, default)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: Any) -> bool:
        return key in self.entries

    def __getitem__(self, key: Any) -> Any:
        return self.entries[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        self._barrier(key)
        self._barrier(value)
        if key not in self.entries:
            self.resize(self.size + self.BYTES_PER_ENTRY)
        self.entries[key] = value

    def __delitem__(self, key: Any) -> None:
        del self.entries[key]
        self.resize(self.size - self.BYTES_PER_ENTRY)

    def referents(self) -> Iterator[HeapObject]:
        for key, value in self.entries.items():
            yield from iter_heap_refs(key)
            yield from iter_heap_refs(value)

    def checkpoint_state(self) -> Any:
        return dict(self.entries)

    def restore_state(self, state: Any) -> None:
        for key, value in state.items():
            self._barrier(key)
            self._barrier(value)
        self.entries = dict(state)
        self.resize(6 * WORD_SIZE + self.BYTES_PER_ENTRY * len(self.entries))
        self.scan_work = len(self.entries)


class Blob(HeapObject):
    """An opaque byte buffer with no outgoing references.

    Used by workloads to create memory pressure (request payloads, caches)
    without growing the traced edge count.
    """

    __slots__ = ()
    kind = "blob"

    def __init__(self, size: int):
        if size < 0:
            raise ValueError("blob size must be non-negative")
        super().__init__(size=size)


def iter_heap_refs(value: Any, _depth: int = 0) -> Iterator[HeapObject]:
    """Yield heap objects found in ``value``, scanning through containers.

    This is the conservative scanner used for goroutine stack frames and
    for the payload slots of runtime objects.  It recognizes
    :class:`HeapObject` instances directly and recurses (bounded) through
    plain Python lists, tuples, dicts, sets and frozensets.
    """
    if isinstance(value, HeapObject):
        yield value
        return
    if _depth >= _MAX_SCAN_DEPTH:
        return
    if isinstance(value, (list, tuple, set, frozenset)):
        for item in value:
            yield from iter_heap_refs(item, _depth + 1)
    elif isinstance(value, dict):
        for key, item in value.items():
            yield from iter_heap_refs(key, _depth + 1)
            yield from iter_heap_refs(item, _depth + 1)
