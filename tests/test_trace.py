"""The execution tracer: vocabulary, Chrome export, and determinism.

The acceptance bar for the tracer (docs/TRACING.md): every emitted
event uses the fixed vocabulary, the Chrome trace-event artifact passes
schema validation (monotonic timestamps, matched B/E pairs, paired flow
ids), and two runs at the same (benchmark, procs, seed) produce
byte-identical artifacts.
"""

from __future__ import annotations

import json

import pytest

from repro import GolfConfig, Runtime
from repro.runtime.clock import MICROSECOND
from repro.runtime.instructions import (
    Go,
    Lock,
    MakeChan,
    NewMutex,
    Recv,
    RunGC,
    Send,
    Sleep,
    Unlock,
)
from repro.trace import (
    VOCABULARY,
    export_chrome_trace,
    validate_chrome_trace,
)
from repro.trace.chrome import GC_TID, GOROUTINE_TID_BASE, RUNTIME_PID


def _traced_transfer_run(seed=3):
    """One completed send/recv pair plus one leaked sender."""
    rt = Runtime(procs=2, seed=seed, config=GolfConfig())
    tracer = rt.enable_tracing()

    def main():
        ok = yield MakeChan(0, label="ok")
        ack = yield MakeChan(0, label="ack")
        dead = yield MakeChan(0, label="dead")
        mu = yield NewMutex()

        def replier(c):
            yield Send(c, "pong")

        def listener(c):
            yield Recv(c)

        def leaker(c):
            yield Send(c, "never")

        yield Go(replier, ok, name="replier")
        yield Go(listener, ack, name="listener")
        yield Go(leaker, d := dead, name="leaker")
        del dead, d
        yield Lock(mu)
        yield Unlock(mu)
        yield Recv(ok)
        yield Sleep(10 * MICROSECOND)  # listener is parked by now
        yield Send(ack, "ping")  # completes against a waiting receiver
        yield Sleep(20 * MICROSECOND)
        yield RunGC()
        yield RunGC()

    rt.spawn_main(main)
    rt.run(until_ns=100_000_000)
    return rt, tracer


class TestVocabulary:
    def test_every_emitted_kind_is_in_vocabulary(self):
        rt, tracer = _traced_transfer_run()
        kinds = {e.kind for e in tracer.events}
        assert kinds <= VOCABULARY
        assert kinds  # the run actually traced something

    def test_full_lifecycle_coverage(self):
        rt, tracer = _traced_transfer_run()
        kinds = {e.kind for e in tracer.events}
        assert {"go-create", "go-park", "go-wake", "go-end", "instr",
                "chan-make", "chan-send", "chan-recv",
                "sema-acquire", "sema-release",
                "gc-cycle", "partial-deadlock",
                "go-reclaim"} <= kinds

    def test_incremental_mode_traces_gc_phases(self):
        rt = Runtime(procs=2, seed=3,
                     config=GolfConfig(gc_mode="incremental"))
        tracer = rt.enable_tracing()

        def main():
            yield Sleep(20 * MICROSECOND)
            yield RunGC()

        rt.spawn_main(main)
        rt.run(until_ns=100_000_000)
        phases = [e.detail for e in tracer.of_kind("gc-phase")]
        assert "marking" in " ".join(phases)

    def test_chan_ops_carry_partner_goids(self):
        rt, tracer = _traced_transfer_run()
        sends = [e for e in tracer.of_kind("chan-send")
                 if e.args and e.args.get("partner")]
        recvs = [e for e in tracer.of_kind("chan-recv")
                 if e.args and e.args.get("partner")]
        # The completed rendezvous is visible from both sides.
        assert sends and recvs
        by_label = {e.args["label"].split("#")[0]: e.goid
                    for e in tracer.of_kind("go-create")}
        # main's send on "ack" completed against the parked listener;
        # main's recv on "ok" completed against the parked replier.
        assert sends[0].args["partner"] == by_label["listener"]
        assert recvs[0].args["partner"] == by_label["replier"]
        for e in sends + recvs:
            assert e.args["partner"] != e.goid > 0

    def test_goroutine_labels_not_bare_goids(self):
        rt, tracer = _traced_transfer_run()
        creates = tracer.of_kind("go-create")
        labels = [e.args["label"] for e in creates if e.args]
        assert any(lbl.startswith("replier#") for lbl in labels)
        assert all("#" in lbl for lbl in labels)


class TestChromeExport:
    def test_export_passes_validation(self):
        rt, tracer = _traced_transfer_run()
        doc = export_chrome_trace(tracer, procs=2, benchmark="unit",
                                  seed=3)
        counts = validate_chrome_trace(doc)
        assert counts["slices"] > 0
        assert counts["instants"] > 0
        assert counts["metadata"] > 0

    def test_flow_events_link_send_to_recv(self):
        rt, tracer = _traced_transfer_run()
        doc = export_chrome_trace(tracer, procs=2)
        counts = validate_chrome_trace(doc)
        assert counts["flows"] >= 1
        flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "f")]
        starts = {e["id"] for e in flows if e["ph"] == "s"}
        ends = {e["id"] for e in flows if e["ph"] == "f"}
        assert starts == ends

    def test_lanes_per_proc_and_goroutine(self):
        rt, tracer = _traced_transfer_run()
        doc = export_chrome_trace(tracer, procs=2)
        tids = {e["tid"] for e in doc["traceEvents"]}
        assert {0, 1} <= tids  # one lane per virtual core
        assert GC_TID in tids
        assert any(t >= GOROUTINE_TID_BASE for t in tids)
        assert {e["pid"] for e in doc["traceEvents"]} == {RUNTIME_PID}

    def test_timestamps_non_decreasing(self):
        rt, tracer = _traced_transfer_run()
        doc = export_chrome_trace(tracer, procs=2)
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
        assert ts == sorted(ts)

    def test_validator_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "i", "pid": 1, "tid": 0}]})

    def test_validator_rejects_unmatched_begin(self):
        doc = {"traceEvents": [
            {"ph": "B", "pid": 1, "tid": 0, "ts": 0.0, "name": "x"},
        ]}
        with pytest.raises(ValueError, match="[Uu]nmatched"):
            validate_chrome_trace(doc)

    def test_validator_rejects_time_travel(self):
        doc = {"traceEvents": [
            {"ph": "i", "pid": 1, "tid": 0, "ts": 5.0, "name": "a",
             "s": "t"},
            {"ph": "i", "pid": 1, "tid": 0, "ts": 1.0, "name": "b",
             "s": "t"},
        ]}
        with pytest.raises(ValueError, match="monoton|decreas"):
            validate_chrome_trace(doc)

    def test_validator_rejects_unpaired_flow(self):
        doc = {"traceEvents": [
            {"ph": "s", "pid": 1, "tid": 0, "ts": 0.0, "name": "f",
             "id": 1},
        ]}
        with pytest.raises(ValueError, match="flow"):
            validate_chrome_trace(doc)


class TestDeterminism:
    def test_two_runs_byte_identical_export(self):
        docs = []
        for _ in range(2):
            rt, tracer = _traced_transfer_run(seed=11)
            docs.append(json.dumps(
                export_chrome_trace(tracer, procs=2, benchmark="unit",
                                    seed=11),
                sort_keys=True, separators=(",", ":")))
        assert docs[0] == docs[1]

    def test_driver_artifacts_byte_identical(self, tmp_path):
        from repro.trace.driver import (
            run_traced_benchmark,
            write_trace_artifacts,
        )

        blobs = []
        for i in range(2):
            result = run_traced_benchmark("cgo/sendmail", procs=2, seed=0)
            paths = write_trace_artifacts(result, str(tmp_path / str(i)))
            blobs.append({k: open(p, "rb").read()
                          for k, p in paths.items()})
        assert blobs[0] == blobs[1]
        assert set(blobs[0]) == {"chrome", "provenance", "provenance-txt"}


class TestChaosIntegration:
    def test_injected_faults_appear_as_trace_instants(self):
        from repro.chaos import FaultInjector, FaultPlan, get_scenario

        rt = Runtime(procs=2, seed=5, config=GolfConfig())
        tracer = rt.enable_tracing()
        plan = FaultPlan(5, get_scenario("clock-jitter"))
        FaultInjector(rt, plan).install()

        def main():
            for _ in range(200):
                yield Sleep(MICROSECOND)

        rt.spawn_main(main)
        rt.run(until_ns=500_000_000)
        faults = tracer.of_kind("fault-inject")
        assert len(faults) == plan.injected_count()
        assert faults  # the scenario actually fired
        doc = export_chrome_trace(tracer, procs=2)
        instants = [e for e in doc["traceEvents"]
                    if e["ph"] == "i" and e.get("cat") == "chaos"]
        assert len(instants) == len(faults)
        assert all(e["name"] == "fault-inject" for e in instants)


class TestDropAccounting:
    def test_trace_drops_surface_in_prometheus(self):
        from repro.telemetry import TelemetryHub

        hub = TelemetryHub()
        rt = Runtime(procs=1, seed=1)
        hub.attach(rt)
        tracer = rt.enable_tracing(capacity=8)

        def main():
            for _ in range(100):
                yield Sleep(MICROSECOND)

        rt.spawn_main(main)
        rt.run()
        assert tracer.dropped > 0
        text = hub.render_prometheus()
        assert "repro_trace_dropped_total" in text
        assert "repro_recorder_dropped_total" in text
        line = [ln for ln in text.splitlines()
                if ln.startswith("repro_trace_dropped_total")][-1]
        assert float(line.split()[-1]) == float(tracer.dropped)
