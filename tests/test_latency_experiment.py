"""Tests for the detection-latency experiment."""

import pytest

from repro.experiments.latency import (
    format_latency_sweep,
    run_detection_latency,
    run_latency_sweep,
)


class TestSingleSetting:
    @pytest.fixture(scope="class")
    def result(self):
        return run_detection_latency(gc_interval_ms=2.0, detect_every=1,
                                     leaks=30, seed=1)

    def test_every_leak_detected(self, result):
        assert result.detected == result.leaks == 30

    def test_latency_bounded_by_interval(self, result):
        # With detection every cycle, worst-case lag is about one GC
        # interval (plus scheduling slack).
        assert result.p99_ms() <= 2.0 * 1.5
        assert 0 < result.mean_ms() <= 2.0

    def test_latencies_positive(self, result):
        assert all(lat > 0 for lat in result.latencies_ns)


class TestSweep:
    def test_cadence_multiplies_latency(self):
        fast = run_detection_latency(gc_interval_ms=1.0, detect_every=1,
                                     leaks=30, seed=2)
        slow = run_detection_latency(gc_interval_ms=1.0, detect_every=4,
                                     leaks=30, seed=2)
        assert slow.detected == fast.detected == 30
        assert slow.mean_ms() > 1.5 * fast.mean_ms()

    def test_sweep_and_formatter(self):
        results = run_latency_sweep(gc_intervals_ms=(1.0,),
                                    cadences=(1, 2), leaks=20)
        text = format_latency_sweep(results)
        assert "gc interval" in text
        assert "20/20" in text
