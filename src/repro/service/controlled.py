"""The controlled service experiment (paper, Table 2).

An RPC server where **every request spawns a goroutine**: the parent and
child communicate over two channels, each side allocates a 100K-entry
hash map, the parent waits in a ``select`` and returns on the first
message, and the child — on a controlled fraction of requests — performs
a "double send", deadlocking on the second channel while pinning its map.

A closed-loop client with ``connections`` concurrent connections drives
the server for ``duration`` after a warmup.  The result carries the same
metric rows as the paper's Table 2: client throughput and latency
percentiles, and server ``MemStats`` (HeapAlloc, HeapInuse, HeapObjects,
StackInuse, GCCPUFraction, PauseTotalNs, NumGC).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.core.config import GolfConfig
from repro.runtime.api import Runtime
from repro.runtime.clock import MILLISECOND, SECOND
from repro.runtime.instructions import (
    Alloc,
    Go,
    MakeChan,
    Now,
    Recv,
    RecvCase,
    Select,
    Send,
    Sleep,
    Work,
)
from repro.runtime.objects import GoMap
from repro.service.stats import latency_summary


class ControlledConfig:
    """Workload knobs (defaults follow the paper's setup)."""

    def __init__(
        self,
        procs: int = 8,
        connections: int = 32,
        duration_s: int = 30,
        warmup_s: int = 5,
        leak_rate: float = 0.0,
        map_entries: int = 100_000,
        downstream_ms: int = 420,
        downstream_jitter_ms: int = 80,
        handler_work_us: int = 200,
        periodic_gc_ms: int = 100,
        seed: int = 1,
    ):
        if not 0.0 <= leak_rate <= 1.0:
            raise ValueError("leak_rate must be in [0, 1]")
        self.procs = procs
        self.connections = connections
        self.duration_s = duration_s
        self.warmup_s = warmup_s
        self.leak_rate = leak_rate
        self.map_entries = map_entries
        self.downstream_ms = downstream_ms
        self.downstream_jitter_ms = downstream_jitter_ms
        self.handler_work_us = handler_work_us
        self.periodic_gc_ms = periodic_gc_ms
        self.seed = seed


class ControlledResult:
    """Table 2 metric rows for one (config, collector) combination."""

    def __init__(self, golf: bool, leak_rate: float):
        self.golf = golf
        self.leak_rate = leak_rate
        self.completed = 0
        self.duration_s = 0.0
        self.throughput_rps = 0.0
        self.latency: Dict[str, float] = {}
        self.memstats: Dict[str, float] = {}
        self.deadlocks_detected = 0
        self.goroutines_reclaimed = 0
        self.gc_mode = "atomic"
        #: Longest full-cycle pause / longest single STW window; for the
        #: atomic collector the two coincide, the incremental collector
        #: exists to drive the second strictly below the first.
        self.max_pause_ns = 0
        self.max_pause_window_ns = 0
        #: Per-virtual-second samples of live heap bytes / blocked
        #: goroutines, for leak-growth analyses.
        self.heap_series: List[int] = []
        self.blocked_series: List[int] = []

    def row(self) -> Dict[str, float]:
        out = {
            "throughput_rps": self.throughput_rps,
            **{k: v for k, v in self.latency.items() if k != "count"},
            "stack_inuse_mb": self.memstats["stack_inuse"] / 1e6,
            "heap_alloc_mb": self.memstats["heap_alloc"] / 1e6,
            "heap_inuse_mb": self.memstats["heap_inuse"] / 1e6,
            "heap_objects": self.memstats["heap_objects"],
            "gc_cpu_fraction": self.memstats["gc_cpu_fraction"],
            "pause_total_ns": self.memstats["pause_total_ns"],
            "num_gc": self.memstats["num_gc"],
        }
        out["pause_per_cycle_ns"] = (
            out["pause_total_ns"] / out["num_gc"] if out["num_gc"] else 0.0
        )
        return out

    def __repr__(self) -> str:
        mode = "golf" if self.golf else "base"
        return (
            f"<controlled {mode} leak={self.leak_rate:.0%} "
            f"rps={self.throughput_rps:.1f} "
            f"heap={self.memstats.get('heap_alloc', 0)/1e6:.1f}MB>"
        )


def run_controlled(config: Optional[ControlledConfig] = None,
                   golf: bool = True,
                   telemetry=None,
                   gc_config: Optional[GolfConfig] = None) -> ControlledResult:
    """Run the controlled client/server workload once.

    ``gc_config`` overrides the collector configuration entirely (used
    by the pause benchmark to pit ``atomic`` against ``incremental`` on
    an otherwise identical workload); by default ``golf`` picks between
    GOLF and the baseline collector.
    """
    config = config or ControlledConfig()
    if gc_config is None:
        gc_config = GolfConfig() if golf else GolfConfig.baseline()
    rt = Runtime(procs=config.procs, seed=config.seed, config=gc_config)
    if telemetry is not None:
        telemetry.attach(rt)
    svc = telemetry.service("controlled") if telemetry is not None else None
    rt.enable_periodic_gc(config.periodic_gc_ms * MILLISECOND)

    host_rng = random.Random(config.seed ^ 0xC11E27)
    request_ch = rt.make_chan(capacity=2 * config.connections,
                              label="rpc-requests")
    # The accept queue is package-level state (a live listener), so the
    # idle server loop is never mistaken for a leak after shutdown.
    rt.set_global("rpc.request_ch", request_ch)
    warmup_end = config.warmup_s * SECOND
    deadline = (config.warmup_s + config.duration_s) * SECOND
    latencies: List[int] = []
    state = {"completed": 0, "requests": 0}

    def downstream_latency_ns() -> int:
        jitter = host_rng.randint(-config.downstream_jitter_ms,
                                  config.downstream_jitter_ms)
        return (config.downstream_ms + jitter) * MILLISECOND

    def should_leak() -> bool:
        return host_rng.random() < config.leak_rate

    def handler(reply_ch):
        # Parent side of the request: its own map plus the child fan-out.
        # The maps stay live on the goroutine stacks until return.
        parent_map = yield Alloc(GoMap.sized(config.map_entries))
        c1 = yield MakeChan(0, label="task-c1")
        c2 = yield MakeChan(0, label="task-c2")
        leaky = should_leak()
        delay = downstream_latency_ns()

        def child():
            child_map = yield Alloc(GoMap.sized(config.map_entries))
            yield Sleep(delay)  # the downstream RPC
            if leaky:
                # The "double send": the parent returns after the first
                # message, so the second send blocks forever, pinning the
                # child's map.
                yield Send(c1, "partial")
                yield Send(c2, "final")
            else:
                yield Send(c1, "done")

        yield Go(child, name="request-child")
        yield Work(max(1, config.handler_work_us))  # DAG of sub-tasks
        yield Select([RecvCase(c1), RecvCase(c2)])
        yield Send(reply_ch, "ok")

    def server():
        while True:
            (reply_ch, _t0), ok = yield Recv(request_ch)
            if not ok:
                return
            yield Go(handler, reply_ch, name="request-handler")

    def client_conn():
        while True:
            t0 = yield Now()
            if t0 >= deadline:
                return
            reply = yield MakeChan(1)
            yield Send(request_ch, (reply, t0))
            yield Recv(reply)
            t1 = yield Now()
            state["requests"] += 1
            if t0 >= warmup_end:
                latencies.append(t1 - t0)
                state["completed"] += 1
                if svc is not None:
                    svc.observe_request(t1 - t0)

    def main():
        yield Go(server, name="rpc-server")
        for _ in range(config.connections):
            yield Go(client_conn, name="client-conn")
        yield Sleep(deadline)
        # Drain: let in-flight requests finish so the final MemStats
        # snapshot reflects leaked memory, not transient request state.
        yield Sleep(2 * SECOND)

    rt.spawn_main(main)
    # Run in one-second slices, sampling the heap/blocked series the
    # paper's Figure 1 narrative is about.
    heap_series: List[int] = []
    blocked_series: List[int] = []
    end = deadline + 3 * SECOND
    while rt.clock.now < end:
        status = rt.run(until_ns=min(end, rt.clock.now + SECOND),
                        max_instructions=50_000_000)
        heap_series.append(rt.heap.live_bytes)
        blocked_series.append(rt.blocked_goroutine_count())
        if status != "timeout":
            break
    # Final cycles so the last detections/reclaims land before snapshot.
    rt.gc_until_quiescent()

    result = ControlledResult(golf, config.leak_rate)
    result.heap_series = heap_series
    result.blocked_series = blocked_series
    result.completed = state["completed"]
    result.duration_s = config.duration_s
    result.throughput_rps = state["completed"] / config.duration_s
    result.latency = latency_summary(latencies)
    result.memstats = rt.memstats().as_dict()
    result.deadlocks_detected = rt.collector.stats.total_deadlocks_detected
    result.goroutines_reclaimed = rt.collector.stats.total_goroutines_reclaimed
    result.gc_mode = gc_config.gc_mode
    result.max_pause_ns = rt.collector.stats.max_pause_ns
    result.max_pause_window_ns = rt.collector.stats.max_pause_window_ns
    return result
