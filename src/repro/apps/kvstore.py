"""An etcd-flavored in-memory KV store on the simulated runtime.

A realistic concurrent system assembled from the substrate's parts:

- the store proper: a :class:`~repro.runtime.objects.GoMap` guarded by a
  ``sync.RWMutex`` (readers take RLock, writers take Lock);
- a **watch hub**: watchers register channels keyed by prefix; every
  write fans events out to matching watchers (non-blocking sends — slow
  watchers drop events, as etcd's broadcast does);
- a **TTL sweeper**: a ticker-driven goroutine expiring stale keys;
- request handlers with ``context`` deadlines.

The store supports an injectable defect — ``leak_watch_cancel`` — that
reproduces a real etcd bug family: cancelled watchers whose drain
goroutine is forgotten.  With GOLF the leaked drainers are detected and
reclaimed; with the baseline collector they pile up.  ``run_kv_workload``
drives a mixed read/write/watch workload and reports both functional
counters and leak telemetry.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from repro.core.config import GolfConfig
from repro.runtime.api import Runtime
from repro.runtime.clock import MICROSECOND, MILLISECOND, SECOND
from repro.runtime.context import with_timeout
from repro.runtime.instructions import (
    Alloc,
    DEFAULT_CASE,
    Go,
    Lock,
    MakeChan,
    Now,
    Recv,
    RecvCase,
    RLock,
    RUnlock,
    Select,
    SendCase,
    Sleep,
    Unlock,
    NewRWMutex,
)
from repro.runtime.objects import GoMap, Struct
from repro.runtime.timers import new_ticker


class KVConfig:
    """Workload and defect knobs."""

    def __init__(
        self,
        procs: int = 4,
        duration_ms: int = 50,
        clients: int = 6,
        write_fraction: float = 0.4,
        watch_fraction: float = 0.2,
        ttl_ms: int = 10,
        sweep_interval_ms: int = 2,
        request_timeout_ms: int = 5,
        leak_watch_cancel: bool = False,
        periodic_gc_ms: int = 5,
        seed: int = 0,
    ):
        self.procs = procs
        self.duration_ms = duration_ms
        self.clients = clients
        self.write_fraction = write_fraction
        self.watch_fraction = watch_fraction
        self.ttl_ms = ttl_ms
        self.sweep_interval_ms = sweep_interval_ms
        self.request_timeout_ms = request_timeout_ms
        #: The injectable defect: cancelled watches leave their drain
        #: goroutine parked on the event channel forever.
        self.leak_watch_cancel = leak_watch_cancel
        self.periodic_gc_ms = periodic_gc_ms
        self.seed = seed


class KVStore:
    """The store object graph; all methods are generator coroutines.

    Construct inside a goroutine via :meth:`create` (it allocates the
    heap objects and spawns the sweeper).
    """

    def __init__(self, data, mutex, watchers, config: KVConfig):
        self.data = data            # GoMap: key -> Struct(value, expires)
        self.mutex = mutex          # RWMutex
        self.watchers = watchers    # GoMap: watcher id -> Struct(prefix, ch)
        self.config = config
        self.next_watcher_id = 0
        self.stats = {
            "gets": 0, "puts": 0, "expired": 0,
            "events_delivered": 0, "events_dropped": 0,
            "watches_created": 0, "watches_cancelled": 0,
        }
        self._stopped = False

    # -- construction ------------------------------------------------------

    @classmethod
    def create(cls, config: KVConfig):
        """Allocate the store and start its sweeper (yield from)."""
        data = yield Alloc(GoMap())
        mutex = yield NewRWMutex(label="kv.mu")
        watchers = yield Alloc(GoMap())
        store = cls(data, mutex, watchers, config)

        def sweeper():
            ticker = yield from new_ticker(
                config.sweep_interval_ms * MILLISECOND)
            while not store._stopped:
                _, ok = yield Recv(ticker.ch)
                if not ok:
                    return
                yield from store.sweep_expired()
            ticker.stop()

        yield Go(sweeper, name="kv-ttl-sweeper")
        return store

    def stop(self) -> None:
        """Stop background maintenance (the sweeper exits on next tick)."""
        self._stopped = True

    # -- core operations ----------------------------------------------------

    def put(self, key: str, value: Any, now_ns: int):
        """Write a key (yield from); fans out events to watchers."""
        yield Lock(self.mutex)
        entry = yield Alloc(Struct(
            value=value,
            expires=now_ns + self.config.ttl_ms * MILLISECOND,
        ))
        self.data[key] = entry
        self.stats["puts"] += 1
        yield Unlock(self.mutex)
        yield from self._broadcast("PUT", key, value)

    def get(self, key: str, now_ns: int):
        """Read a key (yield from); returns the value or None."""
        yield RLock(self.mutex)
        entry = self.data.get(key)
        self.stats["gets"] += 1
        value = None
        if entry is not None and entry["expires"] > now_ns:
            value = entry["value"]
        yield RUnlock(self.mutex)
        return value

    def sweep_expired(self):
        """Drop entries past their TTL (yield from)."""
        now = yield Now()
        yield Lock(self.mutex)
        stale = [
            key for key, entry in self.data.entries.items()
            if entry["expires"] <= now
        ]
        for key in stale:
            del self.data[key]
            self.stats["expired"] += 1
        yield Unlock(self.mutex)
        for key in stale:
            yield from self._broadcast("EXPIRE", key, None)

    # -- watches ---------------------------------------------------------------

    def watch(self, prefix: str):
        """Register a watcher (yield from); returns (watch_id, channel)."""
        ch = yield MakeChan(4, label=f"watch:{prefix}")
        self.next_watcher_id += 1
        watch_id = self.next_watcher_id
        registration = yield Alloc(Struct(prefix=prefix, ch=ch))
        self.watchers[watch_id] = registration
        self.stats["watches_created"] += 1
        return watch_id, ch

    def cancel_watch(self, watch_id: int):
        """Deregister a watcher (yield from).

        The **defective** variant (``leak_watch_cancel=True``) spawns a
        "drain" goroutine meant to flush in-flight events, but it keeps
        receiving forever on a channel nothing will ever close — the
        etcd-style leak GOLF exists to catch.
        """
        registration = self.watchers.get(watch_id)
        if registration is None:
            return
        del self.watchers[watch_id]
        self.stats["watches_cancelled"] += 1
        if self.config.leak_watch_cancel:
            ch = registration["ch"]

            def drain(c=ch):
                while True:
                    _, ok = yield Recv(c)  # never closed: deadlocks
                    if not ok:
                        return

            yield Go(drain, name="kv-watch-drainer")
        # Correct variant: simply drop the registration; pending buffered
        # events are garbage once the watcher stops reading.

    def _broadcast(self, op: str, key: str, value: Any):
        for registration in list(self.watchers.entries.values()):
            if not key.startswith(registration["prefix"]):
                continue
            event = {"op": op, "key": key, "value": value}
            index, _, _ = yield Select(
                [SendCase(registration["ch"], event)], default=True)
            if index == DEFAULT_CASE:
                self.stats["events_dropped"] += 1
            else:
                self.stats["events_delivered"] += 1


class KVWorkloadResult:
    """Functional counters plus leak telemetry from one workload run."""

    def __init__(self) -> None:
        self.stats: Dict[str, int] = {}
        self.requests = 0
        self.timeouts = 0
        self.watch_events_seen = 0
        self.deadlock_reports = 0
        self.dedup_sites: List[str] = []
        self.lingering_goroutines = 0

    def __repr__(self) -> str:
        return (
            f"<kv-workload requests={self.requests} "
            f"reports={self.deadlock_reports} stats={self.stats}>"
        )


def run_kv_workload(config: Optional[KVConfig] = None,
                    golf: bool = True,
                    proof_registry=None) -> KVWorkloadResult:
    """Drive a mixed GET/PUT/WATCH workload against the store.

    ``proof_registry`` optionally installs static leak-freedom
    certificates (see :mod:`repro.staticcheck.proofs`) before the
    workload spawns — the proofs-on leg of the equivalence oracle.
    """
    config = config or KVConfig()
    gc_config = GolfConfig() if golf else GolfConfig.baseline()
    rt = Runtime(procs=config.procs, seed=config.seed, config=gc_config)
    if proof_registry is not None:
        rt.install_proofs(proof_registry)
    rt.enable_periodic_gc(config.periodic_gc_ms * MILLISECOND)
    host_rng = random.Random(config.seed ^ 0x5107E)
    result = KVWorkloadResult()
    deadline = config.duration_ms * MILLISECOND

    def client(store: KVStore, client_id: int):
        keys = [f"svc{client_id}/k{i}" for i in range(8)]
        while True:
            now = yield Now()
            if now >= deadline:
                return
            result.requests += 1
            roll = host_rng.random()
            if roll < config.watch_fraction:
                # Watch a prefix briefly, then cancel.
                watch_id, ch = yield from store.watch(f"svc{client_id}/")
                yield from store.put(host_rng.choice(keys), roll, now)
                index, event, ok = yield Select([RecvCase(ch)],
                                                default=True)
                if index != DEFAULT_CASE and ok:
                    result.watch_events_seen += 1
                yield from store.cancel_watch(watch_id)
            elif roll < config.watch_fraction + config.write_fraction:
                ctx, _cancel = yield from with_timeout(
                    config.request_timeout_ms * MILLISECOND)
                yield from store.put(host_rng.choice(keys), roll, now)
                if ctx.cancelled:
                    result.timeouts += 1
            else:
                value = yield from store.get(host_rng.choice(keys), now)
                del value
            yield Sleep(host_rng.randint(50, 400) * MICROSECOND)

    def main():
        store = yield from KVStore.create(config)
        for i in range(config.clients):
            yield Go(client, store, i, name=f"kv-client-{i}")
        yield Sleep(deadline)
        store.stop()
        yield Sleep(2 * config.sweep_interval_ms * MILLISECOND)
        result.stats = dict(store.stats)

    rt.spawn_main(main)
    rt.run(until_ns=deadline + SECOND, max_instructions=20_000_000)
    rt.gc_until_quiescent()

    result.deadlock_reports = rt.reports.total()
    result.dedup_sites = sorted(
        {r.label for r in rt.reports if r.label})
    result.lingering_goroutines = rt.blocked_goroutine_count()
    rt.shutdown()
    return result
