"""Extended leak patterns over the modern Go idioms.

These go beyond the paper's corpus (which predates some of these
libraries' ubiquity) and exercise the boundary of GOLF's detection on
the idioms production Go actually uses: ``context`` cancellation,
``time.Ticker``, ``errgroup``, and lock-ordering deadlocks.  Each entry
states whether GOLF *should* detect it, and the tests hold the detector
to exactly that.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple

from repro.runtime.clock import MICROSECOND
from repro.runtime.context import with_cancel, with_timeout
from repro.runtime.errgroup import group_go, new_group
from repro.runtime.instructions import (
    Go,
    Lock,
    MakeChan,
    NewMutex,
    NewSema,
    Recv,
    RecvCase,
    Select,
    SemAcquire,
    Send,
    Sleep,
    Unlock,
)
from repro.runtime.timers import new_ticker


class ExtendedBenchmark(NamedTuple):
    """A pattern plus its expected detection verdicts."""

    name: str
    body: Callable
    #: Labels GOLF must report.
    golf_detects: List[str]
    #: Labels only goleak-style end-of-test inspection can see
    #: (runaway-live or externally parked goroutines).
    goleak_only: List[str]


def ticker_forgotten_stop() -> ExtendedBenchmark:
    """``time.NewTicker`` without ``Stop()``: the tick loop runs forever.

    A *runaway live* goroutine — GOLF must stay silent (it may tick
    again), while goleak flags it at test end.  The lingering goroutine
    is the tick loop itself, labeled ``ticker`` by ``new_ticker``."""
    name = "ext/ticker-no-stop"

    def body():
        ticker = yield from new_ticker(20 * MICROSECOND)

        def consumer():
            for _ in range(2):
                yield Recv(ticker.ch)
            # returns without ticker.stop(): the tick loop lives forever

        yield Go(consumer, name=f"{name}:1")

    return ExtendedBenchmark(name, body, golf_detects=[],
                             goleak_only=["ticker"])


def context_not_watched() -> ExtendedBenchmark:
    """A worker that ignores ``ctx.Done()``: cancellation cannot reach
    it, and once the caller returns, its result send deadlocks."""
    name = "ext/ctx-not-watched"
    label = f"{name}:2"

    def body():
        ctx, cancel = yield from with_cancel()
        results = yield MakeChan(0)

        def worker():
            yield Sleep(30 * MICROSECOND)
            yield Send(results, "answer")  # never selects on ctx.done

        yield Go(worker, name=label)
        yield from cancel()  # caller gives up immediately
        # ...and returns without receiving: the worker leaks

    return ExtendedBenchmark(name, body, golf_detects=[label],
                             goleak_only=[])


def context_timeout_abandons_worker() -> ExtendedBenchmark:
    """``context.WithTimeout`` done right on the caller side, but the
    worker's send has no buffer: when the deadline wins the select, the
    worker is stranded."""
    name = "ext/ctx-timeout"
    label = f"{name}:3"

    def body():
        ctx, _cancel = yield from with_timeout(10 * MICROSECOND)
        results = yield MakeChan(0)

        def worker():
            yield Sleep(50 * MICROSECOND)  # slower than the deadline
            yield Send(results, "late")

        yield Go(worker, name=label)
        yield Select([RecvCase(results), RecvCase(ctx.done)])

    return ExtendedBenchmark(name, body, golf_detects=[label],
                             goleak_only=[])


def errgroup_forgotten_wait() -> ExtendedBenchmark:
    """An errgroup whose results channel nobody drains because the
    caller forgot ``Wait()`` (and the drain that follows it)."""
    name = "ext/errgroup-no-wait"
    label = f"{name}:4"

    def body():
        group = yield from new_group()
        results = yield MakeChan(0)

        def task(i):
            yield Sleep(5 * MICROSECOND)
            yield Send(results, i)
            return None

        for i in range(3):
            yield from group_go(group, task, i, name=label)
        # caller returns without group_wait(group) / draining results

    return ExtendedBenchmark(name, body, golf_detects=[label],
                             goleak_only=[])


def abba_lock_ordering() -> ExtendedBenchmark:
    """The classic AB-BA mutex deadlock between two goroutines.  Both
    are permanently blocked on ``sync.Mutex.Lock`` and neither mutex is
    reachable from live code: GOLF reports both."""
    name = "ext/abba"
    label_ab = f"{name}:5"
    label_ba = f"{name}:6"

    def body():
        mu_a = yield NewMutex(label="A")
        mu_b = yield NewMutex(label="B")

        def locker_ab():
            yield Lock(mu_a)
            yield Sleep(10 * MICROSECOND)
            yield Lock(mu_b)
            yield Unlock(mu_b)
            yield Unlock(mu_a)

        def locker_ba():
            yield Lock(mu_b)
            yield Sleep(10 * MICROSECOND)
            yield Lock(mu_a)
            yield Unlock(mu_a)
            yield Unlock(mu_b)

        yield Go(locker_ab, name=label_ab)
        yield Go(locker_ba, name=label_ba)

    return ExtendedBenchmark(name, body,
                             golf_detects=[label_ab, label_ba],
                             goleak_only=[])


def semaphore_pool_exhausted() -> ExtendedBenchmark:
    """A counting-semaphore pool whose holders never release: the
    queued acquirer deadlocks."""
    name = "ext/sema-pool"
    label = f"{name}:7"

    def body():
        pool = yield NewSema(2)

        def hog():
            yield SemAcquire(pool)
            # exits while still holding a slot (missing release)

        def queued():
            yield SemAcquire(pool)

        yield Go(hog)
        yield Go(hog)
        yield Sleep(10 * MICROSECOND)
        yield Go(queued, name=label)

    return ExtendedBenchmark(name, body, golf_detects=[label],
                             goleak_only=[])


def extended_benchmarks() -> List[ExtendedBenchmark]:
    """The full extended suite."""
    return [
        ticker_forgotten_stop(),
        context_not_watched(),
        context_timeout_abandons_worker(),
        errgroup_forgotten_wait(),
        abba_lock_ordering(),
        semaphore_pool_exhausted(),
    ]
