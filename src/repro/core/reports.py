"""Partial deadlock reports and deduplication.

A report captures the information GOLF prints in production: the
goroutine, where it was spawned (the ``go`` instruction site), where it is
blocked, the wait reason, and its stack.  The RQ1(b) methodology
deduplicates reports by the pair *(spawn site, blocking site)*, because
the same defective code location may leak from many callers (paper,
section 6.1); :class:`ReportLog` implements both the raw and deduplicated
views.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.runtime.goroutine import Goroutine


class DeadlockReport:
    """One detected partial deadlock."""

    __slots__ = ("goid", "name", "label", "go_site", "block_site",
                 "wait_reason", "stack", "gc_cycle", "detected_at_ns",
                 "glabel", "provenance")

    def __init__(self, goid: int, name: str, label: str, go_site: str,
                 block_site: str, wait_reason: str, stack: List[str],
                 gc_cycle: int, detected_at_ns: int, glabel: str = ""):
        self.goid = goid
        self.name = name
        self.label = label
        self.go_site = go_site
        self.block_site = block_site
        self.wait_reason = wait_reason
        self.stack = stack
        self.gc_cycle = gc_cycle
        self.detected_at_ns = detected_at_ns
        self.glabel = glabel or f"{name}#{goid}"
        #: The causal why-leaked record the collector attaches at
        #: detection time (:mod:`repro.trace.provenance`); None only for
        #: reports constructed outside a collection.
        self.provenance = None

    @property
    def dedup_key(self) -> Tuple[str, str]:
        """(spawn site, blocking site): the paper's dedup criterion."""
        return (self.go_site, self.block_site)

    def as_dict(self) -> dict:
        """JSON-serializable form, for shipping to logging pipelines
        (how the RQ1(c) deployment collected reports)."""
        return {
            "goid": self.goid,
            "glabel": self.glabel,
            "name": self.name,
            "label": self.label,
            "go_site": self.go_site,
            "block_site": self.block_site,
            "wait_reason": self.wait_reason,
            "stack": list(self.stack),
            "gc_cycle": self.gc_cycle,
            "detected_at_ns": self.detected_at_ns,
        }

    def format(self) -> str:
        """Render in the style of GOLF's runtime message."""
        lines = [
            f"partial deadlock! goroutine {self.glabel} [{self.wait_reason}]",
            f"  spawned at: {self.go_site}",
            f"  blocked at: {self.block_site}",
        ]
        lines.extend(f"  {frame}" for frame in self.stack)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<deadlock goid={self.goid} label={self.label!r} "
            f"reason={self.wait_reason} at {self.block_site}>"
        )


class ReportLog:
    """Collects deadlock reports across GC cycles."""

    def __init__(self) -> None:
        self.reports: List[DeadlockReport] = []

    def add(self, g: Goroutine, gc_cycle: int, now_ns: int) -> DeadlockReport:
        report = DeadlockReport(
            goid=g.goid,
            name=g.name,
            label=g.deadlock_label,
            go_site=g.go_site,
            block_site=g.block_site(),
            wait_reason=g.wait_reason.value if g.wait_reason else "unknown",
            stack=g.stack_trace(),
            gc_cycle=gc_cycle,
            detected_at_ns=now_ns,
            glabel=g.trace_label,
        )
        self.reports.append(report)
        return report

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)

    def total(self) -> int:
        """Total number of individual partial deadlock reports."""
        return len(self.reports)

    def deduplicated(self) -> Dict[Tuple[str, str], List[DeadlockReport]]:
        """Group reports by (spawn site, blocking site)."""
        groups: Dict[Tuple[str, str], List[DeadlockReport]] = {}
        for report in self.reports:
            groups.setdefault(report.dedup_key, []).append(report)
        return groups

    def labels(self) -> Dict[str, int]:
        """Count of reports per microbenchmark annotation label."""
        counts: Dict[str, int] = {}
        for report in self.reports:
            if report.label:
                counts[report.label] = counts.get(report.label, 0) + 1
        return counts

    def has_label(self, label: str) -> bool:
        return any(r.label == label for r in self.reports)

    def clear(self) -> None:
        self.reports.clear()

    def summary_text(self) -> str:
        """A triage-ready rendering: deduplicated sites, most-hit first.

        This is the view an engineer consuming GOLF's production logs
        works from (the paper narrowed 252 reports to 3 locations this
        way).
        """
        groups = sorted(
            self.deduplicated().items(),
            key=lambda item: -len(item[1]),
        )
        lines = [
            f"{self.total()} partial deadlock report(s), "
            f"{len(groups)} distinct source location(s):"
        ]
        for (go_site, block_site), reports in groups:
            reasons = sorted({r.wait_reason for r in reports})
            lines.append(
                f"  {len(reports):4d}x  spawned {go_site}  "
                f"blocked {block_site}  [{', '.join(reasons)}]"
            )
        return "\n".join(lines)
