"""``sync`` package primitives: Mutex, RWMutex, WaitGroup, Cond, Once.

As in Go, every blocking ``sync`` primitive parks goroutines on an
internal semaphore registered in the global semaphore table
(:class:`~repro.runtime.sema.SemaTable`).  Each primitive exposes one or
more *sema keys* — distinct simulated addresses within the object, exactly
like the ``uint32`` sema fields inside Go's ``sync`` structs — and the
scheduler parks/wakes goroutines on those keys.

The classes here hold pure state (is the mutex held? what is the
WaitGroup counter?); all blocking, waking and hand-off decisions live in
the scheduler, which keeps these objects trivially unit-testable and
mirrors the Go split between ``sync`` and ``runtime/sema.go``.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import NegativeWaitGroupCounter, UnlockOfUnlockedMutex
from repro.runtime.objects import WORD_SIZE, HeapObject


class Mutex(HeapObject):
    """``sync.Mutex``: a mutual-exclusion lock.

    Go permits unlocking from a goroutine other than the locker, so no
    owner is tracked; unlocking an unheld mutex panics.
    """

    __slots__ = ("locked", "label")
    kind = "mutex"

    def __init__(self, label: str = ""):
        super().__init__(size=2 * WORD_SIZE)
        self.locked = False
        self.label = label

    def sema_key(self) -> int:
        """Table key of the internal semaphore (the struct's sema field)."""
        return self.addr + 8

    def try_lock(self) -> bool:
        if self.locked:
            return False
        self.locked = True
        return True

    def release(self) -> None:
        """Clear the held bit; panics if not held.

        The scheduler decides whether to hand the lock to a parked waiter
        (in which case it re-sets ``locked`` before waking them).
        """
        if not self.locked:
            raise UnlockOfUnlockedMutex()
        self.locked = False


class RWMutex(HeapObject):
    """``sync.RWMutex``: a reader/writer lock with writer preference.

    Once a writer is waiting, new readers block (Go's anti-starvation
    rule); readers already holding the lock drain before the writer
    enters.
    """

    __slots__ = ("readers", "writer", "writers_waiting", "label")
    kind = "rwmutex"

    def __init__(self, label: str = ""):
        super().__init__(size=4 * WORD_SIZE)
        self.readers = 0
        self.writer = False
        #: Count of parked writers; maintained by the scheduler.
        self.writers_waiting = 0
        self.label = label

    def reader_sema_key(self) -> int:
        return self.addr + 8

    def writer_sema_key(self) -> int:
        return self.addr + 16

    def try_rlock(self) -> bool:
        if self.writer or self.writers_waiting > 0:
            return False
        self.readers += 1
        return True

    def runlock(self) -> None:
        if self.readers <= 0:
            raise UnlockOfUnlockedMutex()
        self.readers -= 1

    def try_lock(self) -> bool:
        if self.writer or self.readers > 0:
            return False
        self.writer = True
        return True

    def unlock(self) -> None:
        if not self.writer:
            raise UnlockOfUnlockedMutex()
        self.writer = False


class WaitGroup(HeapObject):
    """``sync.WaitGroup``: a non-negative counter with waiters."""

    __slots__ = ("counter", "label")
    kind = "waitgroup"

    def __init__(self, label: str = ""):
        super().__init__(size=2 * WORD_SIZE)
        self.counter = 0
        self.label = label

    def sema_key(self) -> int:
        return self.addr + 8

    def add(self, delta: int) -> None:
        self.counter += delta
        if self.counter < 0:
            raise NegativeWaitGroupCounter()

    @property
    def ready(self) -> bool:
        """Whether ``Wait`` would return immediately."""
        return self.counter == 0


class Cond(HeapObject):
    """``sync.Cond``: a condition variable bound to a locker."""

    __slots__ = ("locker", "label")
    kind = "cond"

    def __init__(self, locker: Mutex, label: str = ""):
        super().__init__(size=3 * WORD_SIZE)
        self.locker = locker
        self.label = label

    def sema_key(self) -> int:
        return self.addr + 8

    def referents(self) -> Iterator[HeapObject]:
        yield self.locker


class Once(HeapObject):
    """``sync.Once``: one-shot execution latch."""

    __slots__ = ("done",)
    kind = "once"

    def __init__(self) -> None:
        super().__init__(size=WORD_SIZE)
        self.done = False


class Pool(HeapObject):
    """``sync.Pool``: a cache of reusable objects emptied by the GC.

    Go's pools are integrated with the collector: every cycle drops the
    pooled objects (via the victim-cache mechanism; modeled here as a
    two-cycle survival — an object put in the pool survives the next
    collection in the victim space and is dropped by the one after, like
    Go since 1.13).  The collector calls :meth:`on_gc` each cycle.

    ``get``/``put`` are plain methods (they never block, so they need no
    instruction); ``new`` is an optional factory for cache misses.
    """

    __slots__ = ("_items", "_victims", "new", "gets", "puts", "misses")
    kind = "pool"

    #: Registers the pool in the heap's per-cycle aging registry at
    #: allocation time, so the collector ages pools without scanning the
    #: whole heap (see :meth:`repro.gc.heap.Heap.gc_aged_objects`).
    gc_ages_on_cycle = True

    def __init__(self, new=None):
        super().__init__(size=4 * WORD_SIZE)
        self._items: list = []
        self._victims: list = []
        self.new = new
        self.gets = 0
        self.puts = 0
        self.misses = 0

    def put(self, item) -> None:
        self._barrier(item)
        self._items.append(item)
        self.puts += 1

    def get(self):
        self.gets += 1
        if self._items:
            return self._items.pop()
        if self._victims:
            return self._victims.pop()
        self.misses += 1
        return self.new() if self.new is not None else None

    def on_gc(self) -> None:
        """GC hook: primary cache becomes the victim cache; the previous
        victims are released to the collector."""
        self._victims = self._items
        self._items = []

    def __len__(self) -> int:
        return len(self._items) + len(self._victims)

    def referents(self):
        from repro.runtime.objects import iter_heap_refs
        for item in self._items:
            yield from iter_heap_refs(item)
        for item in self._victims:
            yield from iter_heap_refs(item)
