"""The GC phase machine of the incremental collector.

The atomic collector runs an entire cycle inside one call; the
incremental collector decomposes the same cycle into explicit phases::

    IDLE -> MARK_SETUP (STW) -> MARKING (concurrent, bounded steps)
         -> MARK_TERMINATION (STW) -> SWEEPING (concurrent, bounded steps)
         -> IDLE

``MARK_SETUP`` and ``MARK_TERMINATION`` are the two stop-the-world
windows (Go's sweep termination/mark setup and mark termination);
``MARKING`` and ``SWEEPING`` run in bounded work budgets driven by the
scheduler between goroutine time slices (``Scheduler.gc_step_hook``).
See ``docs/GC.md`` for the full design, including the write-barrier
invariant that makes concurrent marking sound.
"""

from __future__ import annotations

import enum


class GCPhase(enum.Enum):
    """Where the incremental collector currently stands."""

    IDLE = "idle"
    MARK_SETUP = "mark-setup"
    MARKING = "marking"
    MARK_TERMINATION = "mark-termination"
    SWEEPING = "sweeping"

    @property
    def stop_the_world(self) -> bool:
        """Whether mutators are paused for this phase."""
        return self in (GCPhase.MARK_SETUP, GCPhase.MARK_TERMINATION)
