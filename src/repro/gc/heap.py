"""The simulated heap: allocation, mark bits, sweeping, and globals.

The heap owns every live :class:`~repro.runtime.objects.HeapObject`,
assigns simulated addresses, tracks allocation statistics (the analog of
Go's ``runtime.MemStats``), and implements the sweep phase: unmarked
objects are reclaimed, and unmarked objects with finalizers are resurrected
for one cycle while their finalizer is queued, as in Go.

Mark state is an epoch counter rather than a bit: an object is marked in
the current cycle iff its ``_mark_epoch`` equals the heap's epoch, so
"unmark all objects" at the start of a cycle is O(1).
"""

from __future__ import annotations

from typing import (
    Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple,
)

from repro.runtime.objects import HeapObject, iter_heap_refs


class GlobalRoot(HeapObject):
    """The global-data root object (the paper's ``g0`` global view).

    Any value registered here is intrinsically reachable; programs use it
    to model package-level variables such as the global channel of the
    paper's Listing 4 (a known false-negative pattern for GOLF).
    """

    __slots__ = ("names",)
    kind = "globals"

    def __init__(self) -> None:
        super().__init__(size=0)
        self.names: Dict[str, Any] = {}

    def set(self, name: str, value: Any) -> None:
        self._barrier(value)
        self.names[name] = value

    def get(self, name: str, default: Any = None) -> Any:
        return self.names.get(name, default)

    def remove(self, name: str) -> None:
        self.names.pop(name, None)

    def referents(self) -> Iterator[HeapObject]:
        for value in self.names.values():
            yield from iter_heap_refs(value)

    def referents_excluding(self, names) -> Iterator[HeapObject]:
        """Referents with some entries hidden — used by the detector
        when static liveness hints declare certain globals dead (the
        paper's future-work extension).  Collection itself never uses
        this view: hinted globals stay in memory."""
        for name, value in self.names.items():
            if name in names:
                continue
            yield from iter_heap_refs(value)


class SweepResult:
    """Outcome of a sweep phase."""

    __slots__ = ("freed_objects", "freed_bytes", "finalizers_queued")

    def __init__(self, freed_objects: int, freed_bytes: int,
                 finalizers_queued: int):
        self.freed_objects = freed_objects
        self.freed_bytes = freed_bytes
        self.finalizers_queued = finalizers_queued

    def __repr__(self) -> str:
        return (
            f"SweepResult(freed_objects={self.freed_objects}, "
            f"freed_bytes={self.freed_bytes}, "
            f"finalizers_queued={self.finalizers_queued})"
        )


class Heap:
    """Container for all live simulated objects.

    Attributes:
        globals: the :class:`GlobalRoot`, always allocated and pinned.
        epoch: current mark epoch; bumped by :meth:`begin_cycle`.
    """

    def __init__(self) -> None:
        self._objects: Dict[int, HeapObject] = {}
        self._next_addr = 0x1000
        self._pinned: set = set()
        self.epoch = 0
        # Cumulative statistics.
        self.total_alloc_bytes = 0
        self.total_alloc_objects = 0
        self.total_freed_bytes = 0
        self.total_freed_objects = 0
        # Dijkstra-style insertion write barrier (incremental collector):
        # active only during the concurrent MARKING phase.  Every
        # reference store in the runtime routes through
        # :meth:`write_barrier`, which shades the stored target gray so
        # a black object can never point at a white one.
        self._barrier_active = False
        self._gray_sink: Optional[List[HeapObject]] = None
        self.barrier_shades = 0
        #: Optional chaos hook fired on every barrier shade
        #: (``hook(src, obj)``); one-shot jitter faults arm this.
        self.barrier_hook: Optional[Callable[[Any, HeapObject], None]] = None
        #: Optional trace hook fired when the barrier *newly* shades an
        #: object (``hook(src, obj)``); installed by ``enable_tracing``.
        self.trace_shade_hook: Optional[
            Callable[[Any, HeapObject], None]] = None
        # Registry of objects that age on every GC cycle (sync.Pool):
        # lets the collector age pools without an O(heap) scan.
        self._gc_aged: Dict[int, HeapObject] = {}
        self.globals = GlobalRoot()
        self.allocate(self.globals, pinned=True)

    # -- allocation -------------------------------------------------------

    def allocate(self, obj: HeapObject, pinned: bool = False) -> HeapObject:
        """Place ``obj`` on the heap, assigning it a fresh address.

        Pinned objects (goroutine descriptors, the global root) are never
        swept; the runtime manages their lifecycle explicitly.
        """
        if obj.addr != 0:
            raise ValueError(f"object already allocated: {obj!r}")
        obj.addr = self._next_addr
        self._next_addr += max(obj.size, 16)
        self._objects[obj.addr] = obj
        obj._heap = self
        self.total_alloc_bytes += obj.size
        self.total_alloc_objects += 1
        if pinned:
            self._pinned.add(obj.addr)
        if getattr(type(obj), "gc_ages_on_cycle", False):
            self._gc_aged[obj.addr] = obj
        if self._barrier_active:
            # Allocate-black: objects born during marking survive the
            # cycle.  Push them gray as well, so references installed by
            # their constructors are traced even if the allocator never
            # reaches a barrier afterwards.
            if self.mark(obj) and self._gray_sink is not None:
                self._gray_sink.append(obj)
        return obj

    def pin(self, obj: HeapObject) -> None:
        """Exclude ``obj`` from sweeping."""
        self._pinned.add(obj.addr)

    def unpin(self, obj: HeapObject) -> None:
        self._pinned.discard(obj.addr)

    def free(self, obj: HeapObject) -> None:
        """Explicitly remove ``obj`` from the heap (runtime-internal)."""
        if self._objects.pop(obj.addr, None) is not None:
            self.total_freed_bytes += obj.size
            self.total_freed_objects += 1
            self._pinned.discard(obj.addr)
            self._gc_aged.pop(obj.addr, None)
            obj._heap = None

    # -- checkpoint snapshot/restore --------------------------------------

    def snapshot_objects(self, objs: Iterable[HeapObject]) -> Dict[int, Any]:
        """Record the restorable payload of ``objs`` for a checkpoint.

        Returns ``{addr: state}`` using each object's
        :meth:`~repro.runtime.objects.HeapObject.checkpoint_state`.  The
        caller (checkpoint/restart recovery) is responsible for keeping
        the objects alive across the checkpoint's lifetime — registered
        subsystem objects are pinned for exactly this reason.
        """
        return {obj.addr: obj.checkpoint_state() for obj in objs}

    def restore_objects(self, objs: Iterable[HeapObject],
                        snapshot: Dict[int, Any]) -> None:
        """Roll ``objs`` back to a snapshot taken by
        :meth:`snapshot_objects`.

        Objects without an entry (registered after the checkpoint) are
        left untouched.  Restores route stores through each object's
        write barrier, so a rollback landing while the incremental
        collector marks stays tricolor-sound.
        """
        for obj in objs:
            if obj.addr in snapshot:
                obj.restore_state(snapshot[obj.addr])

    # -- introspection ----------------------------------------------------

    def contains(self, obj: HeapObject) -> bool:
        """Whether ``obj`` is currently live on this heap."""
        return obj.addr != 0 and self._objects.get(obj.addr) is obj

    def objects(self) -> Iterator[HeapObject]:
        """Iterate over all live objects (sweep-order: address order)."""
        return iter(self._objects.values())

    def gc_aged_objects(self) -> Iterator[HeapObject]:
        """Objects registered as aging once per GC cycle (``sync.Pool``).

        Classes opt in with a ``gc_ages_on_cycle = True`` attribute; the
        collector ages only this registry instead of scanning the whole
        heap every cycle.  Iteration follows allocation order, matching
        the old full-heap scan.
        """
        return iter(self._gc_aged.values())

    def __len__(self) -> int:
        return len(self._objects)

    @property
    def live_bytes(self) -> int:
        """Bytes held by live (not yet swept) objects: ``HeapAlloc``."""
        return self.total_alloc_bytes - self.total_freed_bytes

    @property
    def live_objects(self) -> int:
        """Number of live objects: ``HeapObjects``."""
        return self.total_alloc_objects - self.total_freed_objects

    # -- marking ----------------------------------------------------------

    def begin_cycle(self) -> None:
        """Start a new mark epoch, logically unmarking every object."""
        self.epoch += 1

    def mark(self, obj: HeapObject) -> bool:
        """Mark ``obj`` for the current epoch; return True if newly marked."""
        if obj._mark_epoch == self.epoch:
            return False
        obj._mark_epoch = self.epoch
        return True

    def is_marked(self, obj: HeapObject) -> bool:
        return obj._mark_epoch == self.epoch

    # -- write barrier (incremental collector) ----------------------------

    def enable_barrier(self, gray_sink: List[HeapObject]) -> None:
        """Arm the Dijkstra insertion barrier for the MARKING phase.

        ``gray_sink`` receives every object the barrier shades, so the
        concurrent marker also traces *through* them (a shaded container
        may itself hold unmarked references).
        """
        self._barrier_active = True
        self._gray_sink = gray_sink

    def disable_barrier(self) -> None:
        self._barrier_active = False
        self._gray_sink = None

    @property
    def barrier_active(self) -> bool:
        return self._barrier_active

    def write_barrier(self, src: Any, new_ref: Any) -> None:
        """Shade the target of a reference store (Dijkstra, insertion).

        Single choke point for every reference mutation in the runtime:
        channel buffers and sudog values, sync-object fields, map/slice/
        struct stores, and global-root sets.  While marking is in flight
        this preserves the tricolor invariant — no black object ever
        points to a white one — by marking the stored value (and pushing
        it gray).  Masked goroutine descriptors are *not* shaded: under
        GOLF, liveness must only propagate into a blocked goroutine via
        the detector's ``B(g)`` fixpoint, never via a stored pointer to
        its descriptor (see :mod:`repro.core.masking`).  Outside marking
        this is a no-op.
        """
        if not self._barrier_active or new_ref is None:
            return
        if self.barrier_hook is not None:
            self.barrier_hook(src, new_ref)
        sink = self._gray_sink
        for obj in iter_heap_refs(new_ref):
            if obj.kind == "goroutine" and obj.masked:  # type: ignore[attr-defined]
                continue
            if self.mark(obj):
                self.barrier_shades += 1
                if self.trace_shade_hook is not None:
                    self.trace_shade_hook(src, obj)
                if sink is not None:
                    sink.append(obj)

    # -- sweeping ---------------------------------------------------------

    def sweep(self) -> Tuple[SweepResult, List[Callable[[], None]]]:
        """Reclaim unmarked, unpinned objects.

        Unmarked objects carrying a finalizer are resurrected instead of
        freed: their finalizer is detached and returned as a queued
        thunk, and the object survives until a later cycle finds it
        unreachable again — mirroring Go's finalizer resurrection.

        Returns the sweep statistics and the queued finalizer thunks; the
        collector decides when to run them.
        """
        freed_objects = 0
        freed_bytes = 0
        finalizers: List[Callable[[], None]] = []
        to_free: List[HeapObject] = []
        for obj in self._objects.values():
            if obj._mark_epoch == self.epoch or obj.addr in self._pinned:
                continue
            if obj._finalizer is not None:
                fn = obj._finalizer
                obj._finalizer = None
                # Resurrect for this cycle; mark so a re-scan sees it live.
                obj._mark_epoch = self.epoch
                finalizers.append(_bind_finalizer(fn, obj))
                continue
            to_free.append(obj)
        for obj in to_free:
            del self._objects[obj.addr]
            self._gc_aged.pop(obj.addr, None)
            obj._heap = None
            freed_objects += 1
            freed_bytes += obj.size
        self.total_freed_objects += freed_objects
        self.total_freed_bytes += freed_bytes
        return SweepResult(freed_objects, freed_bytes, len(finalizers)), finalizers

    def is_pinned(self, obj: HeapObject) -> bool:
        return obj.addr in self._pinned

    def sweep_one(
        self, obj: HeapObject
    ) -> Tuple[bool, int, Optional[Callable[[], None]]]:
        """Sweep a single candidate (the incremental SWEEPING phase).

        Applies the same rules as :meth:`sweep` to one object: marked,
        pinned, or already-freed candidates are left alone; an unmarked
        object with a finalizer is resurrected (marked for this epoch,
        finalizer detached and returned as a thunk); anything else is
        freed.  Returns ``(freed, freed_bytes, finalizer_thunk)``.
        """
        if not self.contains(obj) or obj.addr in self._pinned:
            return False, 0, None
        if obj._mark_epoch == self.epoch:
            return False, 0, None
        if obj._finalizer is not None:
            fn = obj._finalizer
            obj._finalizer = None
            obj._mark_epoch = self.epoch
            return False, 0, _bind_finalizer(fn, obj)
        del self._objects[obj.addr]
        self._gc_aged.pop(obj.addr, None)
        obj._heap = None
        self.total_freed_objects += 1
        self.total_freed_bytes += obj.size
        return True, obj.size, None


def _bind_finalizer(
    fn: Callable[[HeapObject], None], obj: HeapObject
) -> Callable[[], None]:
    def thunk() -> None:
        fn(obj)

    return thunk
