"""``context.with_timeout`` under clock-jitter chaos (satellite check).

Virtual-time jumps make deadlines fire "early" relative to instruction
progress.  The contract: the deadline still fires exactly once, the
context ends in ``DEADLINE_EXCEEDED``, workers watching ``ctx.done``
unwind cleanly, and GOLF finds nothing to report — timeouts under
jitter are not leaks, and jitter must not corrupt timer state.
"""

from __future__ import annotations

import pytest

from repro.chaos import FaultInjector, FaultPlan, get_scenario
from repro.runtime.clock import MILLISECOND
from repro.runtime.context import (
    CANCELED,
    DEADLINE_EXCEEDED,
    with_cancel,
    with_timeout,
)
from repro.runtime.instructions import (
    Go,
    MakeChan,
    Recv,
    RecvCase,
    Select,
    Send,
    Sleep,
)

from tests.conftest import run_to_end


def _timeout_program(observed, timeout_ns=50 * MILLISECOND, workers=3):
    """Main for: N workers watch ctx.done; work never arrives, so every
    worker must exit via the deadline."""

    def main():
        ctx, _cancel = yield from with_timeout(timeout_ns)
        work_ch = yield MakeChan(0, label="work")
        done_wg = yield MakeChan(workers, label="worker-exits")

        def worker(idx):
            which, _, _ = yield Select([RecvCase(work_ch),
                                        RecvCase(ctx.done)])
            observed.append((idx, "work" if which == 0 else "deadline"))
            yield Send(done_wg, idx)

        for i in range(workers):
            yield Go(worker, i, name=f"ctx-worker-{i}")
        for _ in range(workers):
            yield Recv(done_wg)
        observed.append(("ctx-err", ctx.err))

    return main


@pytest.mark.parametrize("seed", [0, 1, 7, 99, 1234])
def test_deadline_fires_under_clock_jitter(rt, seed):
    plan = FaultPlan(seed, get_scenario("clock-jitter"))
    injector = FaultInjector(rt, plan).install()
    observed = []
    status = run_to_end(rt, _timeout_program(observed))
    assert status == "main-exited"
    # Every worker exited via the deadline, and the context agrees.
    exits = [how for (_, how) in observed[:-1]]
    assert exits == ["deadline"] * 3
    assert observed[-1] == ("ctx-err", DEADLINE_EXCEEDED)
    # Jitter perturbed the run (unless the schedule ended too quickly)
    # without breaking anything.
    assert injector.violations == []
    assert rt.check_invariants() == []
    rt.gc_until_quiescent()
    assert rt.reports.total() == 0  # timeouts are not leaks
    rt.shutdown()


def test_deadline_under_jitter_is_replayable(baseline_rt):
    """Same seed, same program: identical fault trace and outcome."""
    from repro import GolfConfig, Runtime

    traces = []
    for _ in range(2):
        rt = Runtime(procs=2, seed=7, config=GolfConfig())
        plan = FaultPlan(5, get_scenario("clock-jitter"))
        FaultInjector(rt, plan).install()
        observed = []
        run_to_end(rt, _timeout_program(observed))
        traces.append((plan.trace_dicts(), tuple(observed)))
        rt.shutdown()
    assert traces[0] == traces[1]


def test_cancel_still_wins_race_under_jitter(rt):
    """Explicit cancel before the (jittered) deadline: err is CANCELED
    and the timer goroutine exits without reporting anything."""
    plan = FaultPlan(3, get_scenario("clock-jitter"))
    FaultInjector(rt, plan).install()
    errs = []

    def main():
        ctx, cancel = yield from with_timeout(400 * MILLISECOND)

        def watcher():
            yield Recv(ctx.done)

        yield Go(watcher, name="watcher")
        yield Sleep(1 * MILLISECOND)
        yield from cancel()
        yield Sleep(2 * MILLISECOND)
        errs.append(ctx.err)

    status = run_to_end(rt, main, budget_ns=2_000 * MILLISECOND)
    assert status == "main-exited"
    assert errs == [CANCELED]
    rt.gc_until_quiescent()
    assert rt.reports.total() == 0
    assert rt.check_invariants() == []
    rt.shutdown()


def test_nested_contexts_under_jitter(rt):
    """A child with_timeout under a parent with_cancel, all under
    jitter: the child deadline cancels only the child subtree."""
    plan = FaultPlan(11, get_scenario("clock-jitter"))
    FaultInjector(rt, plan).install()
    errs = []

    def main():
        parent, _parent_cancel = yield from with_cancel()
        child, _child_cancel = yield from with_timeout(
            20 * MILLISECOND, parent=parent)
        yield Recv(child.done)   # released by the child deadline
        errs.append((child.err, parent.err))
        yield from _parent_cancel()
        errs.append(parent.err)

    status = run_to_end(rt, main, budget_ns=2_000 * MILLISECOND)
    assert status == "main-exited"
    assert errs[0] == (DEADLINE_EXCEEDED, None)
    assert errs[1] == CANCELED
    rt.gc_until_quiescent()
    assert rt.reports.total() == 0
    rt.shutdown()
