"""Tests for the artifact-appendix testing harness."""

import os

import pytest

from repro.artifact import Annotation, TesterConfig, TesterReport, run_tester
from repro.microbench.registry import benchmarks_by_name


class TestAnnotation:
    def test_at_least_one_form(self):
        ann = Annotation("site:1")
        assert ann.expectation() == "x > 0"
        assert ann.satisfied_by(1) and ann.satisfied_by(5)
        assert not ann.satisfied_by(0)

    def test_exact_form(self):
        ann = Annotation("site:2", exact=3)
        assert ann.expectation() == "3"
        assert ann.satisfied_by(3)
        assert not ann.satisfied_by(2)


class TestConfig:
    def test_match_filters_by_regex(self):
        config = TesterConfig(match=r"^grpc/3017$")
        table = benchmarks_by_name()
        selected = config.selected(list(table.values()))
        assert {b.name for b in selected} == {"grpc/3017"}
        broad = TesterConfig(match=r"^grpc/").selected(list(table.values()))
        assert all(b.name.startswith("grpc/") for b in broad)
        assert {"grpc/1460", "grpc/3017"} <= {b.name for b in broad}

    def test_empty_match_selects_all(self):
        config = TesterConfig()
        assert len(config.selected(list(benchmarks_by_name().values()))) == 73

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            TesterConfig(repeats=0)


class TestRun:
    @pytest.fixture(scope="class")
    def report(self):
        config = TesterConfig(match=r"cgo/|grpc/3017", repeats=3,
                              procs_list=(1, 2))
        return run_tester(config)

    def test_deterministic_sites_fully_detected(self, report):
        row = report.rows["cgo/sendmail:105"]
        assert row.always_detected

    def test_core_sensitivity_visible(self, report):
        row = report.rows["grpc/3017:71"]
        assert row.per_procs[1] == 0
        assert row.per_procs[2] == 3

    def test_no_unexpected_or_failures(self, report):
        assert report.unexpected == []
        assert report.failures == {}

    def test_validate_passes(self, report):
        assert report.validate() == []

    def test_results_report_shape(self, report):
        text = report.format_results()
        assert "Benchmark" in text
        assert "Remaining" in text
        assert "Aggregated" in text
        assert "grpc/3017:71" in text  # flaky rows are listed
        assert "cgo/sendmail:105" not in text  # 100% rows collapse

    def test_aggregate_bounds(self, report):
        assert 0.5 < report.aggregated() <= 1.0
        assert report.aggregated(2) >= report.aggregated(1)


class TestPerf:
    def test_perf_csv(self, tmp_path):
        config = TesterConfig(match=r"cgo/double-send", repeats=2,
                              procs_list=(1,), perf=True)
        report = run_tester(config)
        assert len(report.perf_rows) == 1
        row = report.perf_rows[0]
        # GOLF's marking is unburdened on this leaky benchmark.
        assert row.mark_clock_on_us <= row.mark_clock_off_us
        csv_text = report.format_perf_csv()
        assert "Mark clock OFF (us)" in csv_text
        assert "cgo/double-send" in csv_text

        results = tmp_path / "results"
        perf = tmp_path / "results-perf.csv"
        report.write(str(results), str(perf))
        assert results.exists() and perf.exists()

    def test_write_without_perf(self, tmp_path):
        config = TesterConfig(match=r"cgo/double-send", repeats=1,
                              procs_list=(1,))
        report = run_tester(config)
        results = tmp_path / "results"
        report.write(str(results))
        assert "Aggregated" in results.read_text()


class TestCliIntegration:
    def test_tester_subcommand(self, capsys):
        from repro.cli import main
        assert main(["tester", "--match", "cgo/sendmail",
                     "--repeats", "2"]) == 0
        out = capsys.readouterr().out
        assert "Aggregated" in out
