"""Systematic concurrency verification.

Where the property-based suites sample random schedules, this package
*enumerates* them: every scheduler decision (run-queue pick, select-case
choice) becomes a branch point, and small programs are executed under
every reachable interleaving.  Used to verify GOLF's soundness theorem
exhaustively on distilled programs.
"""

from repro.verify.explore import (
    ExplorationResult,
    ScriptedRandom,
    explore,
)

__all__ = ["ExplorationResult", "ScriptedRandom", "explore"]
