"""Unit tests for the heap: allocation, marking epochs, sweep, finalizers."""

import pytest

from repro.gc.heap import Heap
from repro.runtime.objects import Blob, Box, Struct


@pytest.fixture
def heap():
    return Heap()


class TestAllocation:
    def test_assigns_unique_addresses(self, heap):
        a, b = Box(1), Box(2)
        heap.allocate(a)
        heap.allocate(b)
        assert a.addr != 0 and b.addr != 0 and a.addr != b.addr

    def test_double_allocation_rejected(self, heap):
        obj = Box(1)
        heap.allocate(obj)
        with pytest.raises(ValueError):
            heap.allocate(obj)

    def test_contains(self, heap):
        obj = heap.allocate(Box(1))
        assert heap.contains(obj)
        assert not heap.contains(Box(2))

    def test_live_bytes_and_objects(self, heap):
        base_bytes, base_objects = heap.live_bytes, heap.live_objects
        heap.allocate(Blob(1000))
        assert heap.live_bytes == base_bytes + 1000
        assert heap.live_objects == base_objects + 1

    def test_explicit_free(self, heap):
        obj = heap.allocate(Blob(512))
        before = heap.live_bytes
        heap.free(obj)
        assert heap.live_bytes == before - 512
        assert not heap.contains(obj)

    def test_globals_always_allocated(self, heap):
        assert heap.contains(heap.globals)


class TestMarking:
    def test_mark_is_per_epoch(self, heap):
        obj = heap.allocate(Box(1))
        heap.begin_cycle()
        assert not heap.is_marked(obj)
        assert heap.mark(obj)
        assert heap.is_marked(obj)
        assert not heap.mark(obj)  # second mark is a no-op

    def test_new_cycle_unmarks_everything(self, heap):
        obj = heap.allocate(Box(1))
        heap.begin_cycle()
        heap.mark(obj)
        heap.begin_cycle()
        assert not heap.is_marked(obj)


class TestSweep:
    def test_sweeps_unmarked(self, heap):
        garbage = heap.allocate(Blob(100))
        live = heap.allocate(Blob(200))
        heap.begin_cycle()
        heap.mark(heap.globals)
        heap.mark(live)
        result, finalizers = heap.sweep()
        assert result.freed_objects == 1
        assert result.freed_bytes == 100
        assert finalizers == []
        assert not heap.contains(garbage)
        assert heap.contains(live)

    def test_pinned_objects_survive_unmarked(self, heap):
        pinned = heap.allocate(Blob(64), pinned=True)
        heap.begin_cycle()
        heap.mark(heap.globals)
        heap.sweep()
        assert heap.contains(pinned)

    def test_unpin_allows_sweep(self, heap):
        obj = heap.allocate(Blob(64), pinned=True)
        heap.unpin(obj)
        heap.begin_cycle()
        heap.mark(heap.globals)
        heap.sweep()
        assert not heap.contains(obj)

    def test_finalizer_resurrects_once(self, heap):
        calls = []
        obj = heap.allocate(Box("payload"))
        obj.set_finalizer(lambda o: calls.append(o))

        heap.begin_cycle()
        heap.mark(heap.globals)
        result, finalizers = heap.sweep()
        assert result.finalizers_queued == 1
        assert heap.contains(obj)  # resurrected this cycle
        for thunk in finalizers:
            thunk()
        assert calls == [obj]

        # Next cycle: still unreachable, finalizer detached -> freed.
        heap.begin_cycle()
        heap.mark(heap.globals)
        result, finalizers = heap.sweep()
        assert finalizers == []
        assert not heap.contains(obj)

    def test_marked_finalizer_object_untouched(self, heap):
        obj = heap.allocate(Box(1))
        obj.set_finalizer(lambda o: None)
        heap.begin_cycle()
        heap.mark(obj)
        _, finalizers = heap.sweep()
        assert finalizers == []
        assert obj.finalizer is not None


class TestGlobals:
    def test_set_get_remove(self, heap):
        heap.globals.set("x", 42)
        assert heap.globals.get("x") == 42
        heap.globals.remove("x")
        assert heap.globals.get("x") is None

    def test_referents_scan_registered_values(self, heap):
        a = heap.allocate(Box(1))
        b = heap.allocate(Box(2))
        heap.globals.set("direct", a)
        heap.globals.set("nested", {"list": [b]})
        assert set(heap.globals.referents()) == {a, b}

    def test_global_value_survives_sweep(self, heap):
        obj = heap.allocate(Struct(payload=heap.allocate(Blob(32))))
        heap.globals.set("keep", obj)
        heap.begin_cycle()
        from repro.gc.marking import mark_from
        mark_from(heap, [heap.globals])
        heap.sweep()
        assert heap.contains(obj)
