"""The chaos engine: determinism, the soundness oracle, and campaigns.

The acceptance bar for the fault-injection engine: across hundreds of
seeded fault schedules GOLF must produce zero false positives (no
reported goroutine is ever woken), zero runtime-invariant violations,
and idempotent quiescence — and every schedule must be replayable from
``(benchmark, procs, seed, scenario)`` alone.
"""

from __future__ import annotations

import pytest

from repro.chaos import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    SCENARIOS,
    get_scenario,
    run_chaos_campaign,
    run_chaos_schedule,
)
from repro.errors import InjectedPanic
from repro.microbench.registry import all_benchmarks
from repro.runtime.clock import MILLISECOND
from repro.runtime.goroutine import GStatus
from repro.runtime.instructions import Go, MakeChan, Recv, Sleep

from tests.conftest import run_to_end


class TestFaultPlan:
    def test_same_seed_same_decisions(self):
        spec = get_scenario("mixed")
        a, b = FaultPlan(123, spec), FaultPlan(123, spec)
        assert [a.next_fault() for _ in range(500)] == \
               [b.next_fault() for _ in range(500)]

    def test_different_seeds_diverge(self):
        spec = get_scenario("mixed")
        plan_a, plan_b = FaultPlan(1, spec), FaultPlan(2, spec)
        a = [plan_a.next_fault() for _ in range(500)]
        b = [plan_b.next_fault() for _ in range(500)]
        assert a != b

    def test_max_faults_caps_injections(self):
        spec = get_scenario("clock-jitter")
        plan = FaultPlan(9, spec)
        fired = 0
        for _ in range(100_000):
            kind = plan.next_fault()
            if kind is None:
                continue
            plan.record(0, kind, 0, "test", "injected")
            fired += 1
        assert fired == spec.max_faults
        assert plan.next_fault() is None

    def test_rejected_faults_do_not_consume_budget(self):
        spec = get_scenario("panic-storm")
        plan = FaultPlan(9, spec)
        for _ in range(1000):
            kind = plan.next_fault()
            if kind is not None:
                plan.record(0, kind, 0, "test", "rejected")
        assert plan.injected_count() == 0
        assert plan.rejected_count() > 0
        assert plan.next_fault() is not None or True  # budget untouched

    def test_scenario_weights_select_only_listed_kinds(self):
        spec = get_scenario("gc-chaos")
        plan = FaultPlan(5, spec)
        kinds = set()
        for _ in range(50_000):
            kind = plan.next_fault()
            if kind is not None:
                kinds.add(kind)
                plan.record(0, kind, 0, "t", "rejected")
        assert kinds == {FaultKind.FORCE_GC, FaultKind.GC_PERTURB}

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos scenario"):
            get_scenario("does-not-exist")


class TestScheduleReplay:
    def test_same_seed_identical_trace(self):
        bench = all_benchmarks()[0]
        first = run_chaos_schedule(bench, seed=7, scenario="mixed")
        second = run_chaos_schedule(bench, seed=7, scenario="mixed")
        assert first.trace == second.trace
        assert first.to_dict() == second.to_dict()

    def test_replay_across_all_scenarios(self):
        bench = all_benchmarks()[1]
        for name in SCENARIOS:
            if name.startswith("downstream"):
                continue  # service-layer only; no scheduler faults
            a = run_chaos_schedule(bench, seed=31, scenario=name)
            b = run_chaos_schedule(bench, seed=31, scenario=name)
            assert a.to_dict() == b.to_dict(), name


class TestInjectorGuards:
    """The injector must refuse faults that would break soundness by
    construction rather than relying on the tripwire to catch them."""

    def _blocked_runtime(self, rt):
        def main():
            ch = yield MakeChan(0, label="wedge")

            def blocked():
                yield Recv(ch)

            yield Go(blocked, name="blocked")
            yield Sleep(2 * MILLISECOND)

        run_to_end(rt, main)
        victims = [g for g in rt.sched.allgs
                   if g.name == "blocked"
                   and g.status == GStatus.WAITING]
        assert victims
        return victims[0]

    def test_no_spurious_wake_for_detectably_blocked(self, rt):
        g = self._blocked_runtime(rt)
        assert g.is_blocked_detectably
        assert not rt.sched.try_spurious_wakeup(g)
        assert g.status == GStatus.WAITING

    def test_no_panic_delivery_to_reported(self, rt):
        g = self._blocked_runtime(rt)
        rt.gc()
        assert g.reported
        assert not rt.sched.deliver_panic(g, InjectedPanic("refused"))

    def test_panic_self_spares_main(self, rt):
        plan = FaultPlan(3, get_scenario("panic-storm"))
        injector = FaultInjector(rt, plan).install()

        def main():
            for _ in range(200):
                yield Sleep(10_000)

        status = run_to_end(rt, main)
        assert status == "main-exited"
        for record in plan.trace:
            if record.kind == FaultKind.PANIC_SELF \
                    and record.outcome == "injected":
                assert record.target_goid != rt.sched.main_g.goid
        injector.uninstall()

    def test_uninstall_stops_injection(self, rt):
        plan = FaultPlan(3, get_scenario("clock-jitter"))
        injector = FaultInjector(rt, plan).install()
        injector.uninstall()

        def main():
            yield Sleep(MILLISECOND)

        run_to_end(rt, main)
        assert injector.yield_points == 0


class TestCampaigns:
    def test_campaign_200_seeds_mixed_clean(self):
        """The headline soundness-under-chaos guarantee: ≥200 seeded
        schedules across the whole corpus, zero false positives, zero
        invariant violations, idempotent quiescence everywhere."""
        report = run_chaos_campaign(seeds=210, scenario="mixed",
                                    base_seed=0)
        assert len(report.schedules) == 210
        assert report.false_positives == 0, report.format()
        assert report.invariant_violations == 0, report.format()
        assert report.non_idempotent == 0, report.format()
        assert report.clean
        # The campaign must actually have injected faults to mean
        # anything — and plenty of panics, the harshest perturbation.
        assert report.total_injected() > 100
        assert report.injected_by_kind().get(FaultKind.PANIC_SELF, 0) \
            + report.injected_by_kind().get(FaultKind.PANIC_BLOCKED, 0) > 20

    @pytest.mark.parametrize("scenario", ["panic-storm", "gc-chaos",
                                          "clock-jitter",
                                          "reuse-pressure"])
    def test_scenario_campaigns_clean(self, scenario):
        report = run_chaos_campaign(seeds=30, scenario=scenario,
                                    base_seed=4242)
        assert report.clean, report.format()
        assert report.total_injected() > 0

    def test_campaign_covers_whole_corpus(self):
        corpus = all_benchmarks()
        report = run_chaos_campaign(seeds=len(corpus), scenario="mixed",
                                    base_seed=9)
        assert {s.benchmark for s in report.schedules} == \
               {b.name for b in corpus}

    def test_report_json_round_trips(self):
        import json

        report = run_chaos_campaign(seeds=4, scenario="mixed",
                                    base_seed=77, keep_traces=True)
        data = json.loads(report.to_json())
        assert data["schedules_run"] == 4
        assert data["clean"] == report.clean
        assert len(data["schedules"]) == 4
        for sched in data["schedules"]:
            for record in sched["trace"]:
                assert set(record) == {"index", "time_ns", "kind",
                                       "target_goid", "detail", "outcome"}

    def test_detection_still_works_under_chaos(self):
        """Chaos must not make the detector blind: across a campaign the
        known-leaky benchmarks still produce reports and reclaims."""
        report = run_chaos_campaign(seeds=40, scenario="mixed",
                                    base_seed=321)
        assert sum(s.reports for s in report.schedules) > 0
        assert sum(s.reclaimed for s in report.schedules) > 0
