"""Runtime event tracing, in the spirit of ``GODEBUG`` logging.

When enabled on a runtime (``rt.enable_tracing()``), the scheduler and
collector emit structured events — goroutine lifecycle transitions, GC
cycle summaries, deadlock reports — timestamped on the virtual clock.
Useful for debugging programs and for the tests that assert scheduler
behavior without poking at internals.

The backing store is a bounded drop-oldest ring buffer (shared with the
flight recorder in :mod:`repro.telemetry.recorder`): a long-running
service keeps the *recent* history instead of freezing the trace at the
moment the old append-only list filled up.  ``dropped`` counts evicted
events.
"""

from __future__ import annotations

from typing import List, Optional

from repro.runtime.clock import Clock
from repro.telemetry.recorder import RingBuffer

#: Event kinds.
GO_CREATE = "go-create"
GO_PARK = "go-park"
GO_WAKE = "go-wake"
GO_END = "go-end"
GO_RECLAIM = "go-reclaim"
GC_CYCLE = "gc-cycle"
DEADLOCK = "partial-deadlock"


class TraceEvent:
    """One timestamped runtime event."""

    __slots__ = ("t_ns", "kind", "goid", "detail")

    def __init__(self, t_ns: int, kind: str, goid: int, detail: str):
        self.t_ns = t_ns
        self.kind = kind
        self.goid = goid
        self.detail = detail

    def format(self) -> str:
        who = f" g{self.goid}" if self.goid else ""
        detail = f" {self.detail}" if self.detail else ""
        return f"[{self.t_ns:>12d}ns] {self.kind}{who}{detail}"

    def __repr__(self) -> str:
        return f"<{self.format()}>"


class Tracer:
    """Collects :class:`TraceEvent` records in a drop-oldest ring of
    ``capacity`` events."""

    def __init__(self, clock: Clock, capacity: int = 100_000):
        self.clock = clock
        self.capacity = capacity
        self._ring = RingBuffer(capacity)

    def emit(self, kind: str, goid: int = 0, detail: str = "") -> None:
        self._ring.append(TraceEvent(self.clock.now, kind, goid, detail))

    @property
    def events(self) -> List[TraceEvent]:
        """Buffered events, oldest first."""
        return list(self._ring)

    @property
    def dropped(self) -> int:
        return self._ring.dropped

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self._ring if e.kind == kind]

    def for_goroutine(self, goid: int) -> List[TraceEvent]:
        return [e for e in self._ring if e.goid == goid]

    def format(self, limit: Optional[int] = None) -> str:
        events = list(self._ring) if limit is None else self._ring.last(limit)
        lines = [event.format() for event in events]
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped (capacity)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._ring)
