"""AST abstract interpreter: goroutine bodies -> concurrency ops.

The extractor symbolically executes goroutine-body *generator functions*
(`def body(): ... yield Send(ch, v) ...`) without running the program:

- every ``yield``ed concurrency instruction is lowered to an
  :class:`~repro.staticcheck.model.Op` keyed by the instruction's stable
  ``MNEMONIC``;
- ``yield from helper(...)`` delegation is followed inline (same
  goroutine body), with recursion/depth guards;
- ``yield Go(fn, *args)`` spawns a child :class:`BodyCtx` and the
  spawned function is interpreted with the actual argument values, so
  channels flow through spawn sites (provenance: make -> go -> op);
- channel/mutex/waitgroup values are tracked through tuples, lists,
  dict/struct fields with constant keys, closure cells, defaults, and
  module globals;
- loops and branches are abstracted by multiplicity (``1``, ``n``,
  :data:`~repro.staticcheck.model.MANY`) and a conditional depth;
- anything the analysis cannot resolve soundly (a yield of an
  unresolved value, a channel picked by a dynamic subscript, an
  unresolvable delegation target) is recorded as a :class:`GiveUp`
  instead of being silently skipped.

Two front ends: :func:`extract_callable` (a live function object —
closure cells and ``__defaults__`` are folded as constants, which is
what distinguishes e.g. the leaky and fixed ``range_no_close``
variants) and :func:`extract_file` (a source file; top-level *root*
generator functions are analyzed, where a root is a generator not
referenced by any other candidate in the same file).
"""

from __future__ import annotations

import ast
import builtins
import inspect
import os
import textwrap
import types
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.instructions import instruction_classes
from repro.staticcheck.model import (
    MANY,
    BodyCtx,
    BoxVal,
    CaseVal,
    ChanVal,
    CondVal,
    ConstVal,
    Extraction,
    FuncVal,
    GiveUp,
    GoroutineVal,
    InstrVal,
    ListVal,
    MapVal,
    Mult,
    MutexVal,
    ObjVal,
    OnceVal,
    Op,
    RangeVal,
    SemaVal,
    Site,
    TupleVal,
    UnknownVal,
    Val,
    WgVal,
)

_INSTRUCTION_CLASSES = instruction_classes()
_MNEMONIC_BY_NAME = {
    name: getattr(cls, "MNEMONIC", None)
    for name, cls in _INSTRUCTION_CLASSES.items()
}
_HEAP_CTORS = ("Struct", "GoMap", "Slice", "Box", "Blob")

_MAX_DELEGATION_DEPTH = 24
_MAX_BODIES = 200
_MAX_LIST_UNROLL = 8

_MISSING = object()


class ClassVal(Val):
    """An instruction class / select-case class / heap constructor."""

    __slots__ = ("name", "kind")

    def __init__(self, name: str, kind: str):
        self.name = name      # "Send", "RecvCase", "Struct", ...
        self.kind = kind      # "instr" | "case" | "heap"

    def __repr__(self) -> str:
        return f"<class {self.name}>"


class ModuleVal(Val):
    __slots__ = ("module",)

    def __init__(self, module: types.ModuleType):
        self.module = module


def _relpath(path: str) -> str:
    try:
        rel = os.path.relpath(path)
    except ValueError:  # different drive on win32
        return path
    return path if rel.startswith("..") else rel


# ---------------------------------------------------------------------------
# Environments
# ---------------------------------------------------------------------------


class Env:
    """Lexically-chained scope.  The root may carry a ``resolver``
    callable mapping a name to a Val (module globals, closure cells)."""

    __slots__ = ("vars", "parent", "resolver")

    def __init__(self, parent: Optional["Env"] = None,
                 resolver: Optional[Callable[[str], Optional[Val]]] = None):
        self.vars: Dict[str, Val] = {}
        self.parent = parent
        self.resolver = resolver

    def lookup(self, name: str) -> Val:
        env: Optional[Env] = self
        while env is not None:
            if name in env.vars:
                return env.vars[name]
            if env.resolver is not None:
                found = env.resolver(name)
                if found is not None:
                    env.vars[name] = found
                    return found
            env = env.parent
        return UnknownVal(f"unresolved-name:{name}")

    def bind(self, name: str, val: Val) -> None:
        self.vars[name] = val


def python_to_val(obj: Any, loader: "_FunctionLoader") -> Val:
    """Convert a live Python object (global / closure cell / default)
    into an abstract value."""
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return ConstVal(obj)
    if isinstance(obj, type):
        mn = _MNEMONIC_BY_NAME.get(obj.__name__)
        cls = _INSTRUCTION_CLASSES.get(obj.__name__)
        if cls is obj:
            if obj.__name__ in ("SendCase", "RecvCase"):
                return ClassVal(obj.__name__, "case")
            if mn is not None:
                return ClassVal(obj.__name__, "instr")
        if obj.__name__ in _HEAP_CTORS:
            return ClassVal(obj.__name__, "heap")
        return UnknownVal(f"class:{obj.__name__}")
    if isinstance(obj, types.FunctionType):
        fv = loader.load(obj)
        return fv if fv is not None else UnknownVal("unloadable-function")
    if isinstance(obj, types.ModuleType):
        return ModuleVal(obj)
    if isinstance(obj, (list, tuple)):
        elems = [python_to_val(item, loader) for item in obj]
        if all(isinstance(e, (ConstVal, ClassVal, FuncVal)) for e in elems):
            if isinstance(obj, tuple):
                return TupleVal(elems)
            return ListVal(elems, exact=True)
        return UnknownVal("mixed-sequence")
    if isinstance(obj, dict):
        entries = {}
        for key, item in obj.items():
            if not isinstance(key, (str, int)):
                return UnknownVal("non-const-dict")
            entries[key] = python_to_val(item, loader)
        return MapVal(entries, exact=True)
    return UnknownVal(f"object:{type(obj).__name__}")


class _FunctionLoader:
    """Loads live function objects into FuncVals (source + env), with a
    cache keyed by code object."""

    def __init__(self):
        self._cache: Dict[Any, Optional[FuncVal]] = {}

    def load(self, fn: types.FunctionType) -> Optional[FuncVal]:
        key = fn.__code__
        if key in self._cache:
            return self._cache[key]
        self._cache[key] = None  # recursion guard while loading
        fv = self._load(fn)
        self._cache[key] = fv
        return fv

    def _load(self, fn: types.FunctionType) -> Optional[FuncVal]:
        try:
            file = inspect.getsourcefile(fn) or "<unknown>"
            lines, start = inspect.getsourcelines(fn)
        except (OSError, TypeError):
            return None
        src = textwrap.dedent("".join(lines))
        try:
            tree = ast.parse(src)
        except SyntaxError:
            return None
        node = next((n for n in tree.body
                     if isinstance(n, (ast.FunctionDef,
                                       ast.AsyncFunctionDef))), None)
        if node is None:
            return None
        # Re-anchor every node at its real line in the real file.  This
        # accounts for decorators and nesting in one step (getsourcelines
        # returns the decorator-inclusive start line), so diagnostics
        # never drift.
        ast.increment_lineno(node, start - 1)

        loader = self
        fn_globals = fn.__globals__

        def resolver(name: str) -> Optional[Val]:
            if name in fn_globals:
                return python_to_val(fn_globals[name], loader)
            return None

        env = Env(resolver=resolver)
        # Closure cells become pre-bound constants: this is what lets the
        # analyzer distinguish builder variants that share one AST but
        # differ in captured flags (skip_wait, feed_head, length, ...).
        if fn.__code__.co_freevars and fn.__closure__:
            for name, cell in zip(fn.__code__.co_freevars, fn.__closure__):
                try:
                    value = cell.cell_contents
                except ValueError:
                    continue
                env.bind(name, python_to_val(value, loader))

        defaults: Dict[str, Val] = {}
        if fn.__defaults__:
            params = [a.arg for a in node.args.args]
            for name, value in zip(params[-len(fn.__defaults__):],
                                   fn.__defaults__):
                defaults[name] = python_to_val(value, loader)
        if fn.__kwdefaults__:
            for name, value in fn.__kwdefaults__.items():
                defaults[name] = python_to_val(value, loader)

        return FuncVal(node, env, fn.__qualname__, _relpath(file),
                       defaults=defaults,
                       is_generator=_is_generator_node(node),
                       code_key=fn.__code__)


def _is_generator_node(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            owner = _owning_function(node, child)
            if owner is node:
                return True
    return False


def _owning_function(root: ast.AST, target: ast.AST) -> Optional[ast.AST]:
    """The innermost FunctionDef containing *target* (linear scan)."""
    owner = None

    def visit(node, current):
        nonlocal owner
        if node is target:
            owner = current
            return True
        nxt = node if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ) else current
        for child in ast.iter_child_nodes(node):
            if visit(child, nxt):
                return True
        return False

    visit(root, root)
    return owner


def _contains_direct_yield(node: ast.AST) -> bool:
    """True when *node* (a FunctionDef) has a yield in its own frame."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(child))
    return False


def _loop_has_break(body: Sequence[ast.stmt]) -> bool:
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Break):
            return True
        if isinstance(node, (ast.While, ast.For, ast.FunctionDef,
                             ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


# ---------------------------------------------------------------------------
# Interpreter state
# ---------------------------------------------------------------------------


class _State:
    __slots__ = ("body", "env", "file", "cond_depth", "mult", "held",
                 "active", "depth")

    def __init__(self, body: BodyCtx, env: Env, file: str,
                 cond_depth: int = 0, mult: Mult = 1,
                 held: Optional[List[Tuple[int, str]]] = None,
                 active: Tuple[Any, ...] = (), depth: int = 0):
        self.body = body
        self.env = env
        self.file = file
        self.cond_depth = cond_depth
        self.mult = mult
        self.held = held if held is not None else []
        self.active = active      # delegation chain (cycle guard)
        self.depth = depth

    def child(self, **over) -> "_State":
        kw = {
            "body": self.body, "env": self.env, "file": self.file,
            "cond_depth": self.cond_depth, "mult": self.mult,
            "held": self.held, "active": self.active, "depth": self.depth,
        }
        kw.update(over)
        return _State(**kw)


# Block execution statuses.
_FALL, _RETURN, _BREAK, _CONTINUE, _RAISE = (
    "fall", "return", "break", "continue", "raise")
_TERMINATORS = (_RETURN, _RAISE)


class Extractor:
    """Symbolic executor for one entry function."""

    def __init__(self, entry_name: str, file: str, line: int):
        self.ex = Extraction(entry_name, file, line)
        self._uid = 0
        self._seq = 0
        self.loader = _FunctionLoader()

    # -- id helpers -----------------------------------------------------

    def _next_uid(self) -> int:
        self._uid += 1
        return self._uid

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _site(self, st: _State, node: ast.AST) -> Site:
        return Site(st.file, getattr(node, "lineno", 0))

    def give_up(self, st: _State, node: ast.AST, reason: str,
                detail: str = "") -> UnknownVal:
        self.ex.giveups.append(GiveUp(self._site(st, node), reason, detail))
        return UnknownVal(reason)

    def _record(self, st: _State, node: ast.AST, mnemonic: str,
                operand: Optional[Val] = None, value: Optional[Val] = None,
                via_select: bool = False, select_alternatives: bool = False,
                extra: Optional[Dict[str, Any]] = None,
                site: Optional[Site] = None) -> Op:
        op = Op(mnemonic, site or self._site(st, node), st.body,
                self._next_seq(), st.cond_depth, st.mult,
                operand=operand, value=value, via_select=via_select,
                select_alternatives=select_alternatives, extra=extra,
                held=tuple(st.held))
        self.ex.ops.append(op)
        return op

    # -- entry points ---------------------------------------------------

    def run_entry(self, fv: FuncVal, args: Optional[List[Val]] = None
                  ) -> Extraction:
        body = BodyCtx(0, fv.qualname)
        self.ex.bodies.append(body)
        st = _State(body, Env(parent=fv.env), fv.file)
        self._bind_params(st, fv, args or [])
        _, ret = self._exec_block(st, fv.node.body)
        self.ex.returned = ret
        self._mark_escapes(ret, "returned")
        return self.ex

    def _bind_params(self, st: _State, fv: FuncVal,
                     args: List[Val]) -> None:
        params = [a.arg for a in fv.node.args.args]
        for i, name in enumerate(params):
            if i < len(args):
                st.env.bind(name, args[i])
            elif name in fv.defaults:
                st.env.bind(name, fv.defaults[name])
            else:
                st.env.bind(name, UnknownVal(f"param:{name}"))
        vararg = fv.node.args.vararg
        if vararg is not None:
            st.env.bind(vararg.arg,
                        TupleVal(args[len(params):]) if len(args) > len(params)
                        else TupleVal([]))
        for kwonly in fv.node.args.kwonlyargs:
            name = kwonly.arg
            if name not in st.env.vars:
                st.env.bind(name, fv.defaults.get(
                    name, UnknownVal(f"param:{name}")))

    def _mark_escapes(self, val: Optional[Val], reason: str,
                      depth: int = 0) -> None:
        if val is None or depth > 3:
            return
        if isinstance(val, ChanVal):
            if reason not in val.escapes:
                val.escapes.append(reason)
        elif isinstance(val, (TupleVal, ListVal)):
            for elem in val.elems:
                self._mark_escapes(elem, reason, depth + 1)
        elif isinstance(val, MapVal):
            for elem in val.entries.values():
                self._mark_escapes(elem, reason, depth + 1)
        elif isinstance(val, BoxVal):
            self._mark_escapes(val.value, reason, depth + 1)

    # -- statements -----------------------------------------------------

    def _exec_block(self, st: _State, stmts: Sequence[ast.stmt]
                    ) -> Tuple[str, Optional[Val]]:
        """Returns (status, return-value)."""
        i = 0
        while i < len(stmts):
            stmt = stmts[i]
            status, ret = self._exec_stmt(st, stmt)
            if status == "guard-rest":
                # One branch of an `if` terminated: the remainder of this
                # block only runs when the other branch was taken.
                rest = st.child(cond_depth=st.cond_depth + 1)
                status2, ret2 = self._exec_block(rest, stmts[i + 1:])
                return status2 if status2 != _FALL else _FALL, ret2
            if status != _FALL:
                return status, ret
            i += 1
        return _FALL, None

    def _exec_stmt(self, st: _State, stmt: ast.stmt
                   ) -> Tuple[str, Optional[Val]]:
        if isinstance(stmt, ast.Expr):
            self.eval(st, stmt.value)
            return _FALL, None
        if isinstance(stmt, ast.Assign):
            value = self.eval(st, stmt.value)
            for target in stmt.targets:
                self._assign(st, target, value)
            return _FALL, None
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(st, stmt.target, self.eval(st, stmt.value))
            return _FALL, None
        if isinstance(stmt, ast.AugAssign):
            self.eval(st, stmt.value)
            if isinstance(stmt.target, ast.Name):
                st.env.bind(stmt.target.id, UnknownVal("augmented"))
            elif isinstance(stmt.target, ast.Subscript):
                self.eval(st, stmt.target.value)
            return _FALL, None
        if isinstance(stmt, ast.Return):
            value = self.eval(st, stmt.value) if stmt.value else ConstVal(None)
            return _RETURN, value
        if isinstance(stmt, ast.If):
            return self._exec_if(st, stmt)
        if isinstance(stmt, ast.While):
            return self._exec_while(st, stmt)
        if isinstance(stmt, ast.For):
            return self._exec_for(st, stmt)
        if isinstance(stmt, ast.Try):
            return self._exec_try(st, stmt)
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(st, item.context_expr)
            return self._exec_block(st, stmt.body)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = self._eval_defaults(st, stmt)
            st.env.bind(stmt.name, FuncVal(
                stmt, st.env, stmt.name, st.file, defaults=defaults,
                is_generator=_contains_direct_yield(stmt),
                code_key=stmt))
            return _FALL, None
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(st, stmt.exc)
            return _RAISE, None
        if isinstance(stmt, ast.Break):
            return _BREAK, None
        if isinstance(stmt, ast.Continue):
            return _CONTINUE, None
        if isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal,
                             ast.Import, ast.ImportFrom, ast.Assert,
                             ast.Delete, ast.ClassDef)):
            return _FALL, None
        # Unknown statement kind: evaluate child expressions for effects.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.eval(st, child)
        return _FALL, None

    def _eval_defaults(self, st: _State,
                       node: ast.FunctionDef) -> Dict[str, Val]:
        """Default args are evaluated at def time — this captures the
        `def watcher(ch=stream)` loop idiom."""
        defaults: Dict[str, Val] = {}
        params = [a.arg for a in node.args.args]
        if node.args.defaults:
            names = params[-len(node.args.defaults):]
            for name, expr in zip(names, node.args.defaults):
                defaults[name] = self.eval(st, expr)
        for kwonly, expr in zip(node.args.kwonlyargs, node.args.kw_defaults):
            if expr is not None:
                defaults[kwonly.arg] = self.eval(st, expr)
        return defaults

    def _assign(self, st: _State, target: ast.expr, value: Val) -> None:
        if isinstance(target, ast.Name):
            st.env.bind(target.id, value)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            elems: List[Val]
            if isinstance(value, (TupleVal, ListVal)) and \
                    len(value.elems) == len(target.elts):
                elems = value.elems
            else:
                elems = [UnknownVal("unpack")] * len(target.elts)
            for sub, elem in zip(target.elts, elems):
                if isinstance(sub, ast.Starred):
                    self._assign(st, sub.value, ListVal(exact=False))
                else:
                    self._assign(st, sub, elem)
            return
        if isinstance(target, ast.Subscript):
            container = self.eval(st, target.value)
            key = self.eval(st, target.slice)
            if isinstance(container, MapVal) and isinstance(key, ConstVal):
                container.entries[key.value] = value
            elif isinstance(container, ListVal) and \
                    isinstance(key, ConstVal) and \
                    isinstance(key.value, int) and \
                    0 <= key.value < len(container.elems):
                container.elems[key.value] = value
            elif isinstance(container, (ListVal, MapVal)):
                container.exact = False
            return
        if isinstance(target, ast.Attribute):
            self.eval(st, target.value)
            self._mark_escapes(value, "stored-attr")
            return

    # -- control flow ---------------------------------------------------

    def _exec_if(self, st: _State, stmt: ast.If
                 ) -> Tuple[str, Optional[Val]]:
        cond = self.eval(st, stmt.test)
        if isinstance(cond, ConstVal):
            branch = stmt.body if cond.value else stmt.orelse
            if branch:
                return self._exec_block(st, branch)
            return _FALL, None

        base_vars = dict(st.env.vars)
        sub = st.child(cond_depth=st.cond_depth + 1)

        st.env.vars = dict(base_vars)
        status_a, ret_a = self._exec_block(sub, stmt.body)
        vars_a = st.env.vars

        st.env.vars = dict(base_vars)
        status_b, ret_b = (self._exec_block(sub, stmt.orelse)
                           if stmt.orelse else (_FALL, None))
        vars_b = st.env.vars

        st.env.vars = self._merge_vars(base_vars, vars_a, vars_b)

        a_ends = status_a in _TERMINATORS or status_a == _BREAK
        b_ends = status_b in _TERMINATORS or status_b == _BREAK
        if status_a in _TERMINATORS and status_b in _TERMINATORS:
            return _RETURN, ret_a or ret_b
        if a_ends != b_ends:
            # `if flag: return` — everything after runs conditionally.
            return "guard-rest", None
        return _FALL, None

    @staticmethod
    def _merge_vars(base: Dict[str, Val], a: Dict[str, Val],
                    b: Dict[str, Val]) -> Dict[str, Val]:
        merged = dict(base)
        for name in set(a) | set(b):
            va = a.get(name, _MISSING)
            vb = b.get(name, _MISSING)
            if va is vb:
                merged[name] = va  # type: ignore[assignment]
            elif va is _MISSING:
                merged[name] = vb  # type: ignore[assignment]
            elif vb is _MISSING:
                merged[name] = va  # type: ignore[assignment]
            elif (isinstance(va, ChanVal) and isinstance(vb, ChanVal)
                    and va.uid == vb.uid):
                merged[name] = va
            else:
                merged[name] = UnknownVal("branch-divergent")
        return merged

    def _exec_while(self, st: _State, stmt: ast.While
                    ) -> Tuple[str, Optional[Val]]:
        cond = self.eval(st, stmt.test)
        infinite = isinstance(cond, ConstVal) and bool(cond.value)
        if isinstance(cond, ConstVal) and not cond.value:
            return _FALL, None
        sub = st.child(
            mult=MANY,
            cond_depth=st.cond_depth + (0 if infinite else 1))
        status, ret = self._exec_block(sub, stmt.body)
        if status in _TERMINATORS:
            return status, ret
        if infinite and not _loop_has_break(stmt.body):
            # `while True` with no break: nothing after the loop runs.
            return _RETURN, None
        return _FALL, None

    def _exec_for(self, st: _State, stmt: ast.For
                  ) -> Tuple[str, Optional[Val]]:
        iterable = self.eval(st, stmt.iter)
        items: Optional[List[Val]] = None
        count: Optional[Mult] = None

        if isinstance(iterable, RangeVal):
            count = iterable.count if iterable.count is not None else MANY
        elif isinstance(iterable, (ListVal, TupleVal)):
            exact = getattr(iterable, "exact", True)
            if exact and len(iterable.elems) <= _MAX_LIST_UNROLL:
                items = list(iterable.elems)
                count = len(items)
            else:
                count = len(iterable.elems) if exact else MANY
        elif isinstance(iterable, ConstVal) and \
                isinstance(iterable.value, (list, tuple, str, range)):
            count = len(iterable.value)
        else:
            count = MANY

        if count == 0 and items is None:
            return _FALL, None
        if items == []:
            return _FALL, None

        known_nonempty = (items is not None and len(items) > 0) or (
            isinstance(count, int) and count > 0)

        if items is not None and any(
                not isinstance(e, ConstVal) for e in items):
            # Bounded unroll: each element gets its own iteration so
            # distinct channels in a literal list each see their ops.
            for elem in items:
                sub = st.child()
                self._assign(sub, stmt.target, elem)
                status, ret = self._exec_block(sub, stmt.body)
                if status in _TERMINATORS:
                    return status, ret
                if status == _BREAK:
                    break
            if stmt.orelse:
                return self._exec_block(st, stmt.orelse)
            return _FALL, None

        mult = count if count is not None else MANY
        new_mult = st.mult * mult if mult != MANY else MANY
        sub = st.child(
            mult=new_mult,
            cond_depth=st.cond_depth + (0 if known_nonempty else 1))
        if items:
            self._assign(sub, stmt.target, items[0])
        else:
            self._assign(sub, stmt.target, UnknownVal("loop-var"))
        status, ret = self._exec_block(sub, stmt.body)
        if status in _TERMINATORS:
            return status, ret
        if stmt.orelse:
            return self._exec_block(st, stmt.orelse)
        return _FALL, None

    def _exec_try(self, st: _State, stmt: ast.Try
                  ) -> Tuple[str, Optional[Val]]:
        status, ret = self._exec_block(st, stmt.body)
        handler_st = st.child(cond_depth=st.cond_depth + 1)
        for handler in stmt.handlers:
            if handler.name:
                handler_st.env.bind(handler.name, UnknownVal("exception"))
            self._exec_block(handler_st, handler.body)
        if status == _FALL and stmt.orelse:
            status, ret = self._exec_block(st, stmt.orelse)
        if stmt.finalbody:
            # finally runs unconditionally — this is the deferred-send
            # path in Listing 7's SendEmail.
            fstatus, fret = self._exec_block(st, stmt.finalbody)
            if fstatus != _FALL:
                return fstatus, fret
        if status == _RAISE and stmt.handlers:
            return _FALL, None
        return status, ret

    # -- expressions ----------------------------------------------------

    def eval(self, st: _State, node: Optional[ast.expr]) -> Val:
        if node is None:
            return ConstVal(None)
        if isinstance(node, ast.Constant):
            return ConstVal(node.value)
        if isinstance(node, ast.Name):
            return st.env.lookup(node.id)
        if isinstance(node, ast.Yield):
            return self._eval_yield(st, node)
        if isinstance(node, ast.YieldFrom):
            return self._eval_yield_from(st, node)
        if isinstance(node, ast.Call):
            return self._eval_call(st, node)
        if isinstance(node, ast.Tuple):
            return TupleVal([self.eval(st, e) for e in node.elts])
        if isinstance(node, ast.List):
            return ListVal([self.eval(st, e) for e in node.elts], exact=True)
        if isinstance(node, ast.Dict):
            entries: Dict[Any, Val] = {}
            exact = True
            for key_node, val_node in zip(node.keys, node.values):
                val = self.eval(st, val_node)
                if key_node is None:
                    exact = False
                    continue
                key = self.eval(st, key_node)
                if isinstance(key, ConstVal) and \
                        isinstance(key.value, (str, int)):
                    entries[key.value] = val
                else:
                    exact = False
            return MapVal(entries, exact=exact)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(st, node)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(st, node)
        if isinstance(node, ast.Compare):
            return self._eval_compare(st, node)
        if isinstance(node, ast.BoolOp):
            return self._eval_boolop(st, node)
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(st, node.operand)
            if isinstance(operand, ConstVal):
                try:
                    if isinstance(node.op, ast.Not):
                        return ConstVal(not operand.value)
                    if isinstance(node.op, ast.USub):
                        return ConstVal(-operand.value)
                    if isinstance(node.op, ast.UAdd):
                        return ConstVal(+operand.value)
                except Exception:
                    return UnknownVal("unary")
            return UnknownVal("unary")
        if isinstance(node, ast.BinOp):
            left = self.eval(st, node.left)
            right = self.eval(st, node.right)
            if isinstance(left, ConstVal) and isinstance(right, ConstVal):
                try:
                    return ConstVal(_BINOPS[type(node.op)](
                        left.value, right.value))
                except Exception:
                    return UnknownVal("binop")
            return UnknownVal("binop")
        if isinstance(node, ast.IfExp):
            cond = self.eval(st, node.test)
            if isinstance(cond, ConstVal):
                return self.eval(st, node.body if cond.value else node.orelse)
            a = self.eval(st, node.body)
            b = self.eval(st, node.orelse)
            return a if a is b else UnknownVal("ifexp")
        if isinstance(node, ast.JoinedStr):
            parts = []
            for piece in node.values:
                val = self.eval(st, piece.value) if isinstance(
                    piece, ast.FormattedValue) else self.eval(st, piece)
                if not isinstance(val, ConstVal):
                    return UnknownVal("fstring")
                parts.append(str(val.value))
            return ConstVal("".join(parts))
        if isinstance(node, ast.Starred):
            return self.eval(st, node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            return UnknownVal("comprehension")
        if isinstance(node, ast.Lambda):
            return UnknownVal("lambda")
        # Fallback: evaluate children for yield side effects.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(st, child)
        return UnknownVal(type(node).__name__)

    def _eval_compare(self, st: _State, node: ast.Compare) -> Val:
        left = self.eval(st, node.left)
        vals = [self.eval(st, c) for c in node.comparators]
        if isinstance(left, ConstVal) and all(
                isinstance(v, ConstVal) for v in vals):
            try:
                cur = left.value
                for op, rhs in zip(node.ops, vals):
                    if not _CMPOPS[type(op)](cur, rhs.value):  # type: ignore
                        return ConstVal(False)
                    cur = rhs.value  # type: ignore[union-attr]
                return ConstVal(True)
            except Exception:
                return UnknownVal("compare")
        return UnknownVal("compare")

    def _eval_boolop(self, st: _State, node: ast.BoolOp) -> Val:
        is_and = isinstance(node.op, ast.And)
        last: Val = ConstVal(is_and)
        for expr in node.values:
            val = self.eval(st, expr)
            if isinstance(val, ConstVal):
                if is_and and not val.value:
                    return val
                if not is_and and val.value:
                    return val
                last = val
            else:
                last = UnknownVal("boolop")
        return last

    def _eval_subscript(self, st: _State, node: ast.Subscript) -> Val:
        container = self.eval(st, node.value)
        key = self.eval(st, node.slice)
        if isinstance(container, MapVal):
            if isinstance(key, ConstVal):
                if key.value in container.entries:
                    return container.entries[key.value]
                return UnknownVal("missing-key")
            if self._holds_sync(container):
                self._mark_escapes(container, "dynamic-alias")
                return self.give_up(st, node, "dynamic-channel-choice",
                                    "map subscript with non-constant key")
            return UnknownVal("subscript")
        if isinstance(container, (ListVal, TupleVal)):
            if isinstance(key, ConstVal) and isinstance(key.value, int):
                if -len(container.elems) <= key.value < len(container.elems):
                    return container.elems[key.value]
                if container.elems and not getattr(container, "exact", True):
                    # Summarized loop-built list: every element is the
                    # same abstract value.
                    return container.elems[0]
                return UnknownVal("index-range")
            if self._holds_sync(container):
                # The designated soundly-give-up case: a channel chosen
                # by a dynamic index cannot be tracked statically.  The
                # container's channels become dynamically aliased, so
                # definite-leak rules must stand down on them.
                self._mark_escapes(container, "dynamic-alias")
                return self.give_up(st, node, "dynamic-channel-choice",
                                    "sequence subscript with non-constant "
                                    "index over channels")
            return UnknownVal("subscript")
        return UnknownVal("subscript")

    @staticmethod
    def _holds_sync(container: Val) -> bool:
        elems: List[Val] = []
        if isinstance(container, (ListVal, TupleVal)):
            elems = container.elems
        elif isinstance(container, MapVal):
            elems = list(container.entries.values())
        return any(isinstance(e, (ChanVal, MutexVal, WgVal, CondVal,
                                  SemaVal)) for e in elems)

    def _eval_attribute(self, st: _State, node: ast.Attribute) -> Val:
        base = self.eval(st, node.value)
        if isinstance(base, ModuleVal):
            if hasattr(base.module, node.attr):
                return python_to_val(getattr(base.module, node.attr),
                                     self.loader)
            return UnknownVal(f"module-attr:{node.attr}")
        if isinstance(base, BoxVal) and node.attr == "value":
            return base.value
        return UnknownVal(f"attr:{node.attr}")

    # -- calls ----------------------------------------------------------

    def _eval_call(self, st: _State, node: ast.Call) -> Val:
        # Method calls on tracked containers (list.append and friends).
        if isinstance(node.func, ast.Attribute):
            base = self.eval(st, node.func.value)
            args = [self.eval(st, a) for a in node.args]
            if isinstance(base, ListVal):
                if node.func.attr == "append" and len(args) == 1:
                    base.elems.append(args[0])
                    if st.mult != 1 or st.cond_depth > 0:
                        base.exact = False
                    return ConstVal(None)
                if node.func.attr == "extend":
                    base.exact = False
                    for arg in args:
                        if isinstance(arg, (ListVal, TupleVal)):
                            base.elems.extend(arg.elems)
                    return ConstVal(None)
                if node.func.attr == "pop":
                    base.exact = False
                    return (base.elems[-1] if base.elems
                            else UnknownVal("pop"))
                return UnknownVal(f"list-method:{node.func.attr}")
            if isinstance(base, MapVal):
                if node.func.attr == "get" and args:
                    key = args[0]
                    if isinstance(key, ConstVal) and \
                            key.value in base.entries:
                        return base.entries[key.value]
                    return UnknownVal("map-get")
                if node.func.attr in ("keys", "values", "items"):
                    return UnknownVal("map-view")
                return UnknownVal(f"map-method:{node.func.attr}")
            if isinstance(base, ModuleVal):
                target = self._eval_attribute(st, node.func)
                return self._call_val(st, node, target, args,
                                      self._eval_kwargs(st, node))
            return UnknownVal("method")

        callee = self.eval(st, node.func)
        args = [self.eval(st, a) for a in node.args]
        kwargs = self._eval_kwargs(st, node)

        if isinstance(node.func, ast.Name):
            folded = self._eval_builtin(node.func.id, args)
            if folded is not None:
                return folded
        return self._call_val(st, node, callee, args, kwargs)

    def _eval_kwargs(self, st: _State, node: ast.Call) -> Dict[str, Val]:
        kwargs: Dict[str, Val] = {}
        for kw in node.keywords:
            if kw.arg is not None:
                kwargs[kw.arg] = self.eval(st, kw.value)
            else:
                self.eval(st, kw.value)
        return kwargs

    @staticmethod
    def _eval_builtin(name: str, args: List[Val]) -> Optional[Val]:
        consts = [a.value for a in args if isinstance(a, ConstVal)]
        all_const = len(consts) == len(args)
        if name == "range":
            if all_const and args:
                try:
                    return RangeVal(len(range(*consts)))
                except Exception:
                    return RangeVal(None)
            return RangeVal(None)
        if name == "len" and len(args) == 1:
            arg = args[0]
            if isinstance(arg, (ListVal, TupleVal)) and \
                    getattr(arg, "exact", True):
                return ConstVal(len(arg.elems))
            if isinstance(arg, ConstVal):
                try:
                    return ConstVal(len(arg.value))
                except Exception:
                    return UnknownVal("len")
            return UnknownVal("len")
        if name in ("min", "max", "abs", "int", "str", "bool", "float") \
                and all_const and args:
            try:
                return ConstVal(getattr(builtins, name)(*consts))
            except Exception:
                return UnknownVal(name)
        if name == "list" and len(args) == 1 and \
                isinstance(args[0], (ListVal, TupleVal)):
            src = args[0]
            return ListVal(list(src.elems), exact=getattr(src, "exact", True))
        if name == "enumerate" and len(args) == 1 and \
                isinstance(args[0], (ListVal, TupleVal)):
            src = args[0]
            return ListVal(
                [TupleVal([ConstVal(i), e]) for i, e in enumerate(src.elems)],
                exact=getattr(src, "exact", True))
        if name == "print":
            return ConstVal(None)
        return None

    def _call_val(self, st: _State, node: ast.Call, callee: Val,
                  args: List[Val], kwargs: Dict[str, Val]) -> Val:
        site = self._site(st, node)
        if isinstance(callee, ClassVal):
            if callee.kind == "case":
                kind = "send" if callee.name == "SendCase" else "recv"
                chan = args[0] if args else kwargs.get(
                    "channel", UnknownVal("case"))
                return CaseVal(kind, chan, site)
            if callee.kind == "heap":
                if callee.name in ("Struct", "GoMap"):
                    entries: Dict[Any, Val] = dict(kwargs)
                    if args and isinstance(args[0], MapVal):
                        entries.update(args[0].entries)
                    return MapVal(entries, exact=True)
                if callee.name == "Slice":
                    if args and isinstance(args[0], (ListVal, TupleVal)):
                        src = args[0]
                        return ListVal(list(src.elems),
                                       exact=getattr(src, "exact", True))
                    return ListVal(exact=not args)
                if callee.name == "Box":
                    return BoxVal(args[0] if args else ConstVal(None))
                return ObjVal(callee.name.lower())
            mnemonic = _MNEMONIC_BY_NAME.get(callee.name) or "instruction"
            return InstrVal(mnemonic, args, kwargs, site)
        if isinstance(callee, FuncVal):
            if callee.is_generator:
                # Calling a generator function only builds the generator;
                # execution happens at `yield from` / `Go`.
                return UnknownVal("generator-object")
            return self._inline_call(st, node, callee, args, kwargs)
        if isinstance(callee, UnknownVal):
            for arg in list(args) + list(kwargs.values()):
                self._mark_escapes(arg, "passed-unknown")
            return UnknownVal("call-unresolved")
        return UnknownVal("call")

    def _inline_call(self, st: _State, node: ast.Call, fv: FuncVal,
                     args: List[Val], kwargs: Dict[str, Val]) -> Val:
        """Inline a plain (non-generator) helper, e.g. one that builds
        and returns an instruction."""
        key = fv.code_key or id(fv.node)
        if key in st.active or st.depth >= _MAX_DELEGATION_DEPTH:
            return self.give_up(st, node, "recursive-call", fv.qualname)
        sub = st.child(env=Env(parent=fv.env), file=fv.file,
                       active=st.active + (key,), depth=st.depth + 1)
        self._bind_params(sub, fv, args)
        for name, val in kwargs.items():
            sub.env.bind(name, val)
        status, ret = self._exec_block(sub, fv.node.body)
        return ret if ret is not None else ConstVal(None)

    # -- yields ---------------------------------------------------------

    def _eval_yield(self, st: _State, node: ast.Yield) -> Val:
        if node.value is None:
            return ConstVal(None)
        instr = self.eval(st, node.value)
        if isinstance(instr, InstrVal):
            return self._lower(st, node, instr)
        return self.give_up(st, node, "unresolved-yield",
                            f"yield of {type(instr).__name__}")

    def _eval_yield_from(self, st: _State, node: ast.YieldFrom) -> Val:
        target: Optional[FuncVal] = None
        args: List[Val] = []
        kwargs: Dict[str, Val] = {}
        if isinstance(node.value, ast.Call):
            callee = self.eval(st, node.value.func)
            args = [self.eval(st, a) for a in node.value.args]
            kwargs = self._eval_kwargs(st, node.value)
            if isinstance(callee, FuncVal):
                target = callee
        else:
            direct = self.eval(st, node.value)
            if isinstance(direct, FuncVal):
                target = direct
        if target is None:
            for arg in list(args) + list(kwargs.values()):
                self._mark_escapes(arg, "passed-unknown")
            return self.give_up(st, node, "unresolved-delegation",
                                ast.unparse(node.value)[:60]
                                if hasattr(ast, "unparse") else "")
        key = target.code_key or id(target.node)
        if key in st.active or st.depth >= _MAX_DELEGATION_DEPTH:
            return self.give_up(st, node, "recursive-delegation",
                                target.qualname)
        # Delegation stays in the SAME goroutine body: same ctx, same
        # held-lock stack, fresh lexical env.
        sub = st.child(env=Env(parent=target.env), file=target.file,
                       active=st.active + (key,), depth=st.depth + 1)
        self._bind_params(sub, target, args)
        for name, val in kwargs.items():
            sub.env.bind(name, val)
        status, ret = self._exec_block(sub, target.node.body)
        return ret if ret is not None else ConstVal(None)

    # -- instruction lowering -------------------------------------------

    def _arg(self, instr: InstrVal, index: int, name: str) -> Val:
        if index < len(instr.args):
            return instr.args[index]
        return instr.kwargs.get(name, UnknownVal(f"missing-arg:{name}"))

    def _const_int(self, val: Val) -> Optional[int]:
        if isinstance(val, ConstVal) and isinstance(val.value, int) and \
                not isinstance(val.value, bool):
            return val.value
        return None

    def _lower(self, st: _State, node: ast.AST, instr: InstrVal) -> Val:
        mn = instr.mnemonic
        site = instr.site

        if mn == "make-chan":
            cap = self._const_int(self._arg(instr, 0, "capacity"))
            if not instr.args and "capacity" not in instr.kwargs:
                cap = 0  # MakeChan() defaults to unbuffered
            label_val = instr.kwargs.get("label") or (
                instr.args[1] if len(instr.args) > 1 else None)
            label = label_val.value if isinstance(
                label_val, ConstVal) and isinstance(
                label_val.value, str) else ""
            chan = ChanVal(self._next_uid(), site, cap, label,
                           summarized=(st.mult != 1))
            self.ex.channels.append(chan)
            self._record(st, node, mn, operand=chan, site=site)
            return chan

        if mn in ("send", "recv", "close"):
            chan = self._arg(instr, 0, "channel")
            self._check_nil(st, node, mn, chan, site)
            value = self._arg(instr, 1, "value") if mn == "send" else None
            if mn == "send":
                self._mark_escapes(value, "sent-as-value")
            self._record(st, node, mn, operand=chan, value=value, site=site)
            if mn == "recv":
                return TupleVal([UnknownVal("recv-value"),
                                 UnknownVal("recv-ok")])
            return ConstVal(None)

        if mn == "select":
            return self._lower_select(st, node, instr, site)

        if mn == "new-mutex":
            mx = MutexVal(self._next_uid(), site, rw=False)
            self.ex.mutexes.append(mx)
            self._record(st, node, mn, operand=mx, site=site)
            return mx
        if mn == "new-rwmutex":
            mx = MutexVal(self._next_uid(), site, rw=True)
            self.ex.mutexes.append(mx)
            self._record(st, node, mn, operand=mx, site=site)
            return mx
        if mn == "new-waitgroup":
            wg = WgVal(self._next_uid(), site)
            self.ex.waitgroups.append(wg)
            self._record(st, node, mn, operand=wg, site=site)
            return wg
        if mn == "new-cond":
            locker = self._arg(instr, 0, "locker")
            cond = CondVal(self._next_uid(), site,
                           locker if isinstance(locker, MutexVal) else None)
            self.ex.conds.append(cond)
            self._record(st, node, mn, operand=cond, site=site)
            return cond
        if mn == "new-once":
            self._record(st, node, mn, site=site)
            return OnceVal(self._next_uid())
        if mn == "new-sema":
            count = self._const_int(self._arg(instr, 0, "count"))
            if not instr.args and "count" not in instr.kwargs:
                count = 0
            sema = SemaVal(self._next_uid(), site, count)
            self.ex.semas.append(sema)
            self._record(st, node, mn, operand=sema, site=site)
            return sema

        if mn in ("lock", "rlock"):
            target = self._arg(instr, 0, "target")
            op = self._record(st, node, mn, operand=target, site=site)
            if isinstance(target, MutexVal):
                st.held.append((target.uid, "w" if mn == "lock" else "r"))
                op.held = tuple(st.held)
            return ConstVal(None)
        if mn in ("unlock", "runlock"):
            target = self._arg(instr, 0, "target")
            self._record(st, node, mn, operand=target, site=site)
            if isinstance(target, MutexVal):
                mode = "w" if mn == "unlock" else "r"
                entry = (target.uid, mode)
                if entry in st.held:
                    st.held.remove(entry)
            return ConstVal(None)

        if mn == "wg-add":
            wg = self._arg(instr, 0, "waitgroup")
            delta = self._arg(instr, 1, "delta")
            if not len(instr.args) > 1 and "delta" not in instr.kwargs:
                delta = ConstVal(1)
            self._record(st, node, mn, operand=wg, site=site,
                         extra={"delta": self._const_int(delta)})
            return ConstVal(None)
        if mn in ("wg-done", "wg-wait"):
            wg = self._arg(instr, 0, "target")
            self._record(st, node, mn, operand=wg, site=site)
            return ConstVal(None)

        if mn in ("cond-wait", "cond-signal", "cond-broadcast"):
            cond = self._arg(instr, 0, "target")
            op = self._record(st, node, mn, operand=cond, site=site)
            if mn == "cond-wait" and isinstance(cond, CondVal) and \
                    cond.locker is not None:
                # Wait atomically releases the locker while parked; the
                # held set at the blocked point excludes it.
                entry = (cond.locker.uid, "w")
                if entry in st.held:
                    held = list(st.held)
                    held.remove(entry)
                    op.held = tuple(held)
            return ConstVal(None)

        if mn in ("sem-acquire", "sem-release"):
            sema = self._arg(instr, 0, "target")
            self._record(st, node, mn, operand=sema, site=site)
            return ConstVal(None)

        if mn == "once-do":
            self._record(st, node, mn, site=site)
            return ConstVal(None)

        if mn == "go":
            return self._lower_go(st, node, instr, site)

        if mn == "set-global":
            value = self._arg(instr, 1, "value")
            self._mark_escapes(value, "stored-global")
            self._record(st, node, mn, operand=value, site=site)
            return ConstVal(None)
        if mn == "get-global":
            self._record(st, node, mn, site=site)
            return UnknownVal("global")

        if mn == "alloc":
            obj = self._arg(instr, 0, "obj")
            self._record(st, node, mn, site=site)
            return obj

        if mn == "panic":
            self._record(st, node, mn, site=site)
            return ConstVal(None)

        # Neutral instructions: sleep, io-wait, gosched, work, run-gc,
        # now, set-finalizer, recover, defer, ...
        self._record(st, node, mn, site=site)
        if mn in ("now", "recover"):
            return UnknownVal(mn)
        return ConstVal(None)

    def _check_nil(self, st: _State, node: ast.AST, mn: str, chan: Val,
                   site: Site) -> None:
        if isinstance(chan, ConstVal) and chan.value is None:
            self._record(st, node, f"nil-{mn}", operand=chan, site=site)

    def _lower_select(self, st: _State, node: ast.AST, instr: InstrVal,
                      site: Site) -> Val:
        cases_val = self._arg(instr, 0, "cases")
        default_val = self._arg(instr, 1, "default")
        has_default = bool(isinstance(default_val, ConstVal)
                           and default_val.value)
        cases: List[CaseVal] = []
        resolved = True
        if isinstance(cases_val, (ListVal, TupleVal)):
            for elem in cases_val.elems:
                if isinstance(elem, CaseVal):
                    cases.append(elem)
                else:
                    resolved = False
        else:
            resolved = False
        if not resolved:
            self.give_up(st, node, "unresolved-select",
                         "select cases not statically known")
        alternatives = has_default or len(cases) > 1
        select_op = self._record(st, node, "select", site=site,
                                 extra={"cases": cases,
                                        "default": has_default,
                                        "resolved": resolved})
        for case in cases:
            self._check_nil(st, node, case.kind, case.channel, case.site)
            self._record(st, node, case.kind, operand=case.channel,
                         site=case.site, via_select=True,
                         select_alternatives=alternatives,
                         extra={"select_op": select_op, "case": case})
        return TupleVal([UnknownVal("select-index"),
                         UnknownVal("select-value"),
                         UnknownVal("select-ok")])

    def _lower_go(self, st: _State, node: ast.AST, instr: InstrVal,
                  site: Site) -> Val:
        fn = self._arg(instr, 0, "fn")
        spawn_args = list(instr.args[1:])
        op = self._record(st, node, "go", operand=fn, site=site,
                          extra={"args": spawn_args})
        if not isinstance(fn, FuncVal):
            for arg in spawn_args:
                self._mark_escapes(arg, "passed-unknown")
            self.give_up(st, node, "unresolved-spawn",
                         "Go target not statically resolvable")
            return UnknownVal("goroutine")
        key = fn.code_key or id(fn.node)
        if key in st.active or len(self.ex.bodies) >= _MAX_BODIES or \
                st.depth >= _MAX_DELEGATION_DEPTH:
            self.give_up(st, node, "recursive-spawn", fn.qualname)
            return UnknownVal("goroutine")
        child = BodyCtx(len(self.ex.bodies), fn.qualname,
                        spawn_site=site, parent=st.body)
        self.ex.bodies.append(child)
        # The child inherits the spawn's conditionality and multiplicity:
        # ops in a loop-spawned goroutine happen once per spawned
        # instance; ops in a conditionally-spawned goroutine are
        # conditional.  Held locks do NOT cross the spawn.
        sub = _State(child, Env(parent=fn.env), fn.file,
                     cond_depth=st.cond_depth, mult=st.mult,
                     held=[], active=st.active + (key,),
                     depth=st.depth + 1)
        self._bind_params(sub, fn, spawn_args)
        self._exec_block(sub, fn.node.body)
        return GoroutineVal(child)


_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a ** b,
    ast.LShift: lambda a, b: a << b,
    ast.RShift: lambda a, b: a >> b,
    ast.BitOr: lambda a, b: a | b,
    ast.BitAnd: lambda a, b: a & b,
    ast.BitXor: lambda a, b: a ^ b,
}

_CMPOPS = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
    ast.Is: lambda a, b: a is b,
    ast.IsNot: lambda a, b: a is not b,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
}


# ---------------------------------------------------------------------------
# Front ends
# ---------------------------------------------------------------------------


def extract_callable(fn: Callable, name: Optional[str] = None,
                     args: Optional[List[Val]] = None) -> Extraction:
    """Extract a live goroutine-body function (registry mode)."""
    loader = _FunctionLoader()
    fv = loader.load(fn)  # type: ignore[arg-type]
    display = name or getattr(fn, "__qualname__", repr(fn))
    if fv is None:
        file = "<unknown>"
        try:
            file = _relpath(inspect.getsourcefile(fn) or "<unknown>")
        except TypeError:
            pass
        ex = Extraction(display, file, 0)
        ex.giveups.append(GiveUp(Site(file, 0), "source-unavailable",
                                 "could not load function source"))
        return ex
    extractor = Extractor(display, fv.file, fv.node.lineno)
    extractor.ex.end_line = getattr(fv.node, "end_lineno", 0) or \
        fv.node.lineno
    extractor.loader = loader
    return extractor.run_entry(fv, args)


class _Candidate:
    __slots__ = ("node", "scope_chain", "qualname")

    def __init__(self, node: ast.FunctionDef,
                 scope_chain: List[ast.FunctionDef], qualname: str):
        self.node = node
        self.scope_chain = scope_chain
        self.qualname = qualname


def _collect_candidates(tree: ast.Module) -> List[_Candidate]:
    out: List[_Candidate] = []

    def walk(node: ast.AST, chain: List[ast.FunctionDef]):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = ".".join([c.name for c in chain] + [child.name])
                if _contains_direct_yield(child):
                    out.append(_Candidate(child, list(chain), qual))
                walk(child, chain + [child])
            elif isinstance(child, ast.ClassDef):
                walk(child, chain)
            else:
                walk(child, chain)

    walk(tree, [])
    return out


def _referenced_names(candidate: _Candidate) -> set:
    """Name loads inside a candidate body (excluding nested defs'
    *names* is unnecessary — any Name load counts as a reference)."""
    names = set()
    for child in ast.walk(candidate.node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
            names.add(child.id)
    return names


def _build_module_env(tree: ast.Module, path: str,
                      loader: _FunctionLoader) -> Env:
    env = Env()
    file = _relpath(path)
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fv = FuncVal(stmt, env, stmt.name, file,
                         is_generator=_contains_direct_yield(stmt),
                         code_key=stmt)
            env.bind(stmt.name, fv)
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name):
            if isinstance(stmt.value, ast.Constant):
                env.bind(stmt.targets[0].id, ConstVal(stmt.value.value))
        elif isinstance(stmt, ast.ImportFrom):
            _bind_import_from(env, stmt, loader)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                binding = alias.asname or alias.name.split(".")[0]
                try:
                    import importlib
                    module = importlib.import_module(
                        alias.name.split(".")[0] if alias.asname is None
                        else alias.name)
                    env.bind(binding, ModuleVal(module))
                except Exception:
                    env.bind(binding, UnknownVal(f"import:{alias.name}"))
    # Defaults for module-level defs are evaluated in the module env
    # after all imports are bound.
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fv = env.vars.get(stmt.name)
            if isinstance(fv, FuncVal):
                ext = Extractor("<defaults>", file, 0)
                ext.loader = loader
                dummy = _State(BodyCtx(0, "<defaults>"), env, file)
                fv.defaults.update(ext._eval_defaults(dummy, stmt))
    return env


def _bind_import_from(env: Env, stmt: ast.ImportFrom,
                      loader: _FunctionLoader) -> None:
    module = None
    if stmt.module and stmt.level == 0:
        try:
            import importlib
            module = importlib.import_module(stmt.module)
        except Exception:
            module = None
    for alias in stmt.names:
        binding = alias.asname or alias.name
        if alias.name == "*":
            continue
        if module is not None and hasattr(module, alias.name):
            env.bind(binding,
                     python_to_val(getattr(module, alias.name), loader))
        else:
            env.bind(binding, UnknownVal(f"import:{alias.name}"))


def _scope_env_for(candidate: _Candidate, module_env: Env,
                   file: str) -> Env:
    """Approximate the lexical environment of a nested candidate by
    binding the nested defs (and constant assigns) of each enclosing
    function, outermost first."""
    env = module_env
    for scope in candidate.scope_chain:
        scope_env = Env(parent=env)
        for stmt in scope.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope_env.bind(stmt.name, FuncVal(
                    stmt, scope_env, stmt.name, file,
                    is_generator=_contains_direct_yield(stmt),
                    code_key=stmt))
            elif isinstance(stmt, ast.Assign) and \
                    len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name) and \
                    isinstance(stmt.value, ast.Constant):
                scope_env.bind(stmt.targets[0].id,
                               ConstVal(stmt.value.value))
        env = scope_env
    return env


def find_roots(tree: ast.Module) -> List[_Candidate]:
    """Candidates not referenced by any *other* candidate: the entry
    bodies of the file's goroutine forest."""
    candidates = _collect_candidates(tree)
    names = {c.node.name for c in candidates}
    referenced: set = set()
    for cand in candidates:
        refs = _referenced_names(cand) & names
        refs.discard(cand.node.name)
        referenced |= refs
    return [c for c in candidates if c.node.name not in referenced]


def extract_file(path: str) -> List[Extraction]:
    """Extract every root generator function of a source file."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=path)
    loader = _FunctionLoader()
    module_env = _build_module_env(tree, path, loader)
    file = _relpath(path)
    results: List[Extraction] = []
    for cand in sorted(find_roots(tree), key=lambda c: c.node.lineno):
        env = _scope_env_for(cand, module_env, file)
        fv = FuncVal(cand.node, env, cand.qualname, file,
                     is_generator=True, code_key=cand.node)
        ext = Extractor(cand.qualname, file, cand.node.lineno)
        ext.ex.end_line = getattr(cand.node, "end_lineno", 0) or \
            cand.node.lineno
        ext.loader = loader
        defaults_state = _State(BodyCtx(0, "<defaults>"), env, file)
        fv.defaults.update(ext._eval_defaults(defaults_state, cand.node))
        ext._seq = 0
        results.append(ext.run_entry(fv))
    return results
