"""Property-based tests of GC safety at the heap level.

The invariants no collector may break, checked over random object
graphs:

- **no live object is ever swept** (reachable-from-roots implies
  survives sweep);
- **all garbage is eventually swept** (unreachable implies collected);
- sweep is idempotent at a fixpoint;
- the GOLF cycle never frees more *non-goroutine* memory than a baseline
  cycle run on the same state would keep — i.e. everything it reclaims
  extra is attributable to deadlocked goroutines.
"""

from hypothesis import given, settings, strategies as st

from repro.gc.heap import Heap
from repro.gc.marking import mark_from
from repro.runtime.objects import Box


class GraphState:
    def __init__(self, heap, objects, root_indices):
        self.heap = heap
        self.objects = objects
        self.root_indices = root_indices


@st.composite
def heap_graphs(draw):
    heap = Heap()
    n = draw(st.integers(min_value=1, max_value=20))
    objects = [heap.allocate(Box(None)) for _ in range(n)]
    # Random edges: each object references up to 3 others.
    for obj in objects:
        count = draw(st.integers(min_value=0, max_value=3))
        if count:
            targets = draw(st.lists(st.integers(0, n - 1),
                                    min_size=count, max_size=count))
            obj.value = [objects[t] for t in targets]
    # Random subset registered as globals (the roots).
    root_indices = draw(st.lists(st.integers(0, n - 1), max_size=4,
                                 unique=True))
    for i, index in enumerate(root_indices):
        heap.globals.set(f"g{i}", objects[index])
    return GraphState(heap, objects, root_indices)


def _reachable(state: GraphState):
    seen = set()
    stack = [state.objects[i] for i in state.root_indices]
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        value = obj.value
        if isinstance(value, list):
            stack.extend(value)
    return seen


@settings(max_examples=200, deadline=None)
@given(state=heap_graphs())
def test_live_objects_survive_sweep(state):
    reachable = _reachable(state)
    state.heap.begin_cycle()
    mark_from(state.heap, [state.heap.globals])
    state.heap.sweep()
    for obj in state.objects:
        if id(obj) in reachable:
            assert state.heap.contains(obj), "live object swept!"


@settings(max_examples=200, deadline=None)
@given(state=heap_graphs())
def test_all_garbage_collected(state):
    reachable = _reachable(state)
    state.heap.begin_cycle()
    mark_from(state.heap, [state.heap.globals])
    state.heap.sweep()
    for obj in state.objects:
        if id(obj) not in reachable:
            assert not state.heap.contains(obj), "garbage survived!"


@settings(max_examples=100, deadline=None)
@given(state=heap_graphs())
def test_sweep_fixpoint(state):
    state.heap.begin_cycle()
    mark_from(state.heap, [state.heap.globals])
    first, _ = state.heap.sweep()
    state.heap.begin_cycle()
    mark_from(state.heap, [state.heap.globals])
    second, _ = state.heap.sweep()
    assert second.freed_objects == 0
    assert second.freed_bytes == 0


@settings(max_examples=100, deadline=None)
@given(state=heap_graphs())
def test_accounting_matches_population(state):
    state.heap.begin_cycle()
    mark_from(state.heap, [state.heap.globals])
    state.heap.sweep()
    assert state.heap.live_bytes == sum(
        o.size for o in state.heap.objects())
    assert state.heap.live_objects == sum(1 for _ in state.heap.objects())
