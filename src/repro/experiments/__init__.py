"""Experiment drivers: one module per table/figure of the paper.

Each module exposes a ``run_*`` function returning a structured result
and a ``format_*`` helper that prints the same rows/series the paper
reports.  The ``benchmarks/`` directory wires these into pytest-benchmark
targets; see EXPERIMENTS.md for the paper-vs-measured record.
"""

from repro.experiments.table1 import Table1Result, format_table1, run_table1
from repro.experiments.table2 import Table2Result, format_table2, run_table2
from repro.experiments.table3 import Table3Result, format_table3, run_table3
from repro.experiments.figure1 import Figure1Result, format_figure1, run_figure1
from repro.experiments.figure3 import Figure3Result, format_figure3, run_figure3
from repro.experiments.figure4 import Figure4Result, format_figure4, run_figure4
from repro.experiments.rq1b import RQ1bResult, format_rq1b, run_rq1b
from repro.experiments.rq1c import RQ1cResult, format_rq1c, run_rq1c

__all__ = [
    "run_table1", "format_table1", "Table1Result",
    "run_table2", "format_table2", "Table2Result",
    "run_table3", "format_table3", "Table3Result",
    "run_figure1", "format_figure1", "Figure1Result",
    "run_figure3", "format_figure3", "Figure3Result",
    "run_figure4", "format_figure4", "Figure4Result",
    "run_rq1b", "format_rq1b", "RQ1bResult",
    "run_rq1c", "format_rq1c", "RQ1cResult",
]
