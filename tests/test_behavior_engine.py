"""Behavioral-type engine: verdicts, edge cases, and certificates.

The engine (repro.staticcheck.behavior) abstracts goroutine bodies into
forkable trace types and explores their synchronous composition; each
channel gets PROVEN (leak-free, with a machine-checkable certificate),
POTENTIAL (a definite counterexample trace), or UNKNOWN (sound
give-up).  These tests pin the verdicts on the tricky corners —
select-with-default, nil-channel arms, close-then-recv drains, buffered
capacity, recursive spawns — and the certificate lifecycle
(round-trip, tamper detection, registry demotion).
"""

import pytest

from repro.staticcheck.behavior import (
    POTENTIAL,
    PROVEN,
    UNPROVEN,
    analyze_callable_behavior,
)
from repro.staticcheck.proofs import (
    Certificate,
    ProofRegistry,
    build_registry,
    certificates_for,
    normalize_site,
    verify_certificate,
)
from repro.runtime.instructions import (
    Close,
    Go,
    MakeChan,
    Recv,
    RecvCase,
    Select,
    Send,
    SendCase,
    Work,
)


def _verdict_by_label(analysis, label):
    for v in analysis.verdicts:
        if v.label == label:
            return v
    raise AssertionError(
        f"no channel labeled {label!r}; have "
        f"{[v.label for v in analysis.verdicts]}")


class TestCoreVerdicts:
    def test_paired_rendezvous_is_proven(self):
        def body():
            done = yield MakeChan(0, label="done")

            def worker(ch=done):
                yield Send(ch, 1)

            yield Go(worker)
            yield Recv(done)

        analysis = analyze_callable_behavior(body)
        v = _verdict_by_label(analysis, "done")
        assert v.verdict == PROVEN
        assert not v.counterexample

    def test_orphan_sender_is_potential_with_counterexample(self):
        def body():
            orphan = yield MakeChan(0, label="orphan")

            def worker(ch=orphan):
                yield Send(ch, 1)

            yield Go(worker)

        analysis = analyze_callable_behavior(body)
        v = _verdict_by_label(analysis, "orphan")
        assert v.verdict == POTENTIAL
        # The counterexample is a concrete trace ending with the stuck
        # send — the static analog of GOLF's leak report.
        assert v.counterexample
        assert any("send" in line for line in v.counterexample)


class TestEdgeCases:
    def test_select_with_default_never_blocks(self):
        """A send guarded by a default arm may drop the value but can
        never strand the sender: proven."""

        def body():
            best = yield MakeChan(0, label="best-effort")

            def worker(ch=best):
                yield Select([SendCase(ch, 1)], default=True)

            yield Go(worker)
            # Main may or may not be listening; the default arm makes
            # the worker safe either way.
            yield Select([RecvCase(best)], default=True)

        analysis = analyze_callable_behavior(body)
        assert _verdict_by_label(analysis, "best-effort").verdict == PROVEN

    def test_nil_channel_arm_is_not_proven(self):
        """A select whose only live arm is a nil channel blocks
        forever; the engine must not certify the channel feeding it."""

        def body():
            ch = yield MakeChan(0, label="guarded")

            def worker(c=ch):
                # A nil arm is folded away: this select has no enabled
                # arms and parks forever.
                yield Select([RecvCase(None)])
                yield Send(c, 1)

            yield Go(worker)
            yield Recv(ch)

        analysis = analyze_callable_behavior(body)
        v = _verdict_by_label(analysis, "guarded")
        assert v.verdict in (POTENTIAL, UNPROVEN)

    def test_close_then_recv_drain_is_proven(self):
        """Producers close; the consumer drains until closed-and-empty.
        The trace abstraction must model the drain as terminating."""

        def body():
            items = yield MakeChan(0, label="drained")

            def producer(ch=items):
                for _ in range(3):
                    yield Send(ch, 1)
                yield Close(ch)

            yield Go(producer)
            while True:
                _, ok = yield Recv(items)
                if not ok:
                    break

        analysis = analyze_callable_behavior(body)
        assert _verdict_by_label(analysis, "drained").verdict == PROVEN

    def test_buffered_capacity_absorbs_exact_fit(self):
        """Two sends into a capacity-2 channel with no receiver: the
        buffer absorbs both, so nothing blocks — proven."""

        def body():
            buf = yield MakeChan(2, label="fits")

            def worker(ch=buf):
                yield Send(ch, 1)
                yield Send(ch, 2)

            yield Go(worker)
            yield Work(5)

        analysis = analyze_callable_behavior(body)
        assert _verdict_by_label(analysis, "fits").verdict == PROVEN

    def test_buffered_capacity_overflow_is_potential(self):
        """Three sends into capacity 2 with no receiver: the third
        blocks forever — the count abstraction must catch it."""

        def body():
            buf = yield MakeChan(2, label="overflows")

            def worker(ch=buf):
                for _ in range(3):
                    yield Send(ch, 1)

            yield Go(worker)
            yield Work(5)

        analysis = analyze_callable_behavior(body)
        v = _verdict_by_label(analysis, "overflows")
        assert v.verdict == POTENTIAL
        assert v.counterexample

    def test_recursive_spawn_hits_unknown_not_proven(self):
        """Self-spawning bodies exceed the finite component bound; the
        engine must give up soundly rather than certify."""

        def body():
            ch = yield MakeChan(0, label="recursive")

            def worker(c=ch):
                yield Go(worker)
                yield Send(c, 1)

            yield Go(worker)
            yield Recv(ch)

        analysis = analyze_callable_behavior(body)
        assert _verdict_by_label(analysis, "recursive").verdict != PROVEN


class TestCertificates:
    def _proven_analysis(self):
        def body():
            done = yield MakeChan(0, label="done")

            def worker(ch=done):
                yield Send(ch, 1)

            yield Go(worker)
            yield Recv(done)

        return analyze_callable_behavior(body, name="cert_body")

    def test_certificate_verifies_and_round_trips(self):
        analysis = self._proven_analysis()
        certs = certificates_for(analysis)
        assert len(certs) == 1
        cert = certs[0]
        ok, reason = verify_certificate(cert)
        assert ok, reason
        clone = Certificate.from_dict(cert.to_dict())
        ok, reason = verify_certificate(clone)
        assert ok, reason

    def test_tampered_certificate_is_rejected(self):
        analysis = self._proven_analysis()
        cert = certificates_for(analysis)[0]
        doc = cert.to_dict()
        doc["model_hash"] = "0" * 16
        ok, reason = verify_certificate(Certificate.from_dict(doc))
        assert not ok
        assert "hash" in reason

    def test_tampered_model_is_rejected(self):
        """Editing the model (e.g. deleting the receive) must fail
        verification even if the hash is recomputed honestly."""
        analysis = self._proven_analysis()
        cert = certificates_for(analysis)[0]
        doc = cert.to_dict()
        for comp in doc["model"]["components"]:
            comp["steps"] = [s for s in comp["steps"]
                             if s["kind"] != "recv"]
        tampered = Certificate.from_dict(doc)
        tampered.model_hash = tampered.model.hash()
        ok, reason = verify_certificate(tampered)
        assert not ok

    def test_registry_round_trip_and_lookup(self):
        analysis = self._proven_analysis()
        registry = build_registry([analysis])
        assert len(registry) == 1
        (site,) = registry.proven_sites()
        make_site, capacity = site
        assert registry.is_proven(make_site, capacity)
        clone = ProofRegistry.from_json(registry.to_json())
        assert clone.is_proven(make_site, capacity)

    def test_demotion_is_permanent(self):
        """A site unproven in any loaded analysis stays demoted —
        leak-freedom is a whole-program property."""
        analysis = self._proven_analysis()
        registry = build_registry([analysis])
        ((make_site, capacity),) = registry.proven_sites()
        registry.demote(make_site, capacity)
        assert not registry.is_proven(make_site, capacity)
        registry.add_analysis(analysis)     # cannot resurrect
        assert not registry.is_proven(make_site, capacity)

    def test_normalize_site_resolves_relative_paths(self):
        import os

        rel = "tests/test_behavior_engine.py:10"
        absolute = normalize_site(rel)
        assert os.path.isabs(absolute.rsplit(":", 1)[0])
        assert normalize_site(absolute) == absolute
