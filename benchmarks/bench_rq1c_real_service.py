"""RQ1(c): GOLF on the production service for 24 hours.

Paper: 252 individual partial deadlocks over 24 h, narrowed to exactly 3
source locations (the Listing 7 ``SendEmail`` shape).  Scaled default: 4
virtual hours with the leak cadence calibrated to the paper's rate
(~10.5 leaks per hour across the three endpoints).
"""

import os

from benchmarks.conftest import emit, once
from repro.experiments import format_rq1c, run_rq1c
from repro.service.production import ProductionConfig

HOURS = float(os.environ.get("REPRO_RQ1C_HOURS", "4"))


def test_rq1c_real_service_deployment(benchmark):
    config = ProductionConfig(hours=HOURS, leak_every=3000, seed=2)
    result = once(benchmark, lambda: run_rq1c(config))
    emit("rq1c", format_rq1c(result))

    assert result.distinct_sources == 3, "paper: 3 source locations"
    assert result.individual_reports > 0
    # Extrapolated to 24h, the rate lands near the paper's 252.
    assert 120 <= result.reports_per_24h() <= 500
