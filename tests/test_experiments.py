"""Tests for the experiment drivers and their formatters (fast configs)."""

import pytest

from repro.corpus.generator import CorpusConfig
from repro.experiments import (
    format_figure1,
    format_figure3,
    format_figure4,
    format_rq1b,
    format_rq1c,
    format_table1,
    format_table2,
    format_table3,
    run_figure1,
    run_figure3,
    run_figure4,
    run_rq1b,
    run_rq1c,
    run_table1,
    run_table2,
    run_table3,
)
from repro.experiments.ablations import (
    CadenceAblation,
    FixpointAblation,
    RecoveryAblation,
)
from repro.microbench.registry import all_benchmarks, benchmarks_by_name
from repro.service.controlled import ControlledConfig
from repro.service.longrun import LongRunConfig
from repro.service.production import ProductionConfig


class TestTable1:
    def test_small_run_matches_paper_shape(self):
        result = run_table1(runs=5, procs_list=(1, 4))
        # Aggregate detection in the paper's ballpark (>= 90%).
        assert result.aggregated() >= 0.90
        # grpc/3017 is invisible on one core, reliable on four.
        assert result.counts["grpc/3017:71"][1] == 0
        assert result.counts["grpc/3017:71"][4] >= 4

    def test_subset_run_and_formatter(self):
        benches = [benchmarks_by_name()["cgo/sendmail"],
                   benchmarks_by_name()["grpc/3017"]]
        result = run_table1(runs=3, procs_list=(1, 2), benchmarks=benches)
        text = format_table1(result)
        assert "Aggregated" in text
        assert "grpc/3017:71" in text

    def test_per_site_rates_bounded(self):
        benches = [benchmarks_by_name()["cockroach/6181"]]
        result = run_table1(runs=4, procs_list=(2,), benchmarks=benches)
        for site in benches[0].sites:
            assert 0.0 <= result.site_rate(site) <= 1.0


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        config = ControlledConfig(duration_s=4, warmup_s=1, connections=8,
                                  map_entries=10_000, seed=5)
        return run_table2(leak_rates=(0.0, 0.25), config=config)

    def test_heap_ratio_favors_golf_under_leaks(self, result):
        assert result.ratio(0.25, "heap_alloc_mb") > 5

    def test_comparable_without_leaks(self, result):
        assert 0.8 <= result.ratio(0.0, "throughput_rps") <= 1.2
        assert 0.8 <= result.ratio(0.0, "p50_ms") <= 1.2

    def test_golf_pause_per_cycle_higher(self, result):
        # Paper: B/G pause-per-cycle ~0.38 (GOLF pauses longer).
        assert result.ratio(0.0, "pause_per_cycle_ns") < 1.0

    def test_formatter_contains_metric_rows(self, result):
        text = format_table2(result)
        assert "Throughput" in text and "P99 latency" in text
        assert "GC pause time" in text


class TestTable3AndRQ1c:
    @pytest.fixture(scope="class")
    def config(self):
        return ProductionConfig(hours=0.5, leak_every=150, seed=3)

    def test_table3_overhead_negligible(self, config):
        result = run_table3(config)
        rows = result.rows()
        base_p50 = rows["baseline"]["p50_latency_ms"][0]
        golf_p50 = rows["golf"]["p50_latency_ms"][0]
        assert abs(base_p50 - golf_p50) / base_p50 < 0.10
        text = format_table3(result)
        assert "P99" in text and "golf" in text

    def test_rq1c_finds_three_sources(self, config):
        result = run_rq1c(config)
        assert result.distinct_sources == 3
        assert result.individual_reports > 0
        text = format_rq1c(result)
        assert "paper: 252" in text and "paper: 3" in text


class TestFigure1:
    def test_series_and_formatter(self):
        config = LongRunConfig(days=7, requests_per_hour=40, leak_every=4,
                               procs=2, seed=6)
        result = run_figure1(config, include_golf=True)
        assert len(result.series()) == 7 * 24
        assert result.golf.peak() < result.baseline.peak()
        text = format_figure1(result)
        assert "week 1" in text and "peak=" in text


class TestRQ1bAndFigure3:
    @pytest.fixture(scope="class")
    def corpus_config(self):
        return CorpusConfig(n_packages=60, n_sites=24, seed=4)

    def test_rq1b_ratios(self, corpus_config):
        result = run_rq1b(corpus_config)
        assert 0.30 <= result.dedup_ratio <= 0.70
        assert result.individual_ratio >= result.dedup_ratio - 0.10
        text = format_rq1b(result)
        assert "paper: 29513" in text

    def test_figure3_curve(self, corpus_config):
        result = run_figure3(corpus_config)
        assert result.curve
        assert 0.5 <= result.auc <= 1.0
        assert 0.0 <= result.fully_found <= 1.0
        text = format_figure3(result)
        assert "area under curve" in text


class TestFigure4:
    def test_distributions(self):
        subset = all_benchmarks()[:8]
        from repro.microbench.registry import correct_benchmarks
        result = run_figure4(repeats=2, benchmarks=subset,
                             fixed=correct_benchmarks(6))
        leaky = result.distribution(correct=False)
        correct = result.distribution(correct=True)
        # GOLF's marking is unburdened on leaky programs (median < 1).
        assert leaky["median"] <= 1.0
        assert 0.5 <= correct["median"] <= 1.5
        text = format_figure4(result)
        assert "deadlocking programs" in text


class TestAblations:
    def test_fixpoint_restart_iterations_grow_with_chain(self):
        result = FixpointAblation().run(chain_lengths=(2, 8))
        short, long = result.rows
        assert long["restart_iterations"] > short["restart_iterations"]
        assert long["otf_iterations"] == 1
        assert short["restart_deadlocks"] == short["otf_deadlocks"] == 0
        assert "restart iters" in result.format()

    def test_cadence_preserves_detections(self):
        result = CadenceAblation().run(cadences=(1, 5), pool=30,
                                       leaks=6, cycles=20)
        every1, every5 = result.rows
        assert every1["detected"] == every5["detected"]
        assert every5["checks"] < every1["checks"]
        assert every5["pause_total_us"] <= every1["pause_total_us"]
        assert "pause total" in result.format()

    def test_recovery_reclaims_memory(self):
        result = RecoveryAblation().run(bursts=8, per_burst=4)
        off, on = result.rows
        assert off["detected"] == on["detected"]
        assert on["heap_alloc_kb"] < off["heap_alloc_kb"] / 10
        assert on["goroutines"] == 0
        assert "reclaim" in result.format()
