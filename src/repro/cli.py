"""Command-line interface: regenerate any paper artifact.

Usage::

    python -m repro table1 --runs 30
    python -m repro table2 --duration 15
    python -m repro figure1 --days 21
    python -m repro vet examples --expect
    python -m repro all --out artifacts/

Each subcommand runs the corresponding experiment driver and prints the
paper-style table or figure; ``--out DIR`` additionally archives it.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, Optional

from repro.core.config import GC_MODES, set_default_gc_mode
from repro.corpus.generator import CorpusConfig
from repro.experiments import (
    format_figure1,
    format_figure3,
    format_figure4,
    format_rq1b,
    format_rq1c,
    format_table1,
    format_table2,
    format_table3,
    run_figure1,
    run_figure3,
    run_figure4,
    run_rq1b,
    run_rq1c,
    run_table1,
    run_table2,
    run_table3,
)
from repro.experiments.ablations import (
    CadenceAblation,
    FixpointAblation,
    RecoveryAblation,
)
from repro.service.controlled import ControlledConfig
from repro.service.longrun import LongRunConfig
from repro.service.production import ProductionConfig
from repro.artifact import TesterConfig, run_tester


def _cmd_table1(args) -> str:
    return format_table1(run_table1(runs=args.runs))


def _cmd_table2(args) -> str:
    config = ControlledConfig(duration_s=args.duration, warmup_s=3)
    return format_table2(run_table2(config=config))


def _cmd_table3(args) -> str:
    return format_table3(run_table3(ProductionConfig(hours=args.hours)))


def _cmd_figure1(args) -> str:
    config = LongRunConfig(days=args.days)
    return format_figure1(run_figure1(config))


def _cmd_figure3(args) -> str:
    config = CorpusConfig(n_packages=args.packages)
    return format_figure3(run_figure3(config))


def _cmd_figure4(args) -> str:
    return format_figure4(run_figure4(repeats=args.repeats))


def _cmd_rq1b(args) -> str:
    config = CorpusConfig(n_packages=args.packages)
    return format_rq1b(run_rq1b(config))


def _cmd_rq1c(args) -> str:
    config = ProductionConfig(hours=args.hours, leak_every=3000)
    return format_rq1c(run_rq1c(config))


def _cmd_tester(args) -> str:
    config = TesterConfig(match=args.match, repeats=args.repeats,
                          perf=args.perf)
    report = run_tester(config)
    text = report.format_results()
    if args.perf:
        text += "\n\n" + report.format_perf_csv()
    return text


def _cmd_chaos(args) -> str:
    import json

    from repro.chaos import run_chaos_campaign

    if args.seeds < 1:
        raise SystemExit("chaos: --seeds must be at least 1 "
                         "(an empty campaign would be vacuously clean)")

    from repro.telemetry import get_default_hub

    report = run_chaos_campaign(
        seeds=args.seeds,
        scenario=args.scenario,
        base_seed=args.base_seed,
        procs=args.procs,
        keep_traces=args.traces,
        telemetry=get_default_hub(),
    )
    artifact_dir = args.json_dir
    os.makedirs(artifact_dir, exist_ok=True)
    path = os.path.join(
        artifact_dir,
        f"chaos-{args.scenario}-s{args.base_seed}-n{args.seeds}.json")
    with open(path, "w") as fh:
        json.dump(report.to_dict(), fh, indent=2)
    text = report.format() + f"\n  artifact        : {path}"
    if not report.clean:
        # A dirty campaign is a soundness bug; make the process say so.
        raise SystemExit(text + "\nchaos campaign FAILED")
    return text


def _cmd_daemon(args) -> str:
    """The recovery-smoke gate: daemon SLO + rollback e2e + campaign."""
    import json

    from repro.chaos import run_recovery_campaign
    from repro.experiments.latency import (
        format_daemon_sweep,
        run_daemon_latency_sweep,
    )
    from repro.service.checkpointed import CheckpointedConfig, run_checkpointed
    from repro.telemetry import get_default_hub

    if args.seeds < 1:
        raise SystemExit("daemon: --seeds must be at least 1")
    failures = []

    # 1. Detection-latency SLO: the daemon at 50ms (virtual) must beat
    #    the 100ms GC-cadence baseline on p99 time-to-detection.
    sweep = run_daemon_latency_sweep(
        daemon_intervals_ms=(5.0, 20.0, 50.0, 200.0), gc_interval_ms=100.0)
    baseline = sweep[0]
    by_daemon = {r.daemon_interval_ms: r for r in sweep[1:]}
    if not by_daemon[50.0].p99_ms() < baseline.p99_ms():
        failures.append(
            f"latency SLO: daemon@50ms p99 {by_daemon[50.0].p99_ms():.2f}ms "
            f"not below GC-cadence baseline {baseline.p99_ms():.2f}ms")
    if any(r.detected != r.leaks for r in sweep):
        failures.append("latency SLO: not every leak detected")

    # 2. Checkpoint/rollback end to end, no chaos: poison wedges must be
    #    condemned, the subsystem restarted, and every job drained with
    #    zero data loss.
    e2e = run_checkpointed(CheckpointedConfig(seed=args.base_seed))
    if not e2e.clean:
        failures.append(f"checkpoint e2e not clean: {e2e!r}")
    if e2e.recoveries < 1:
        failures.append("checkpoint e2e: no recovery exercised")

    # 3. The chaos recovery campaign, gated on its SLOs (>=95% restart
    #    success, zero data loss, recovery-time p99 bound).
    campaign = run_recovery_campaign(
        seeds=args.seeds, base_seed=args.base_seed,
        telemetry=get_default_hub())
    artifact_dir = args.json_dir
    os.makedirs(artifact_dir, exist_ok=True)
    path = os.path.join(
        artifact_dir,
        f"recovery-s{args.base_seed}-n{args.seeds}.json")
    with open(path, "w") as fh:
        json.dump(campaign.to_dict(), fh, indent=2)
    if not campaign.meets_slo:
        failures.append("recovery campaign missed its SLOs")

    text = "\n".join([
        "-- detection-latency SLO curve (daemon vs GC cadence)",
        format_daemon_sweep(sweep),
        "",
        "-- checkpoint/rollback e2e",
        f"  {e2e!r}",
        f"  recoveries={e2e.recoveries} redeliveries={e2e.redeliveries} "
        f"checkpoints={e2e.checkpoints_taken} "
        f"daemon_checks={e2e.daemon_checks}",
        "",
        "-- recovery chaos campaign",
        campaign.format(),
        f"  artifact        : {path}",
    ])
    if failures:
        raise SystemExit(
            text + "\n" + "\n".join(f"FAIL: {f}" for f in failures)
            + "\ndaemon recovery smoke FAILED")
    return text


def _cmd_fleet(args) -> str:
    """Sharded multi-runtime fleet run (see docs/FLEET.md).

    Writes a deterministic JSON artifact (schema-validated before
    writing), the fleet ``.prom`` exposition with a ``shard`` label on
    every sample, and the merged leak-report log.  ``--mode both`` runs
    the sequential oracle *and* the multiprocessing fleet and enforces
    their equivalence.  Exits non-zero on a dirty run (invariant
    violation, dead worker, schema breach, or mode divergence).
    """
    from repro.fleet import (
        FleetConfig,
        equivalence_diff,
        run_fleet,
        validate_fleet_artifact,
    )
    from repro.telemetry import validate_exposition

    if args.shards < 1:
        raise SystemExit("fleet: --shards must be at least 1")
    if args.users < 1:
        raise SystemExit("fleet: --users must be at least 1")
    config = FleetConfig(
        shards=args.shards, seed=args.seed, users=args.users,
        policy=args.policy, workload=args.workload,
        leak_rate=args.leak_rate, procs_per_shard=args.procs,
        daemon_interval_ms=args.daemon_ms)
    modes = (["sequential", "multiprocessing"] if args.mode == "both"
             else [args.mode])
    results = {mode: run_fleet(config, mode) for mode in modes}

    failures = []
    artifact_dir = args.json_dir
    os.makedirs(artifact_dir, exist_ok=True)
    sections = []
    for mode, result in results.items():
        doc = result.to_dict()
        try:
            counts = validate_fleet_artifact(doc)
        except ValueError as exc:
            failures.append(f"{mode}: artifact schema breach: {exc}")
            counts = {}
        prom = result.prom_text()
        try:
            samples = validate_exposition(prom)
        except ValueError as exc:
            failures.append(f"{mode}: exposition invalid: {exc}")
            samples = 0
        stem = os.path.join(
            artifact_dir, f"fleet-{mode}-n{args.shards}-s{args.seed}")
        with open(f"{stem}.json", "w") as fh:
            fh.write(result.to_json())
        with open(f"{stem}.prom", "w") as fh:
            fh.write(prom)
        with open(f"{stem}-reports.txt", "w") as fh:
            fh.write(result.report_log_text())
        if not result.clean:
            failures.append(f"{mode}: dirty run: "
                            + "; ".join(result.problems))
        sections.append("\n".join([
            result.format(),
            f"  wall time       : {result.wall_s:.2f}s",
            f"  exposition      : {samples} sample(s), shard-labelled",
            f"  artifact        : {stem}.json "
            f"({counts.get('reports', 0)} report(s), "
            f"{counts.get('fingerprints', 0)} fingerprint(s))",
        ]))
    if args.mode == "both":
        mismatches = equivalence_diff(results["sequential"],
                                      results["multiprocessing"])
        if mismatches:
            failures.extend(f"mode equivalence: {m}" for m in mismatches)
        else:
            sections.append("mode equivalence : sequential == "
                            "multiprocessing (reports, fingerprints, "
                            "metrics)")
    text = "\n\n".join(sections)
    if failures:
        raise SystemExit(text + "\n"
                         + "\n".join(f"FAIL: {f}" for f in failures)
                         + "\nfleet run FAILED")
    return text


def _cmd_dash(args) -> str:
    """Deterministic TSDB dashboard over a scraped fleet run.

    Runs the sequential (oracle) fleet with per-shard metric scraping
    on, renders the text dashboard, and writes the schema-versioned
    JSON artifact (series rollup + alert timeline) — validated before
    writing; two same-seed invocations produce byte-identical output.
    Exits non-zero on a dirty run or a schema breach.
    """
    from repro.telemetry.dashboard import run_dash, validate_dash_artifact

    if args.shards < 1:
        raise SystemExit("dash: --shards must be at least 1")
    if args.scrape_ms <= 0:
        raise SystemExit("dash: --scrape-ms must be positive")
    result = run_dash(
        shards=args.shards, users=args.users, seed=args.seed,
        workload=args.workload, policy=args.policy,
        leak_rate=args.leak_rate, procs=args.procs,
        daemon_ms=args.daemon_ms, scrape_ms=args.scrape_ms)
    doc = result.to_dict()
    failures = []
    try:
        counts = validate_dash_artifact(doc)
    except ValueError as exc:
        failures.append(f"artifact schema breach: {exc}")
        counts = {}
    artifact_dir = args.json_dir
    os.makedirs(artifact_dir, exist_ok=True)
    path = os.path.join(
        artifact_dir, f"dash-n{args.shards}-s{args.seed}.json")
    with open(path, "w") as fh:
        fh.write(result.to_json())
    if not result.clean:
        failures.append("dirty run: " + "; ".join(result.fleet.problems))
    text = "\n".join([
        result.format().rstrip("\n"),
        "",
        f"artifact : {path} ({counts.get('series', 0)} series, "
        f"{counts.get('alert_transitions', 0)} alert transition(s), "
        f"{counts.get('rules', 0)} rule(s))",
    ])
    if failures:
        raise SystemExit(text + "\n"
                         + "\n".join(f"FAIL: {f}" for f in failures)
                         + "\ndash run FAILED")
    return text


def _cmd_obs(args) -> str:
    from repro.telemetry import (
        DEBUG,
        TelemetryHub,
        run_observed_benchmark,
        write_artifacts,
    )

    hub = TelemetryHub(min_severity=DEBUG)
    result = run_observed_benchmark(
        args.benchmark, procs=args.procs, seed=args.seed, hub=hub,
        fingerprint_db=args.fingerprint_db)
    out_dir = args.out_dir or args.out or "benchmarks/out"
    slug = args.benchmark.replace("/", "-")
    result.artifact_paths = write_artifacts(
        hub, out_dir, f"obs-{slug}-p{args.procs}-s{args.seed}")
    return result.format()


def _cmd_trace(args) -> str:
    from repro.trace.chrome import validate_chrome_trace
    from repro.trace.driver import run_traced_benchmark, write_trace_artifacts

    result = run_traced_benchmark(
        args.benchmark, procs=args.procs, seed=args.seed,
        capacity=args.capacity)
    counts = validate_chrome_trace(result.chrome)
    out_dir = args.out_dir or args.out or "benchmarks/out"
    write_trace_artifacts(result, out_dir)
    text = result.format()
    text += ("\n  chrome schema   : valid "
             f"({counts['slices']} slices, {counts['instants']} instants, "
             f"{counts['flows']} flows)")
    return text


def _cmd_vet(args) -> str:
    """Static partial-deadlock analysis (see docs/STATIC_ANALYSIS.md).

    Exit-code contract: 0 when nothing at or above ``--fail-on`` fires
    and every ``# vet:`` expectation holds (expect/chan mismatches and
    malformed annotations fail even under ``--fail-on never``); under
    ``--crossval``, recall >= ``--min-recall`` with zero false
    positives and (behavioral engine) proven channels >=
    ``--min-proven``; under ``--oracle``, leak reports byte-identical
    proofs-on vs proofs-off.  Failures exit 1 with findings on stderr —
    in ``--json`` mode the JSON document still lands intact on stdout
    first.  Usage errors exit 2 via argparse.
    """
    import json

    from repro.staticcheck import run_crossval, vet_paths
    from repro.telemetry import get_default_hub

    artifact_dir = args.json_dir

    def fail(text: str, message: str) -> None:
        """Emit the report, then fail: JSON stays parseable on stdout."""
        if args.json:
            print(text)
            raise SystemExit(message)
        raise SystemExit(text + "\n" + message)

    if args.oracle:
        from repro.staticcheck.fusion import run_equivalence_oracle
        outcome = run_equivalence_oracle(procs=args.oracle_procs,
                                         seed=args.oracle_seed)
        doc = json.dumps(outcome.to_dict(), indent=2, sort_keys=True) + "\n"
        text = doc if args.json else outcome.summary_text()
        if artifact_dir:
            os.makedirs(artifact_dir, exist_ok=True)
            path = os.path.join(artifact_dir, "vet-oracle.json")
            with open(path, "w") as fh:
                fh.write(doc)
            text += f"\n  artifact        : {path}"
        if not outcome.passed:
            fail(text, "vet oracle FAILED: leak reports diverged "
                       "proofs-on vs proofs-off")
        if outcome.total_proven_sites < args.min_proven:
            fail(text, f"vet oracle FAILED: {outcome.total_proven_sites} "
                       f"proven site(s) below the --min-proven floor "
                       f"{args.min_proven}")
        return text

    if args.crossval:
        result = run_crossval(engine=args.engine)
        text = result.to_json() if args.json else result.format_text()
        if artifact_dir:
            os.makedirs(artifact_dir, exist_ok=True)
            name = ("vet-crossval.json" if args.engine == "rules"
                    else f"vet-crossval-{args.engine}.json")
            path = os.path.join(artifact_dir, name)
            with open(path, "w") as fh:
                fh.write(result.to_json())
            text += f"\n  artifact        : {path}"
        problems = []
        if result.recall < args.min_recall:
            problems.append(f"recall {result.recall:.4f} below the "
                            f"--min-recall floor {args.min_recall:.4f}")
        if result.fp:
            problems.append(f"{result.fp} false positive(s) on the fixed "
                            f"population")
        if args.engine == "behavior" and \
                result.proven_channels < args.min_proven:
            problems.append(
                f"{result.proven_channels} proven channel(s) below the "
                f"--min-proven floor {args.min_proven}")
        if problems:
            fail(text, "vet crossval FAILED: " + "; ".join(problems))
        return text

    vet = vet_paths(args.paths, expect=args.expect, prove=args.prove)
    hub = get_default_hub()
    if hub is not None:
        hub.on_vet_run(vet)
    text = vet.to_json() if args.json else vet.format_text()
    if artifact_dir:
        os.makedirs(artifact_dir, exist_ok=True)
        path = os.path.join(artifact_dir, "vet-report.json")
        with open(path, "w") as fh:
            fh.write(vet.to_json())
        text += f"\n  artifact        : {path}"
    failures = vet.failures(args.fail_on)
    if failures:
        fail(text, "vet FAILED ("
             + f"--fail-on {args.fail_on}):\n  "
             + "\n  ".join(failures))
    return text


def _cmd_run(args) -> str:
    """Run one microbenchmark, optionally with static proofs fused in.

    ``--proofs`` certifies the benchmark body with the behavioral
    engine, installs the per-program certificate registry, and reports
    how many fixpoint scans the proofs skipped alongside the leak
    reports (which are byte-identical either way — that is the
    equivalence oracle's invariant, re-checkable with
    ``repro vet --oracle``).
    """
    from repro.microbench.harness import run_microbenchmark
    from repro.microbench.registry import benchmarks_by_name

    benches = benchmarks_by_name()
    if args.benchmark not in benches:
        raise SystemExit(f"unknown benchmark {args.benchmark!r}; "
                         f"choices include: "
                         + ", ".join(sorted(benches)[:8]) + ", ...")
    bench = benches[args.benchmark]

    if args.fixed and bench.fixed is None:
        raise SystemExit(f"benchmark {bench.name} has no fixed variant")

    registry = None
    proven = 0
    if args.proofs:
        from repro.staticcheck.behavior import analyze_callable_behavior
        from repro.staticcheck.fusion import registry_for_analysis
        body = bench.fixed if args.fixed else bench.body
        analysis = analyze_callable_behavior(body, name=bench.name)
        registry = registry_for_analysis(analysis)
        proven = len(registry)

    holder = {}

    def hook(rt):
        holder["rt"] = rt
        if registry is not None:
            rt.install_proofs(registry)

    res = run_microbenchmark(bench, procs=args.procs, seed=args.seed,
                             use_fixed=args.fixed, rt_hook=hook)
    rt = holder["rt"]
    lines = [
        f"benchmark {bench.name} (procs={args.procs} seed={args.seed}"
        + (" fixed" if args.fixed else "") + ")",
        f"  status    : {res.status}"
        + (f" ({res.panic})" if res.panic else ""),
        f"  leaks     : {res.report_count} report(s), "
        f"{res.reclaimed} goroutine(s) reclaimed",
        f"  gc        : {res.num_gc} cycle(s), "
        f"mark clock {res.mark_clock_ns} ns",
    ]
    if args.proofs:
        skips = sum(cs.proof_skips for cs in rt.collector.stats.cycles)
        lines.append(f"  proofs    : {proven} proven site(s) installed, "
                     f"{skips} fixpoint scan(s) skipped")
    for report in rt.reports.reports:
        lines.append("  " + report.format().replace("\n", "\n  "))
    return "\n".join(lines)


def _cmd_gc_equiv(args) -> str:
    """The atomic-vs-incremental equivalence oracle (see docs/GC.md).

    Runs every microbenchmark (buggy and fixed variants) under both
    ``--gc-mode`` values and requires identical leak reports: same
    goroutines, same detection cycles, byte-identical report logs, and
    matching GC cycle counts and pause totals.  Any divergence is a
    correctness bug in the incremental collector; the process exits 1
    with the mismatches on stderr.
    """
    import json

    from repro.microbench.equivalence import run_equivalence_oracle

    result = run_equivalence_oracle(procs=args.procs, seed=args.seed)
    artifact_dir = args.json_dir
    os.makedirs(artifact_dir, exist_ok=True)
    path = os.path.join(
        artifact_dir, f"gc-equiv-p{args.procs}-s{args.seed}.json")
    with open(path, "w") as fh:
        json.dump(result.to_dict(), fh, indent=2)
    text = result.format() + f"\n  artifact        : {path}"
    if not result.clean:
        raise SystemExit(text + "\ngc equivalence FAILED")
    return text


def _cmd_ablations(args) -> str:
    sections = [
        ("fixpoint strategy", FixpointAblation().run().format()),
        ("detection cadence", CadenceAblation().run().format()),
        ("recovery", RecoveryAblation().run().format()),
    ]
    return "\n\n".join(f"-- {title}\n{body}" for title, body in sections)


_COMMANDS: Dict[str, Callable] = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "figure1": _cmd_figure1,
    "figure3": _cmd_figure3,
    "figure4": _cmd_figure4,
    "rq1b": _cmd_rq1b,
    "rq1c": _cmd_rq1c,
    "ablations": _cmd_ablations,
    "tester": _cmd_tester,
    "chaos": _cmd_chaos,
    "daemon": _cmd_daemon,
    "fleet": _cmd_fleet,
    "dash": _cmd_dash,
    "obs": _cmd_obs,
    "trace": _cmd_trace,
    "vet": _cmd_vet,
    "run": _cmd_run,
    "gc-equiv": _cmd_gc_equiv,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the GOLF paper's tables and figures.",
    )
    parser.add_argument("--out", default=None,
                        help="directory to archive artifacts into")
    # Telemetry plumbing shared by every subcommand: any experiment can
    # run observed (metrics + flight recorder on every runtime it
    # builds) and drop uniform artifacts under --out-dir.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--metrics", action="store_true",
                        help="collect telemetry (INFO-level recorder) and "
                             "write .prom/JSON artifacts")
    common.add_argument("--trace", action="store_true",
                        help="like --metrics but with DEBUG-level "
                             "flight-recorder events (park/wake)")
    common.add_argument("--out-dir", default=None,
                        help="directory for telemetry artifacts "
                             "(default benchmarks/out)")
    common.add_argument("--gc-mode", default=None,
                        choices=sorted(GC_MODES),
                        help="collector to use for every runtime the "
                             "command builds: 'atomic' (single STW "
                             "cycle) or 'incremental' (scheduler-"
                             "interleaved phase machine)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name: str, **kwargs) -> argparse.ArgumentParser:
        return sub.add_parser(name, parents=[common], **kwargs)

    p = add("table1", help="microbenchmark detection rates")
    p.add_argument("--runs", type=int, default=30)

    p = add("table2", help="controlled service metrics")
    p.add_argument("--duration", type=int, default=15,
                   help="virtual seconds of load per cell")

    p = add("table3", help="production overhead")
    p.add_argument("--hours", type=float, default=2.0)

    p = add("figure1", help="blocked goroutines over time")
    p.add_argument("--days", type=int, default=21)

    p = add("figure3", help="GOLF/goleak ratio curve")
    p.add_argument("--packages", type=int, default=300)

    p = add("figure4", help="marking-phase slowdown")
    p.add_argument("--repeats", type=int, default=5)

    p = add("rq1b", help="test-suite totals vs goleak")
    p.add_argument("--packages", type=int, default=300)

    p = add("rq1c", help="24h real-service deployment")
    p.add_argument("--hours", type=float, default=4.0)

    add("ablations", help="design-choice ablations")

    p = add("tester", help="the artifact-appendix testing harness")
    p.add_argument("--match", default="", help="benchmark name regex")
    p.add_argument("--repeats", type=int, default=10)
    p.add_argument("--perf", action="store_true",
                   help="also emit the results-perf.csv comparison")

    p = add("chaos", help="seeded fault-injection campaign (soundness "
                          "under chaos); exits non-zero on any violation")
    p.add_argument("--seeds", type=int, default=50,
                   help="number of seeded fault schedules to run")
    p.add_argument("--scenario", default="mixed",
                   help="fault mix (see repro.chaos.scenarios)")
    p.add_argument("--base-seed", type=int, default=0)
    p.add_argument("--procs", type=int, default=2)
    p.add_argument("--traces", action="store_true",
                   help="include per-schedule fault traces in the JSON")
    p.add_argument("--json-dir", default="benchmarks/out",
                   help="directory for the campaign JSON artifact")

    p = add("daemon", help="recovery smoke: daemon detection-latency SLO, "
                           "checkpoint/rollback e2e, and the chaos recovery "
                           "campaign; exits non-zero on any missed SLO")
    p.add_argument("--seeds", type=int, default=50,
                   help="recovery campaign schedules to run")
    p.add_argument("--base-seed", type=int, default=0)
    p.add_argument("--json-dir", default="benchmarks/out",
                   help="directory for the campaign JSON artifact")

    p = add("fleet", help="sharded multi-runtime fleet with cross-shard "
                          "leak aggregation; exits non-zero on a dirty run "
                          "or mode divergence")
    p.add_argument("--shards", type=int, default=2,
                   help="number of independent runtime shards")
    p.add_argument("--mode", default="sequential",
                   choices=["sequential", "multiprocessing", "both"],
                   help="'sequential' steps shards round-robin in one "
                        "process (the deterministic oracle); "
                        "'multiprocessing' runs one worker per shard; "
                        "'both' runs the two and enforces equivalence")
    p.add_argument("--users", type=int, default=96,
                   help="total users routed across the fleet")
    p.add_argument("--policy", default="hash", choices=["hash", "load"],
                   help="user placement: id-hash or least-expected-load")
    p.add_argument("--workload", default="controlled",
                   choices=["controlled", "production"],
                   help="per-shard leak workload shape")
    p.add_argument("--leak-rate", type=float, default=0.1,
                   help="fraction of requests hitting the leaky path")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--procs", type=int, default=2,
                   help="virtual processors per shard")
    p.add_argument("--daemon-ms", type=float, default=None,
                   help="per-shard detection-daemon interval (virtual "
                        "ms); omitted = GC-cadence detection only")
    p.add_argument("--json-dir", default="benchmarks/out",
                   help="directory for the fleet JSON/.prom artifacts")

    p = add("dash", help="deterministic TSDB dashboard + alert timeline "
                         "over a scraped sequential fleet run")
    p.add_argument("--shards", type=int, default=2,
                   help="number of runtime shards (1 = single runtime)")
    p.add_argument("--users", type=int, default=16,
                   help="total users routed across the fleet")
    p.add_argument("--workload", default="controlled",
                   choices=["controlled", "production"],
                   help="per-shard leak workload shape")
    p.add_argument("--policy", default="hash", choices=["hash", "load"],
                   help="user placement: id-hash or least-expected-load")
    p.add_argument("--leak-rate", type=float, default=0.1,
                   help="fraction of requests hitting the leaky path")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--procs", type=int, default=2,
                   help="virtual processors per shard")
    p.add_argument("--daemon-ms", type=float, default=10.0,
                   help="per-shard detection-daemon interval (virtual ms)")
    p.add_argument("--scrape-ms", type=float, default=5.0,
                   help="TSDB scrape cadence (virtual ms)")
    p.add_argument("--json-dir", default="benchmarks/out",
                   help="directory for the dash JSON artifact")

    p = add("vet", help="static partial-deadlock analysis over goroutine "
                        "bodies; exits non-zero per --fail-on")
    p.add_argument("paths", nargs="*", default=["examples"],
                   help="files or directories to analyze "
                        "(default: examples/)")
    p.add_argument("--json", action="store_true",
                   help="emit the JSON report on stdout instead of text")
    p.add_argument("--fail-on", default="error",
                   choices=["info", "warning", "error", "never"],
                   help="lowest severity that makes the run fail "
                        "(default: error)")
    p.add_argument("--expect", action="store_true",
                   help="enforce '# vet: expect/clean/ok' annotations: "
                        "annotated findings are required, unannotated "
                        "ones fail")
    p.add_argument("--crossval", action="store_true",
                   help="ignore paths; analyze the microbench registry "
                        "and report precision/recall vs GOLF's dynamic "
                        "ground truth")
    p.add_argument("--min-recall", type=float, default=0.75,
                   help="crossval recall floor (default: 0.75)")
    p.add_argument("--prove", action="store_true",
                   help="also run the behavioral-type engine: per-channel "
                        "proven/potential/unknown verdicts, '# vet: "
                        "chan=<label> <verdict>' annotation checks")
    p.add_argument("--engine", default="rules",
                   choices=["rules", "behavior"],
                   help="crossval engine: 'rules' (default) or "
                        "'behavior' (rules fused with behavioral-type "
                        "counterexamples + proven-channel count)")
    p.add_argument("--min-proven", type=int, default=0,
                   help="floor on proven-leak-free channels (behavioral "
                        "crossval) or proven sites (--oracle); "
                        "default: 0")
    p.add_argument("--oracle", action="store_true",
                   help="ignore paths; run the proofs-on vs proofs-off "
                        "equivalence oracle over the microbench corpus "
                        "and both demo services, failing on any "
                        "divergence in leak reports")
    p.add_argument("--oracle-procs", type=int, default=1,
                   help="GOMAXPROCS for oracle program runs (default: 1)")
    p.add_argument("--oracle-seed", type=int, default=0,
                   help="scheduler seed for oracle program runs "
                        "(default: 0)")
    p.add_argument("--json-dir", default=None,
                   help="also write the JSON report into this directory")

    p = add("run", help="run one microbenchmark, optionally with static "
                        "leak-freedom proofs fused into the detector")
    p.add_argument("--benchmark", default="cgo/sendmail",
                   help="microbenchmark name (see repro.microbench)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--procs", type=int, default=2)
    p.add_argument("--fixed", action="store_true",
                   help="run the benchmark's fixed (leak-free) variant")
    p.add_argument("--proofs", action="store_true",
                   help="certify the benchmark with the behavioral "
                        "engine and install the certificate registry so "
                        "the detector skips proven channels")

    p = add("obs", help="run one benchmark fully observed and report "
                        "(metrics, flight recorder, profiles, "
                        "fingerprints)")
    p.add_argument("--benchmark", default="cgo/sendmail",
                   help="microbenchmark name (see repro.microbench)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--procs", type=int, default=2)
    p.add_argument("--fingerprint-db", default=None,
                   help="persistent fingerprint store for cross-run "
                        "leak dedup")

    p = add("trace", help="run one benchmark with the execution tracer "
                          "and write Chrome-trace + why-leaked artifacts")
    p.add_argument("--benchmark", default="cgo/sendmail",
                   help="microbenchmark name (see repro.microbench)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--procs", type=int, default=2)
    p.add_argument("--capacity", type=int, default=200_000,
                   help="trace ring-buffer capacity (events)")

    p = add("gc-equiv", help="atomic-vs-incremental GC equivalence "
                             "oracle over the microbench registry; "
                             "exits non-zero on any divergence")
    p.add_argument("--procs", type=int, default=2)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--json-dir", default="benchmarks/out",
                   help="directory for the oracle JSON artifact")

    p = add("all", help="regenerate everything")
    p.add_argument("--runs", type=int, default=30)
    p.add_argument("--duration", type=int, default=15)
    p.add_argument("--hours", type=float, default=2.0)
    p.add_argument("--days", type=int, default=21)
    p.add_argument("--packages", type=int, default=300)
    p.add_argument("--repeats", type=int, default=5)
    return parser


def _archive(out_dir: Optional[str], name: str, text: str) -> None:
    if out_dir is None:
        return
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "gc_mode", None):
        # Experiments build GolfConfig() internally, which resolves the
        # module-level default, so one flag switches every runtime the
        # command creates (chaos campaigns included).
        set_default_gc_mode(args.gc_mode)
    hub = None
    if getattr(args, "metrics", False) or getattr(args, "trace", False):
        from repro.telemetry import (
            DEBUG,
            INFO,
            TelemetryHub,
            set_default_hub,
        )

        hub = TelemetryHub(
            min_severity=DEBUG if getattr(args, "trace", False) else INFO)
        # Every runtime any experiment builds from here on reports into
        # this hub (Runtime.__init__ auto-attaches the default hub).
        set_default_hub(hub)
    if args.command == "all":
        # tester, chaos, daemon, fleet, dash, obs, trace, vet, and
        # gc-equiv have their own flags and fail semantics; they run as
        # explicit subcommands only.
        commands = [c for c in _COMMANDS
                    if c not in ("tester", "chaos", "daemon", "fleet",
                                 "dash", "obs", "trace", "vet",
                                 "gc-equiv")]
    else:
        commands = [args.command]
    try:
        for name in commands:
            started = time.time()
            text = _COMMANDS[name](args)
            elapsed = time.time() - started
            if getattr(args, "json", False):
                # Keep machine-readable stdout clean of banners.
                print(text, end="" if text.endswith("\n") else "\n")
            else:
                print(f"===== {name} ({elapsed:.1f}s) =====")
                print(text)
                print()
            _archive(args.out, name, text)
    finally:
        if hub is not None:
            from repro.telemetry import set_default_hub, write_artifacts

            set_default_hub(None)
            out_dir = (getattr(args, "out_dir", None) or args.out
                       or "benchmarks/out")
            paths = write_artifacts(hub, out_dir,
                                    f"{args.command}-telemetry")
            for kind in sorted(paths):
                print(f"telemetry {kind}: {paths[kind]}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via -m
    sys.exit(main())
