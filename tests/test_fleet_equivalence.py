"""Mode equivalence: sequential (oracle) vs multiprocessing fleets.

The acceptance surface of the fleet design: a shard's execution is a
pure function of its picklable spec, so running shards interleaved in
one process or in parallel worker processes must produce identical
aggregated leak-report logs, fingerprint sets, metrics, and artifacts.
"""

import pytest

from repro.fleet import FleetConfig, equivalence_diff, run_fleet


def _run_both(config):
    return (run_fleet(config, "sequential"),
            run_fleet(config, "multiprocessing"))


class TestModeEquivalence:
    def test_identical_artifacts_and_logs(self):
        config = FleetConfig(shards=2, seed=11, users=16, leak_rate=0.3,
                             min_requests=1, max_requests=3)
        seq, mp = _run_both(config)
        assert seq.clean and mp.clean
        assert equivalence_diff(seq, mp) == []
        # Spell the headline comparisons out, not just via the oracle:
        assert seq.report_log_text() == mp.report_log_text()
        assert seq.fingerprints.fingerprints() == \
            mp.fingerprints.fingerprints()
        assert seq.prom_text() == mp.prom_text()
        da, db = seq.to_dict(), mp.to_dict()
        da.pop("mode"), db.pop("mode")
        assert da == db

    @pytest.mark.parametrize("policy", ["hash", "load"])
    def test_equivalent_under_both_routing_policies(self, policy):
        config = FleetConfig(shards=3, seed=2, users=15, leak_rate=0.4,
                             min_requests=1, max_requests=2, policy=policy)
        seq, mp = _run_both(config)
        assert equivalence_diff(seq, mp) == []

    def test_equivalent_with_detection_daemon(self):
        config = FleetConfig(shards=2, seed=5, users=10, leak_rate=0.5,
                             min_requests=1, max_requests=2,
                             daemon_interval_ms=10.0)
        seq, mp = _run_both(config)
        assert equivalence_diff(seq, mp) == []
        assert all(s.daemon_checks > 0 for s in seq.shards)

    def test_equivalent_on_production_workload(self):
        config = FleetConfig(shards=2, seed=13, users=10, leak_rate=0.5,
                             min_requests=1, max_requests=2,
                             workload="production")
        seq, mp = _run_both(config)
        assert seq.total_leaks_detected > 0
        assert equivalence_diff(seq, mp) == []

    def test_oracle_reports_divergence(self):
        # Different seeds must NOT be equivalent — the oracle is not
        # vacuously true.
        a = run_fleet(FleetConfig(shards=2, seed=1, users=10,
                                  leak_rate=0.5), "sequential")
        b = run_fleet(FleetConfig(shards=2, seed=2, users=10,
                                  leak_rate=0.5), "sequential")
        assert equivalence_diff(a, b) != []
