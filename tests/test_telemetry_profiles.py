"""Tests for leak fingerprints, the fingerprint store, and heap profiles."""

import json

from repro.core.reports import DeadlockReport
from repro.telemetry import (
    FingerprintStore,
    format_heap_profile,
    heap_profile,
    leak_fingerprint,
    normalize_site,
)


def _report(goid=7, go_site="/home/a/checkout/src/mail.py:42",
            block_site="/home/a/checkout/src/mail.py:99",
            wait_reason="chan send", label="",
            stack=("sender (/home/a/checkout/src/mail.py:99)",),
            gc_cycle=1, detected_at_ns=1000):
    return DeadlockReport(goid, f"g{goid}", label, go_site, block_site,
                          wait_reason, list(stack), gc_cycle,
                          detected_at_ns)


class TestNormalization:
    def test_paths_reduced_to_basenames(self):
        assert normalize_site("/long/path/to/file.py:123") == "file.py:123"
        assert normalize_site("relative/file.py:9") == "file.py:9"

    def test_pseudo_sites_pass_through(self):
        assert normalize_site("<main>") == "<main>"
        assert normalize_site("<host>") == "<host>"
        assert normalize_site("") == ""


class TestFingerprint:
    def test_stable_across_goroutine_identity(self):
        # Same defect, different goroutine / cycle / time: one fingerprint.
        a = _report(goid=7, gc_cycle=1, detected_at_ns=1000)
        b = _report(goid=91, gc_cycle=44, detected_at_ns=999_999)
        assert leak_fingerprint(a) == leak_fingerprint(b)
        assert len(leak_fingerprint(a)) == 16

    def test_stable_across_checkout_prefix(self):
        a = _report(go_site="/ci/build/src/mail.py:42",
                    block_site="/ci/build/src/mail.py:99",
                    stack=("sender (/ci/build/src/mail.py:99)",))
        assert leak_fingerprint(a) == leak_fingerprint(_report())

    def test_distinguishes_defects(self):
        other_site = _report(block_site="/home/a/checkout/src/mail.py:120")
        other_reason = _report(wait_reason="chan receive")
        assert leak_fingerprint(other_site) != leak_fingerprint(_report())
        assert leak_fingerprint(other_reason) != leak_fingerprint(_report())


class TestFingerprintStore:
    def test_dedups_within_a_run(self):
        store = FingerprintStore()
        store.begin_run("run-a")
        _, new1 = store.observe(_report(goid=1))
        record, new2 = store.observe(_report(goid=2))
        assert new1 and not new2
        assert len(store) == 1
        assert record.count == 2
        assert record.runs == ["run-a"]

    def test_dedups_across_runs(self):
        store = FingerprintStore()
        store.begin_run("nightly-1")
        store.observe(_report())
        store.begin_run("nightly-2")
        record, is_new = store.observe(_report())
        assert not is_new
        assert record.runs == ["nightly-1", "nightly-2"]
        assert store.new_in_current_run == []

    def test_labels_aggregated(self):
        store = FingerprintStore()
        store.observe(_report(label="cgo/sendmail"))
        record, _ = store.observe(_report(label="cgo/sendmail"))
        assert record.labels == ["cgo/sendmail"]

    def test_records_sorted_by_count(self):
        store = FingerprintStore()
        for _ in range(3):
            store.observe(_report())
        store.observe(_report(wait_reason="select"))
        counts = [r.count for r in store.records()]
        assert counts == [3, 1]

    def test_save_load_merges(self, tmp_path):
        path = str(tmp_path / "fp.json")
        first = FingerprintStore()
        first.begin_run("run-1")
        first.observe(_report())
        first.save(path)

        second = FingerprintStore()
        assert second.load(path) == 1
        second.begin_run("run-2")
        record, is_new = second.observe(_report())
        assert not is_new  # the defect was already known from run-1
        assert record.count == 2
        assert record.runs == ["run-1", "run-2"]

    def test_save_is_json_and_deterministic(self, tmp_path):
        store = FingerprintStore()
        store.begin_run("r")
        store.observe(_report())
        p1, p2 = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        store.save(p1)
        store.save(p2)
        with open(p1) as f1, open(p2) as f2:
            assert f1.read() == f2.read()
        with open(p1) as fh:
            data = json.load(fh)
        assert data["records"][0]["go_site"] == "mail.py:42"

    def test_format_triage_table(self):
        store = FingerprintStore()
        store.observe(_report(label="cgo/sendmail"))
        text = store.format()
        assert "1 leak fingerprint(s), 1 observation(s)" in text
        assert "mail.py:42" in text
        assert "cgo/sendmail" in text


class TestHeapProfile:
    def test_groups_by_allocation_site(self, rt):
        from repro.runtime.instructions import Go, MakeChan, Recv, Sleep
        from tests.conftest import run_to_end

        def main():
            ch = yield MakeChan(0)

            def waiter(c):
                yield Recv(c)

            for _ in range(3):
                yield Go(waiter, ch, name="waiter")
            yield Sleep(1_000_000)

        run_to_end(rt, main)
        records = heap_profile(rt.heap)
        assert records
        total_objects = sum(r.objects for r in records)
        assert total_objects == rt.heap.live_objects
        # Biggest-retainer-first ordering.
        sizes = [r.bytes for r in records]
        assert sizes == sorted(sizes, reverse=True)
        text = format_heap_profile(records)
        assert text.startswith("heap profile:")
        assert "chan" in text


class TestFingerprintStoreMerge:
    def _store(self, run, *reports):
        store = FingerprintStore()
        store.begin_run(run)
        for report in reports:
            store.observe(report)
        return store

    def test_merge_into_empty_adopts_everything(self):
        src = self._store("run-a", _report(), _report(goid=9),
                          _report(wait_reason="select"))
        dst = FingerprintStore()
        stats = dst.merge(src)
        assert stats.added == 2
        assert stats.conflicts == 0
        assert stats.observations == 3
        assert stats.total == 2
        assert dst.fingerprints() == src.fingerprints()

    def test_merge_counts_conflicts_and_sums_observations(self):
        dst = self._store("shard-0", _report(), _report())
        src = self._store("shard-1", _report(),
                          _report(wait_reason="select"))
        stats = dst.merge(src)
        assert stats.added == 1       # the select-leak is new
        assert stats.conflicts == 1   # the chan-send leak collided
        assert stats.observations == 2
        shared = [r for r in dst.records() if r.count == 3][0]
        assert shared.runs == ["shard-0", "shard-1"]

    def test_merge_unions_labels_and_copies_records(self):
        dst = self._store("a", _report(label="svc/mail"))
        src = self._store("b", _report(label="svc/web"))
        dst.merge(src)
        (record,) = dst.records()
        assert record.labels == ["svc/mail", "svc/web"]
        # The source store must be untouched by the merge.
        (src_record,) = src.records()
        assert src_record.count == 1
        assert src_record.labels == ["svc/web"]
        src_record.count += 100
        assert dst.records()[0].count != 102

    def test_merge_is_associative_on_counts(self):
        a = self._store("a", _report(), _report())
        b = self._store("b", _report())
        c = self._store("c", _report(wait_reason="select"))
        left = FingerprintStore()
        left.merge(a)
        left.merge(b)
        left.merge(c)
        right = FingerprintStore()
        bc = FingerprintStore()
        bc.merge(b)
        bc.merge(c)
        right.merge(a)
        right.merge(bc)
        assert left.as_dict()["records"] == right.as_dict()["records"]

    def test_from_dict_round_trips(self):
        store = self._store("r", _report(), _report(goid=3))
        clone = FingerprintStore.from_dict(store.as_dict())
        assert clone.as_dict() == store.as_dict()
