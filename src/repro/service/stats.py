"""Small statistics helpers for workload metrics."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of an ascending-sorted sequence, with
    linear interpolation (matches the common latency-percentile usage)."""
    if not sorted_values:
        return 0.0
    if q <= 0:
        return float(sorted_values[0])
    if q >= 1:
        return float(sorted_values[-1])
    pos = q * (len(sorted_values) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return float(sorted_values[lo])
    frac = pos - lo
    return float(sorted_values[lo]) * (1 - frac) + float(sorted_values[hi]) * frac


def mean_std(values: Sequence[float]) -> Tuple[float, float]:
    """Arithmetic mean and population standard deviation."""
    if not values:
        return 0.0, 0.0
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / len(values)
    return mean, math.sqrt(var)


def latency_summary(latencies_ns: List[int]) -> dict:
    """Percentile table in milliseconds, shaped like the paper's Table 2."""
    values = sorted(latencies_ns)
    to_ms = 1e-6
    return {
        "count": len(values),
        "p50_ms": percentile(values, 0.50) * to_ms,
        "p90_ms": percentile(values, 0.90) * to_ms,
        "p95_ms": percentile(values, 0.95) * to_ms,
        "p99_ms": percentile(values, 0.99) * to_ms,
        "p999_ms": percentile(values, 0.999) * to_ms,
        "p99995_ms": percentile(values, 0.99995) * to_ms,
        "max_ms": (values[-1] * to_ms) if values else 0.0,
    }
