"""Detection latency: how long a leak lives before GOLF reports it.

Not a paper table, but the operational flip side of the paper's
section 6.2 remark (detect every Nth cycle "at no cost to efficacy"):
the cost that *does* move is time-to-detection.  This experiment leaks
goroutines at known virtual times under different periodic-GC intervals
and detection cadences, and reports the latency distribution from leak
manifestation to GOLF report.

The daemon sweep (:func:`run_daemon_latency_sweep`) adds the detection
daemon's timer-driven fixpoint to the picture: with GC pinned at a slow
operational cadence, the daemon's interval — not the GC interval —
bounds time-to-detection, which is the SLO the always-on daemon exists
to provide.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import GolfConfig
from repro.runtime.api import Runtime
from repro.runtime.clock import MICROSECOND, MILLISECOND, SECOND
from repro.runtime.instructions import Go, MakeChan, Now, Send, Sleep
from repro.service.stats import percentile


class LatencyResult:
    """Detection latencies for one (gc_interval, detect_every) setting.

    ``daemon_interval_ms`` is None for GC-cadence-only runs; when set,
    the detection daemon was running at that interval alongside the
    periodic GC.
    """

    __slots__ = ("gc_interval_ms", "detect_every", "latencies_ns",
                 "leaks", "detected", "daemon_interval_ms")

    def __init__(self, gc_interval_ms: float, detect_every: int,
                 daemon_interval_ms: Optional[float] = None):
        self.gc_interval_ms = gc_interval_ms
        self.detect_every = detect_every
        self.daemon_interval_ms = daemon_interval_ms
        self.latencies_ns: List[int] = []
        self.leaks = 0
        self.detected = 0

    def mean_ms(self) -> float:
        if not self.latencies_ns:
            return 0.0
        return sum(self.latencies_ns) / len(self.latencies_ns) / 1e6

    def p99_ms(self) -> float:
        return percentile(sorted(self.latencies_ns), 0.99) / 1e6

    def __repr__(self) -> str:
        daemon = (f" daemon={self.daemon_interval_ms}ms"
                  if self.daemon_interval_ms is not None else "")
        return (
            f"<latency gc={self.gc_interval_ms}ms every={self.detect_every}"
            f"{daemon} mean={self.mean_ms():.2f}ms>"
        )


def run_detection_latency(
    gc_interval_ms: float = 2.0,
    detect_every: int = 1,
    leaks: int = 60,
    spacing_us: int = 500,
    seed: int = 0,
    daemon_interval_ms: Optional[float] = None,
) -> LatencyResult:
    """Leak ``leaks`` goroutines ``spacing_us`` apart; measure report lag.

    The leak's *manifestation time* is when its goroutine parks on the
    orphaned channel (recorded just before the blocking send); the
    report timestamp comes from the collector.  With
    ``daemon_interval_ms`` set, the detection daemon also runs its
    timer-driven fixpoint, so reports land at whichever of the two
    cadences fires first.
    """
    result = LatencyResult(gc_interval_ms, detect_every, daemon_interval_ms)
    manifested: Dict[str, int] = {}

    def on_report(report):
        if report.label in manifested:
            result.detected += 1
            result.latencies_ns.append(
                report.detected_at_ns - manifested[report.label])

    config = GolfConfig(detect_every=detect_every, on_report=on_report)
    rt = Runtime(procs=2, seed=seed, config=config)
    rt.enable_periodic_gc(int(gc_interval_ms * MILLISECOND))
    if daemon_interval_ms is not None:
        rt.detect_partial_deadlock(interval_ms=daemon_interval_ms)

    def main():
        def leaker(c, tag):
            now = yield Now()
            manifested[tag] = now
            yield Send(c, 1)

        for i in range(leaks):
            ch = yield MakeChan(0)
            tag = f"leak-{i}"
            yield Go(leaker, ch, tag, name=tag)
            del ch
            yield Sleep(spacing_us * MICROSECOND)
        # Let the slower of the two detection cadences catch the tail.
        tail_ms = gc_interval_ms
        if daemon_interval_ms is not None:
            tail_ms = max(tail_ms, daemon_interval_ms)
        yield Sleep(int((20.0 + tail_ms) * MILLISECOND))

    rt.spawn_main(main)
    rt.run(until_ns=10 * SECOND, max_instructions=10_000_000)
    if daemon_interval_ms is not None:
        rt.stop_partial_deadlock_detection()
    rt.gc_until_quiescent()
    result.leaks = leaks
    return result


def run_latency_sweep(
    gc_intervals_ms: Sequence[float] = (0.5, 2.0, 8.0),
    cadences: Sequence[int] = (1, 5),
    leaks: int = 60,
    seed: int = 0,
) -> List[LatencyResult]:
    """The full sweep: every (interval, cadence) combination."""
    results = []
    for interval in gc_intervals_ms:
        for every in cadences:
            results.append(run_detection_latency(
                gc_interval_ms=interval, detect_every=every,
                leaks=leaks, seed=seed))
    return results


def run_daemon_latency_sweep(
    daemon_intervals_ms: Sequence[float] = (5.0, 20.0, 50.0, 200.0),
    gc_interval_ms: float = 100.0,
    leaks: int = 60,
    seed: int = 0,
) -> List[LatencyResult]:
    """The daemon SLO curve: latency vs daemon interval, plus baseline.

    GC is pinned at a slow operational cadence (default 100ms, the
    controlled service's production setting); the first row is the
    GC-cadence-only baseline, the rest run the daemon at each interval.
    Detection latency should track ``min(daemon interval, GC interval)``
    — the daemon rows below the GC cadence beat the baseline, the rows
    above it collapse onto it.
    """
    results = [run_detection_latency(
        gc_interval_ms=gc_interval_ms, leaks=leaks, seed=seed)]
    for interval in daemon_intervals_ms:
        results.append(run_detection_latency(
            gc_interval_ms=gc_interval_ms, leaks=leaks, seed=seed,
            daemon_interval_ms=interval))
    return results


def format_daemon_sweep(results: List[LatencyResult]) -> str:
    lines = [f"{'daemon':>10s} {'gc interval':>12s} "
             f"{'detected':>9s} {'mean lat':>9s} {'p99 lat':>9s}"]
    for r in results:
        daemon = (f"{r.daemon_interval_ms:>8.1f}ms"
                  if r.daemon_interval_ms is not None else f"{'off':>10s}")
        lines.append(
            f"{daemon} {r.gc_interval_ms:>10.1f}ms "
            f"{r.detected:>4d}/{r.leaks:<4d} "
            f"{r.mean_ms():>7.2f}ms {r.p99_ms():>7.2f}ms"
        )
    lines.append("(detection latency tracks min(daemon interval, GC "
                 "interval): the always-on daemon bounds time-to-detection "
                 "independently of GC cadence)")
    return "\n".join(lines)


def format_latency_sweep(results: List[LatencyResult]) -> str:
    lines = [f"{'gc interval':>12s} {'detect every':>13s} "
             f"{'detected':>9s} {'mean lat':>9s} {'p99 lat':>9s}"]
    for r in results:
        lines.append(
            f"{r.gc_interval_ms:>10.1f}ms {r.detect_every:>13d} "
            f"{r.detected:>4d}/{r.leaks:<4d} "
            f"{r.mean_ms():>7.2f}ms {r.p99_ms():>7.2f}ms"
        )
    lines.append("(every leak is eventually detected; cadence and GC "
                 "interval only move the latency)")
    return "\n".join(lines)
