"""Tests for the scheduler: dispatch, timers, cores, reuse, determinism."""

import pytest

from repro import GlobalDeadlockError, GoPanic, Runtime
from repro.errors import InvalidInstruction
from repro.runtime.clock import MICROSECOND, MILLISECOND
from repro.runtime.goroutine import GStatus
from repro.runtime.instructions import (
    Go,
    Gosched,
    MakeChan,
    Now,
    Recv,
    Send,
    Sleep,
    Work,
)
from repro.runtime.scheduler import RunStatus
from tests.conftest import run_to_end


class TestLifecycle:
    def test_main_exit_ends_run(self, rt):
        def main():
            yield Gosched()

        assert run_to_end(rt, main) == RunStatus.MAIN_EXITED

    def test_main_exit_abandons_other_goroutines(self, rt):
        def main():
            def background():
                while True:
                    yield Sleep(MICROSECOND)

            yield Go(background)

        run_to_end(rt, main)
        lingering = [g for g in rt.sched.allgs if g.status != GStatus.DEAD]
        assert len(lingering) == 1

    def test_timeout_status(self, rt):
        def main():
            yield Sleep(MILLISECOND)

        rt.spawn_main(main)
        assert rt.run(until_ns=10 * MICROSECOND) == RunStatus.TIMEOUT
        assert rt.clock.now == 10 * MICROSECOND

    def test_instruction_limit(self, rt):
        def main():
            while True:
                yield Gosched()

        rt.spawn_main(main)
        assert rt.run(max_instructions=100) == RunStatus.INSTRUCTION_LIMIT

    def test_global_deadlock_detected(self, rt):
        def main():
            ch = yield MakeChan(0)
            yield Recv(ch)

        rt.spawn_main(main)
        with pytest.raises(GlobalDeadlockError):
            rt.run()

    def test_sleeping_goroutine_is_not_global_deadlock(self, rt):
        def main():
            ch = yield MakeChan(0)

            def waiter():
                yield Recv(ch)

            yield Go(waiter)
            yield Sleep(50 * MICROSECOND)
            yield Send(ch, 1)

        assert run_to_end(rt, main) == RunStatus.MAIN_EXITED

    def test_return_value_recorded(self, rt):
        def main():
            yield Gosched()
            return "result"

        run_to_end(rt, main)
        assert rt.sched.main_g.finished_value == "result"

    def test_non_generator_body_rejected(self, rt):
        with pytest.raises(TypeError):
            rt.spawn_main(lambda: 42)

    def test_yielding_garbage_crashes(self, rt):
        def main():
            yield "not an instruction"

        rt.spawn_main(main)
        with pytest.raises(InvalidInstruction):
            rt.run()

    def test_user_exception_propagates(self, rt):
        def main():
            yield Gosched()
            raise RuntimeError("user bug")

        rt.spawn_main(main)
        with pytest.raises(RuntimeError, match="user bug"):
            rt.run()

    def test_panic_runs_finally_blocks(self, rt):
        cleaned = []

        def main():
            ch = yield MakeChan(0)

            def worker():
                try:
                    yield Send(ch, 1)  # woken with panic on close
                finally:
                    cleaned.append(True)

            yield Go(worker)
            yield Sleep(10 * MICROSECOND)
            from repro.runtime.instructions import Close
            yield Close(ch)
            yield Sleep(10 * MICROSECOND)

        rt.spawn_main(main)
        with pytest.raises(GoPanic):
            rt.run()
        assert cleaned == [True]


class TestTimers:
    def test_sleep_advances_virtual_time(self, rt):
        times = {}

        def main():
            times["before"] = yield Now()
            yield Sleep(500 * MICROSECOND)
            times["after"] = yield Now()

        run_to_end(rt, main)
        assert times["after"] - times["before"] >= 500 * MICROSECOND

    def test_timers_fire_in_order(self, rt):
        order = []

        def main():
            def sleeper(ns, tag):
                yield Sleep(ns)
                order.append(tag)

            yield Go(sleeper, 30 * MICROSECOND, "c")
            yield Go(sleeper, 10 * MICROSECOND, "a")
            yield Go(sleeper, 20 * MICROSECOND, "b")
            yield Sleep(100 * MICROSECOND)

        run_to_end(rt, main)
        assert order == ["a", "b", "c"]

    def test_timer_fires_while_processor_busy(self):
        """The fix for the timer/busy-processor bug: with 2 cores, a
        sleeper must wake on the idle core despite long work elsewhere."""
        rt = Runtime(procs=2, seed=1)
        times = {}

        def main():
            def hog():
                yield Work(500)  # 500us non-preemptible

            yield Go(hog)
            t0 = yield Now()
            yield Sleep(10 * MICROSECOND)
            times["delay"] = (yield Now()) - t0

        rt.spawn_main(main)
        rt.run()
        assert times["delay"] < 50 * MICROSECOND


class TestVirtualCores:
    def test_single_core_serializes_work(self):
        rt = Runtime(procs=1, seed=1)
        times = {}

        def main():
            def hog():
                yield Work(100)

            t0 = yield Now()
            yield Go(hog)
            yield Sleep(MICROSECOND)
            times["elapsed"] = (yield Now()) - t0

        rt.spawn_main(main)
        rt.run()
        # On one core the hog's 100us of non-preemptible work must fit
        # somewhere between the spawn and the post-sleep resumption.
        assert times["elapsed"] >= 100 * MICROSECOND

    def test_two_cores_run_work_in_parallel(self):
        rt = Runtime(procs=2, seed=1)

        def main():
            done = yield MakeChan(0)

            def hog(tag):
                yield Work(100)
                yield Send(done, tag)

            yield Go(hog, "x")
            yield Go(hog, "y")
            yield Recv(done)
            yield Recv(done)

        rt.spawn_main(main)
        rt.run()
        # Two 100us jobs in parallel finish in ~100us, not ~200us.
        assert rt.clock.now < 180 * MICROSECOND

    def test_invalid_proc_count_rejected(self):
        with pytest.raises(ValueError):
            Runtime(procs=0)


class TestDeterminism:
    def _trace(self, seed, procs=2):
        rt = Runtime(procs=procs, seed=seed)
        trace = []

        def main():
            ch = yield MakeChan(4)

            def worker(i):
                yield Work(1)
                yield Send(ch, i)

            for i in range(4):
                yield Go(worker, i)
            for _ in range(4):
                v, _ = yield Recv(ch)
                trace.append(v)

        rt.spawn_main(main)
        rt.run()
        return trace

    def test_same_seed_same_schedule(self):
        assert self._trace(3) == self._trace(3)

    def test_different_seeds_differ_somewhere(self):
        traces = {tuple(self._trace(s)) for s in range(8)}
        assert len(traces) > 1


class TestGoroutineReuse:
    def test_descriptors_recycled(self, rt):
        def main():
            def short():
                yield Gosched()

            for _ in range(10):
                yield Go(short)
                yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        assert rt.sched.goroutines_reused > 0
        # Far fewer descriptors than goroutines ever spawned.
        assert len(rt.sched.allgs) < rt.sched.goroutines_spawned

    def test_goids_stay_unique_across_reuse(self, rt):
        seen = []

        def main():
            def short():
                yield Gosched()

            for _ in range(6):
                g = yield Go(short)
                seen.append(g.goid)
                yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        assert len(set(seen)) == len(seen)

    def test_spawn_sites_recorded(self, rt):
        children = []

        def main():
            def child():
                yield Gosched()

            g = yield Go(child)
            children.append(g)
            yield Sleep(5 * MICROSECOND)

        run_to_end(rt, main)
        assert "test_scheduler.py" in children[0].go_site


class TestCpuAccounting:
    def test_busy_time_accumulates(self, rt):
        def main():
            yield Work(100)

        run_to_end(rt, main)
        assert rt.sched.cpu_busy_ns >= 100 * MICROSECOND
