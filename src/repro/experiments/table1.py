"""Table 1: microbenchmark detection rates by virtual core count.

Runs every microbenchmark ``runs`` times under each GOMAXPROCS
configuration and tallies, per annotated leaky ``go`` site, the number of
runs in which GOLF reported a partial deadlock there.  The formatter
prints the paper's table: one row per flaky site, a collapsed "remaining"
row for sites detected in 100% of runs, and the aggregated detection
percentage per configuration.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.microbench.harness import run_microbenchmark
from repro.microbench.registry import Microbenchmark, all_benchmarks

DEFAULT_PROCS = (1, 2, 4, 10)


class Table1Result:
    """Detection counts per (site, core count)."""

    def __init__(self, runs: int, procs_list: Sequence[int]):
        self.runs = runs
        self.procs_list = tuple(procs_list)
        #: site label -> {procs: detections}
        self.counts: Dict[str, Dict[int, int]] = {}
        self.panics = 0
        self.total_runs = 0

    def record(self, site: str, procs: int, detected: bool) -> None:
        row = self.counts.setdefault(
            site, {p: 0 for p in self.procs_list})
        if detected:
            row[procs] += 1

    def site_rate(self, site: str) -> float:
        """Detection rate for one site across all configurations."""
        row = self.counts.get(site)
        if not row:
            return 0.0
        return sum(row.values()) / (self.runs * len(self.procs_list))

    def aggregated(self, procs: Optional[int] = None) -> float:
        """Aggregate detection rate (per core count, or overall)."""
        if not self.counts:
            return 0.0
        if procs is None:
            total = sum(sum(row.values()) for row in self.counts.values())
            denom = self.runs * len(self.procs_list) * len(self.counts)
        else:
            total = sum(row[procs] for row in self.counts.values())
            denom = self.runs * len(self.counts)
        return total / denom

    def perfect_sites(self) -> List[str]:
        return [s for s in sorted(self.counts) if self.site_rate(s) >= 1.0]

    def imperfect_sites(self) -> List[str]:
        return [s for s in sorted(self.counts) if self.site_rate(s) < 1.0]

    def detected_at_least_once(self) -> int:
        return sum(
            1 for row in self.counts.values() if sum(row.values()) > 0
        )


def run_table1(
    runs: int = 100,
    procs_list: Sequence[int] = DEFAULT_PROCS,
    benchmarks: Optional[List[Microbenchmark]] = None,
    base_seed: int = 0,
    progress: Optional[Callable[[int, int], None]] = None,
) -> Table1Result:
    """Execute the Table 1 experiment.

    ``runs=100`` matches the paper; smaller values give a faster,
    noisier table.
    """
    benches = benchmarks if benchmarks is not None else all_benchmarks()
    result = Table1Result(runs, procs_list)
    total_jobs = len(benches) * len(procs_list) * runs
    done = 0
    for bench in benches:
        for procs in procs_list:
            for run in range(runs):
                seed = base_seed + run * 7919 + procs * 104729
                outcome = run_microbenchmark(bench, procs=procs, seed=seed)
                result.total_runs += 1
                if outcome.panic is not None:
                    result.panics += 1
                for site in bench.sites:
                    result.record(site, procs,
                                  site in outcome.detected)
                done += 1
                if progress is not None and done % 500 == 0:
                    progress(done, total_jobs)
    return result


def format_table1(result: Table1Result) -> str:
    """Render the paper-style table."""
    lines = []
    header = (
        f"{'Benchmark line':34s} "
        + " ".join(f"{p:>4d}" for p in result.procs_list)
        + f" {'Total':>8s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for site in result.imperfect_sites():
        row = result.counts[site]
        cells = " ".join(f"{row[p]:>4d}" for p in result.procs_list)
        lines.append(
            f"{site:34s} {cells} {result.site_rate(site):>7.2%}"
        )
    perfect = result.perfect_sites()
    if perfect:
        lines.append(
            f"Remaining {len(perfect)} go instructions"
            f"{'':<{max(1, 34 - 24 - len(str(len(perfect))))}s}"
            f" {'100.00%':>28s}"
        )
    agg = " ".join(
        f"{result.aggregated(p):>4.0%}" for p in result.procs_list
    )
    lines.append(f"{'Aggregated (%)':34s} {agg} {result.aggregated():>7.2%}")
    lines.append(
        f"Sites detected at least once: "
        f"{result.detected_at_least_once()}/{len(result.counts)}"
    )
    if result.panics:
        lines.append(
            f"[runtime failure] in {result.panics}/{result.total_runs} runs"
        )
    return "\n".join(lines)
