"""The atomic-vs-incremental GC equivalence oracle.

The correctness proof for the incremental collector is behavioral: for
every program in the microbenchmark registry, under a fixed
``(procs, seed)``, the two ``--gc-mode`` values must produce *identical*
leak reports — same goroutines, same detection cycles, byte-identical
report renderings — and identical virtual-clock totals.  Both the CLI
(``python -m repro gc-equiv``) and the test suite
(``tests/test_gc_equivalence.py``) run this module, so CI and local
pytest enforce the same oracle.

Fixed (leak-free) benchmark variants are included: they must report
*nothing* in both modes, which guards against the incremental collector
inventing false positives just as much as missing true ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import GolfConfig
from repro.microbench.harness import run_microbenchmark
from repro.microbench.registry import Microbenchmark, all_benchmarks

#: What the oracle compares, per run: the fully rendered report log
#: (goid, wait reason, sites, stack), each report's detection cycle, the
#: number of GC cycles, and the total/maximum STW pause.  Absolute
#: virtual timestamps are deliberately *not* compared: splitting one
#: atomic pause into setup+termination windows moves where timer
#: deadlines land relative to GC, so on timeout-driven programs later
#: cycles legitimately start a few pause-widths apart even though every
#: verdict, cycle number, and pause total is identical.
Signature = Tuple[str, Tuple[Tuple[int, int], ...], int, int, int]


def _signature(rt) -> Signature:
    log = "\n---\n".join(r.format() for r in rt.reports)
    cycles = tuple((r.goid, r.gc_cycle) for r in rt.reports)
    stats = rt.collector.stats
    return log, cycles, stats.num_gc, stats.pause_total_ns, stats.max_pause_ns


class BenchComparison:
    """One benchmark run under both gc modes."""

    __slots__ = ("name", "variant", "atomic", "incremental")

    def __init__(self, name: str, variant: str,
                 atomic: Signature, incremental: Signature):
        self.name = name
        self.variant = variant
        self.atomic = atomic
        self.incremental = incremental

    @property
    def match(self) -> bool:
        return self.atomic == self.incremental

    def describe_mismatch(self) -> str:
        a_log, a_cycles, a_ngc, a_total, a_max = self.atomic
        i_log, i_cycles, i_ngc, i_total, i_max = self.incremental
        parts = [f"{self.name} [{self.variant}]:"]
        if a_log != i_log:
            parts.append(f"  report log differs:\n"
                         f"  -- atomic --\n{a_log or '<empty>'}\n"
                         f"  -- incremental --\n{i_log or '<empty>'}")
        if a_cycles != i_cycles:
            parts.append(f"  detection (goid, cycle) differ: "
                         f"atomic={a_cycles} incremental={i_cycles}")
        if a_ngc != i_ngc:
            parts.append(f"  num_gc differs: atomic={a_ngc} "
                         f"incremental={i_ngc}")
        if (a_total, a_max) != (i_total, i_max):
            parts.append(f"  pause totals differ: "
                         f"atomic=({a_total}, {a_max}) "
                         f"incremental=({i_total}, {i_max})")
        return "\n".join(parts)


class EquivalenceResult:
    """Outcome of one oracle sweep."""

    def __init__(self, procs: int, seed: int):
        self.procs = procs
        self.seed = seed
        self.comparisons: List[BenchComparison] = []

    @property
    def mismatches(self) -> List[BenchComparison]:
        return [c for c in self.comparisons if not c.match]

    @property
    def clean(self) -> bool:
        return not self.mismatches

    def format(self) -> str:
        lines = [
            f"gc equivalence oracle (procs={self.procs}, seed={self.seed})",
            f"  runs compared   : {len(self.comparisons)}",
            f"  mismatches      : {len(self.mismatches)}",
        ]
        for c in self.mismatches:
            lines.append(c.describe_mismatch())
        if self.clean:
            lines.append("  verdict         : EQUIVALENT")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "procs": self.procs,
            "seed": self.seed,
            "runs": len(self.comparisons),
            "mismatches": [c.describe_mismatch() for c in self.mismatches],
            "clean": self.clean,
        }


def compare_benchmark(bench: Microbenchmark, procs: int, seed: int,
                      use_fixed: bool = False) -> BenchComparison:
    """Run ``bench`` under both gc modes and compare signatures."""
    sigs = {}
    for mode in ("atomic", "incremental"):
        captured = []
        run_microbenchmark(
            bench, procs=procs, seed=seed,
            config=GolfConfig(gc_mode=mode),
            use_fixed=use_fixed,
            rt_hook=captured.append,
        )
        sigs[mode] = _signature(captured[0])
    return BenchComparison(bench.name, "fixed" if use_fixed else "buggy",
                           sigs["atomic"], sigs["incremental"])


def run_equivalence_oracle(
    procs: int = 2,
    seed: int = 7,
    benchmarks: Optional[Sequence[Microbenchmark]] = None,
    include_fixed: bool = True,
) -> EquivalenceResult:
    """Sweep the registry (buggy + fixed variants) under both gc modes."""
    result = EquivalenceResult(procs, seed)
    for bench in (benchmarks if benchmarks is not None else all_benchmarks()):
        result.comparisons.append(compare_benchmark(bench, procs, seed))
        if include_fixed and bench.fixed is not None:
            result.comparisons.append(
                compare_benchmark(bench, procs, seed, use_fixed=True))
    return result
