"""The instruction set executed by simulated goroutines.

A goroutine body is a Python generator that *yields instructions* to the
scheduler, which executes them and resumes the generator with the result.
Each yield is a scheduling point, mirroring how Go's concurrency
operations are cooperative preemption points.

A body that needs to call a helper which itself performs concurrency
operations writes the helper as a generator and delegates with
``yield from`` — the scheduler transparently follows the delegation chain,
and the garbage collector scans the locals of every frame in the chain as
the goroutine's stack.

Example (the paper's Listing 7 leak)::

    def send_email(rt):
        done = yield MakeChan(0)
        def task():
            ...                      # asynchronous work
            yield Send(done, ())     # deferred send; leaks if unreceived
        yield Go(task)
        return done

    def handle_request(rt):
        yield from send_email(rt)    # channel never received from

Results (sent back into the generator):

=================== =====================================================
Instruction          Result
=================== =====================================================
``MakeChan``         the new :class:`~repro.runtime.channel.Channel`
``Send``             ``None``
``Recv``             ``(value, ok)`` tuple
``Select``           ``(case_index, value, ok)``; default case yields
                     ``(DEFAULT_CASE, None, False)``
``Go``               the spawned :class:`~repro.runtime.goroutine.Goroutine`
``Alloc``            the allocated object (same one passed in)
``Now``              current virtual time in nanoseconds
others               ``None``
=================== =====================================================
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence, Tuple, Type

from repro.runtime.objects import HeapObject

#: Case index reported by ``Select`` when the default case ran.
DEFAULT_CASE = -1


def _short(value: Any) -> str:
    """Compact operand rendering for instruction reprs."""
    if isinstance(value, HeapObject):
        addr = getattr(value, "addr", 0)
        return f"<{value.kind}@{addr:#x}>" if addr else f"<{value.kind}>"
    if callable(value) and hasattr(value, "__name__"):
        return value.__name__
    text = repr(value)
    return text if len(text) <= 32 else text[:29] + "..."


class Instruction:
    """Base class for everything a goroutine body may yield.

    Every concrete subclass carries a stable :attr:`MNEMONIC` — the
    canonical lowercase name tools speak (diagnostics, the static
    analyzer's lowering, trace renderers) instead of matching Python
    class names — and a uniform ``repr`` built from it.
    """

    __slots__ = ()

    #: Stable lowercase identifier; never derived from the class name.
    MNEMONIC = "instruction"

    #: Interned opcode: a dense int assigned per concrete class at module
    #: load (see :data:`OPCODE_ORDER`).  ``-1`` marks classes outside the
    #: built-in set — including user subclasses of concrete instructions,
    #: which inherit the parent's OP but fail the executor's exact-class
    #: check and fall back to the slow path, preserving the historical
    #: exact-type dispatch semantics.
    OP = -1

    def heap_refs(self) -> Tuple[HeapObject, ...]:
        """Heap objects referenced by this instruction's operands.

        These count as stack references of the yielding goroutine while
        the instruction is pending (e.g. the value being sent sits on the
        sender's stack).
        """
        return ()

    def operands(self) -> Tuple[Tuple[str, Any], ...]:
        """``(slot, value)`` pairs across the class hierarchy, in
        declaration order."""
        pairs = []
        for cls in reversed(type(self).__mro__):
            for slot in cls.__dict__.get("__slots__", ()):
                pairs.append((slot, getattr(self, slot)))
        return tuple(pairs)

    def __repr__(self) -> str:
        fields = " ".join(f"{name}={_short(value)}"
                          for name, value in self.operands())
        return f"<{self.MNEMONIC} {fields}>" if fields else f"<{self.MNEMONIC}>"


# ---------------------------------------------------------------------------
# Channels
# ---------------------------------------------------------------------------


class MakeChan(Instruction):
    """Allocate a channel: ``make(chan T, capacity)``.

    ``capacity == 0`` creates an unbuffered channel.
    """

    __slots__ = ("capacity", "label")
    MNEMONIC = "make-chan"

    def __init__(self, capacity: int = 0, label: str = ""):
        if capacity < 0:
            raise ValueError("channel capacity must be non-negative")
        self.capacity = capacity
        self.label = label


class Send(Instruction):
    """``ch <- value``. Blocks per channel semantics. ``ch=None`` is a nil
    channel send, which blocks forever."""

    __slots__ = ("channel", "value")
    MNEMONIC = "send"

    def __init__(self, channel: Optional[HeapObject], value: Any = None):
        self.channel = channel
        self.value = value

    def heap_refs(self) -> Tuple[HeapObject, ...]:
        refs = []
        if self.channel is not None:
            refs.append(self.channel)
        if isinstance(self.value, HeapObject):
            refs.append(self.value)
        return tuple(refs)


class Recv(Instruction):
    """``<-ch``; resolves to ``(value, ok)``. ``ch=None`` blocks forever."""

    __slots__ = ("channel",)
    MNEMONIC = "recv"

    def __init__(self, channel: Optional[HeapObject]):
        self.channel = channel

    def heap_refs(self) -> Tuple[HeapObject, ...]:
        return (self.channel,) if self.channel is not None else ()


class Close(Instruction):
    """``close(ch)``. Panics on nil or already-closed channels."""

    __slots__ = ("channel",)
    MNEMONIC = "close"

    def __init__(self, channel: Optional[HeapObject]):
        self.channel = channel

    def heap_refs(self) -> Tuple[HeapObject, ...]:
        return (self.channel,) if self.channel is not None else ()


class SendCase:
    """A ``case ch <- value`` arm of a select statement."""

    __slots__ = ("channel", "value")
    MNEMONIC = "send-case"

    def __init__(self, channel: Optional[HeapObject], value: Any = None):
        self.channel = channel
        self.value = value


class RecvCase:
    """A ``case x := <-ch`` arm of a select statement."""

    __slots__ = ("channel",)
    MNEMONIC = "recv-case"

    def __init__(self, channel: Optional[HeapObject]):
        self.channel = channel


class Select(Instruction):
    """A ``select`` statement over the given cases.

    With ``default=True`` the select never blocks; if no case is ready the
    result is ``(DEFAULT_CASE, None, False)``.  A select with zero cases
    and no default blocks forever (wait reason ``SELECT_NO_CASES``).
    """

    __slots__ = ("cases", "default")
    MNEMONIC = "select"

    def __init__(self, cases: Sequence[Any], default: bool = False):
        self.cases = tuple(cases)
        self.default = default
        for case in self.cases:
            if not isinstance(case, (SendCase, RecvCase)):
                raise TypeError(f"not a select case: {case!r}")

    def heap_refs(self) -> Tuple[HeapObject, ...]:
        refs = []
        for case in self.cases:
            if case.channel is not None:
                refs.append(case.channel)
            if isinstance(case, SendCase) and isinstance(case.value, HeapObject):
                refs.append(case.value)
        return tuple(refs)


# ---------------------------------------------------------------------------
# sync package
# ---------------------------------------------------------------------------


class NewMutex(Instruction):
    """Allocate a ``sync.Mutex``."""

    __slots__ = ("label",)
    MNEMONIC = "new-mutex"

    def __init__(self, label: str = ""):
        self.label = label


class NewRWMutex(Instruction):
    """Allocate a ``sync.RWMutex``."""

    __slots__ = ("label",)
    MNEMONIC = "new-rwmutex"

    def __init__(self, label: str = ""):
        self.label = label


class NewWaitGroup(Instruction):
    """Allocate a ``sync.WaitGroup``."""

    __slots__ = ("label",)
    MNEMONIC = "new-waitgroup"

    def __init__(self, label: str = ""):
        self.label = label


class NewCond(Instruction):
    """Allocate a ``sync.Cond`` bound to ``locker`` (a Mutex)."""

    __slots__ = ("locker",)
    MNEMONIC = "new-cond"

    def __init__(self, locker: HeapObject):
        self.locker = locker

    def heap_refs(self) -> Tuple[HeapObject, ...]:
        return (self.locker,)


class NewOnce(Instruction):
    """Allocate a ``sync.Once``."""

    __slots__ = ()
    MNEMONIC = "new-once"


class _OneOperand(Instruction):
    __slots__ = ("target",)
    MNEMONIC = "one-operand"  # abstract; concrete subclasses override

    def __init__(self, target: HeapObject):
        self.target = target

    def heap_refs(self) -> Tuple[HeapObject, ...]:
        return (self.target,)


class Lock(_OneOperand):
    """``m.Lock()`` — blocks while the mutex is held."""
    __slots__ = ()
    MNEMONIC = "lock"


class Unlock(_OneOperand):
    """``m.Unlock()`` — panics if the mutex is not held."""
    __slots__ = ()
    MNEMONIC = "unlock"


class RLock(_OneOperand):
    """``m.RLock()`` on a RWMutex."""
    __slots__ = ()
    MNEMONIC = "rlock"


class RUnlock(_OneOperand):
    """``m.RUnlock()`` on a RWMutex."""
    __slots__ = ()
    MNEMONIC = "runlock"


class WgAdd(Instruction):
    """``wg.Add(delta)``; panics if the counter goes negative."""

    __slots__ = ("waitgroup", "delta")
    MNEMONIC = "wg-add"

    def __init__(self, waitgroup: HeapObject, delta: int = 1):
        self.waitgroup = waitgroup
        self.delta = delta

    def heap_refs(self) -> Tuple[HeapObject, ...]:
        return (self.waitgroup,)


class WgDone(_OneOperand):
    """``wg.Done()``."""
    __slots__ = ()
    MNEMONIC = "wg-done"


class WgWait(_OneOperand):
    """``wg.Wait()`` — blocks until the counter reaches zero."""
    __slots__ = ()
    MNEMONIC = "wg-wait"


class CondWait(_OneOperand):
    """``c.Wait()`` — atomically releases the locker and blocks; on wake,
    reacquires the locker before resuming."""
    __slots__ = ()
    MNEMONIC = "cond-wait"


class CondSignal(_OneOperand):
    """``c.Signal()`` — wakes one waiter if any."""
    __slots__ = ()
    MNEMONIC = "cond-signal"


class CondBroadcast(_OneOperand):
    """``c.Broadcast()`` — wakes all waiters."""
    __slots__ = ()
    MNEMONIC = "cond-broadcast"


class OnceDo(Instruction):
    """``once.Do(fn)`` with a plain (non-blocking) Python callable."""

    __slots__ = ("once", "fn")
    MNEMONIC = "once-do"

    def __init__(self, once: HeapObject, fn: Callable[[], None]):
        self.once = once
        self.fn = fn

    def heap_refs(self) -> Tuple[HeapObject, ...]:
        return (self.once,)


class SemAcquire(_OneOperand):
    """Low-level semaphore acquire (blocks while the count is zero)."""
    __slots__ = ()
    MNEMONIC = "sem-acquire"


class SemRelease(_OneOperand):
    """Low-level semaphore release (wakes one waiter, if any)."""
    __slots__ = ()
    MNEMONIC = "sem-release"


class NewSema(Instruction):
    """Allocate a low-level semaphore with the given initial count."""

    __slots__ = ("count",)
    MNEMONIC = "new-sema"

    def __init__(self, count: int = 0):
        self.count = count


# ---------------------------------------------------------------------------
# Scheduling, time, memory
# ---------------------------------------------------------------------------


class Go(Instruction):
    """Spawn a goroutine: ``go fn(*args)``.

    ``fn`` must be a generator function taking ``*args``; the spawn site
    (file:line of the yield) is recorded on the new goroutine for
    deduplicated deadlock reports.  ``name`` overrides the display name.
    """

    __slots__ = ("fn", "args", "name")
    MNEMONIC = "go"

    def __init__(self, fn: Callable[..., Any], *args: Any, name: str = ""):
        self.fn = fn
        self.args = args
        self.name = name

    def heap_refs(self) -> Tuple[HeapObject, ...]:
        return tuple(a for a in self.args if isinstance(a, HeapObject))


class Sleep(Instruction):
    """``time.Sleep(ns)`` in virtual nanoseconds (wait reason SLEEP,
    which GOLF treats as always live)."""

    __slots__ = ("ns",)
    MNEMONIC = "sleep"

    def __init__(self, ns: int):
        if ns < 0:
            raise ValueError("sleep duration must be non-negative")
        self.ns = ns


class IoWait(Instruction):
    """A blocking system call (network/disk IO) of ``ns`` virtual
    nanoseconds.

    Parks with wait reason ``IO_WAIT``: goroutines blocked at system
    calls are deemed runnable for liveness (paper §4.1) and are never
    deadlock candidates, but goleak's full output does flag them — the
    category the paper excludes from its comparison.
    """

    __slots__ = ("ns",)
    MNEMONIC = "io-wait"

    def __init__(self, ns: int):
        if ns < 0:
            raise ValueError("IO duration must be non-negative")
        self.ns = ns


class Gosched(Instruction):
    """``runtime.Gosched()`` — yield the processor, stay runnable."""

    __slots__ = ()
    MNEMONIC = "gosched"


class Work(Instruction):
    """Non-preemptible CPU work of ``units`` simulated microseconds.

    The executing goroutine holds its virtual processor for the whole
    duration, so under ``GOMAXPROCS=1`` other goroutines cannot interleave
    — this is how core-count-sensitive races are expressed.
    """

    __slots__ = ("units",)
    MNEMONIC = "work"

    def __init__(self, units: int = 1):
        if units <= 0:
            raise ValueError("work units must be positive")
        self.units = units


class Alloc(Instruction):
    """Allocate a user heap object (Box, Struct, Slice, GoMap, Blob...)."""

    __slots__ = ("obj",)
    MNEMONIC = "alloc"

    def __init__(self, obj: HeapObject):
        self.obj = obj

    def heap_refs(self) -> Tuple[HeapObject, ...]:
        return (self.obj,)


class SetFinalizer(Instruction):
    """``runtime.SetFinalizer(obj, fn)``."""

    __slots__ = ("obj", "fn")
    MNEMONIC = "set-finalizer"

    def __init__(self, obj: HeapObject, fn: Callable[[HeapObject], None]):
        self.obj = obj
        self.fn = fn

    def heap_refs(self) -> Tuple[HeapObject, ...]:
        return (self.obj,)


class RunGC(Instruction):
    """``runtime.GC()`` — force a full collection cycle now."""

    __slots__ = ()
    MNEMONIC = "run-gc"


class Now(Instruction):
    """Read the virtual clock (nanoseconds)."""

    __slots__ = ()
    MNEMONIC = "now"


class SetGlobal(Instruction):
    """Register a value in global data (package-level variable)."""

    __slots__ = ("name", "value")
    MNEMONIC = "set-global"

    def __init__(self, name: str, value: Any):
        self.name = name
        self.value = value

    def heap_refs(self) -> Tuple[HeapObject, ...]:
        return (self.value,) if isinstance(self.value, HeapObject) else ()


class GetGlobal(Instruction):
    """Read a value from global data."""

    __slots__ = ("name",)
    MNEMONIC = "get-global"

    def __init__(self, name: str):
        self.name = name


class Panic(Instruction):
    """``panic(message)`` — unwinds the goroutine and (unrecovered)
    crashes the simulated program.

    The panic is thrown into the goroutine body, so ``try/finally``
    blocks (the ``defer`` analog) run during the unwind; a body that
    catches :class:`~repro.errors.GoPanic` and yields :class:`Recover`
    stops the unwind and keeps running, as Go's deferred ``recover()``
    does.
    """

    __slots__ = ("message",)
    MNEMONIC = "panic"

    def __init__(self, message: str):
        self.message = message


class Recover(Instruction):
    """``recover()`` — consume the in-flight panic and stop unwinding.

    Resolves to the panic message while the goroutine is panicking (and
    clears the panicking state, so the panic is considered handled), or
    ``None`` otherwise — mirroring Go, where ``recover`` returns ``nil``
    unless called during a panic.  Bodies use it from an
    ``except GoPanic`` (deferred-function analog) block::

        try:
            yield Send(ch, value)    # may panic: send on closed channel
        except GoPanic:
            reason = yield Recover()
    """

    __slots__ = ()
    MNEMONIC = "recover"


class Defer(Instruction):
    """Register ``fn`` (a plain, non-blocking callable) to run when the
    goroutine terminates — normal exit, unrecovered panic, or program
    crash — in LIFO order, like stacked ``defer`` statements.

    Deferred callables do **not** run when GOLF forcibly reclaims a
    deadlocked goroutine: the runtime guarantees deferred code of a
    reclaimed goroutine never executes (paper §5.5).  Blocking deferred
    work is instead expressed with ``try/finally`` around yields.
    """

    __slots__ = ("fn",)
    MNEMONIC = "defer"

    def __init__(self, fn: Callable[[], None]):
        if not callable(fn):
            raise TypeError(f"Defer needs a callable, got {fn!r}")
        self.fn = fn


# ---------------------------------------------------------------------------
# Introspection for tools (static analyzer, trace renderers)
# ---------------------------------------------------------------------------


def instruction_classes() -> Dict[str, Type[Instruction]]:
    """Concrete instruction classes by Python class name.

    Tools that meet instructions as *names* (the static analyzer walks
    source ASTs where a yield's callee is just an identifier) use this to
    translate into stable mnemonics instead of string-matching class
    names.
    """
    out: Dict[str, Type[Instruction]] = {}
    for name, obj in globals().items():
        if (isinstance(obj, type) and issubclass(obj, Instruction)
                and obj is not Instruction and not name.startswith("_")):
            out[name] = obj
    out["SendCase"] = SendCase  # select arms travel with the instruction set
    out["RecvCase"] = RecvCase
    return out


def mnemonic_for(class_name: str) -> Optional[str]:
    """The stable mnemonic for an instruction class name, or ``None``."""
    cls = instruction_classes().get(class_name)
    return cls.MNEMONIC if cls is not None else None


# ---------------------------------------------------------------------------
# Interned opcodes
# ---------------------------------------------------------------------------

#: Every concrete instruction class in opcode order.  The executor's
#: dispatch table and the scheduler's cost model index by ``cls.OP``
#: (list index + identity check) instead of hashing types or walking
#: isinstance chains on every yield.  Append-only: opcode values are
#: positional, so inserting in the middle would silently renumber.
OPCODE_ORDER: Tuple[Type[Instruction], ...] = (
    MakeChan, Send, Recv, Close, Select,
    NewMutex, NewRWMutex, NewWaitGroup, NewCond, NewOnce, NewSema,
    Lock, Unlock, RLock, RUnlock,
    WgAdd, WgDone, WgWait,
    CondWait, CondSignal, CondBroadcast,
    OnceDo, SemAcquire, SemRelease,
    Go, Sleep, IoWait, Gosched, Work,
    Alloc, SetFinalizer, RunGC, Now,
    SetGlobal, GetGlobal, Panic, Recover, Defer,
)

for _op, _cls in enumerate(OPCODE_ORDER):
    _cls.OP = _op
del _op, _cls

OP_COUNT = len(OPCODE_ORDER)

#: Opcodes the scheduler's cost model special-cases (no RNG jitter).
OP_WORK = Work.OP
OP_SLEEP = Sleep.OP
OP_RUN_GC = RunGC.OP
