"""Unit tests for channel semantics (module level, no scheduler)."""

import pytest

from repro.errors import CloseOfClosedChannel, SendOnClosedChannel
from repro.runtime.channel import Channel, ZERO_VALUE
from repro.runtime.goroutine import Goroutine, Sudog


def _sudog(is_send=False, value=None, channel=None):
    g = Goroutine(goid=99)
    g.status = g.status  # placeholder; queue tests only need identity
    return Sudog(g, channel, value, is_send=is_send)


class TestBufferedChannel:
    def test_send_fills_buffer(self):
        ch = Channel(2)
        done, wakeups = ch.try_send(1)
        assert done and wakeups == []
        assert len(ch) == 1

    def test_send_blocks_when_full(self):
        ch = Channel(1)
        ch.try_send(1)
        done, _ = ch.try_send(2)
        assert not done

    def test_recv_drains_fifo(self):
        ch = Channel(3)
        for v in (1, 2, 3):
            ch.try_send(v)
        values = [ch.try_recv()[1] for _ in range(3)]
        assert values == [1, 2, 3]

    def test_recv_blocks_when_empty(self):
        done, _, _, _ = Channel(1).try_recv()
        assert not done

    def test_recv_unparks_waiting_sender_into_buffer(self):
        ch = Channel(1)
        ch.try_send("a")
        sender = _sudog(is_send=True, value="b", channel=ch)
        ch.enqueue_sender(sender)
        done, value, ok, wakeups = ch.try_recv()
        assert done and ok and value == "a"
        assert len(wakeups) == 1 and wakeups[0].sudog is sender
        assert list(ch.buffer) == ["b"]

    def test_can_send_and_recv(self):
        ch = Channel(1)
        assert ch.can_send() and not ch.can_recv()
        ch.try_send(1)
        assert not ch.can_send() and ch.can_recv()


class TestUnbufferedChannel:
    def test_send_blocks_without_receiver(self):
        done, _ = Channel(0).try_send(1)
        assert not done

    def test_send_hands_to_waiting_receiver(self):
        ch = Channel(0)
        receiver = _sudog(is_send=False, channel=ch)
        ch.enqueue_receiver(receiver)
        done, wakeups = ch.try_send("msg")
        assert done
        assert wakeups[0].sudog is receiver
        assert wakeups[0].result == ("msg", True)

    def test_recv_takes_from_waiting_sender(self):
        ch = Channel(0)
        sender = _sudog(is_send=True, value="msg", channel=ch)
        ch.enqueue_sender(sender)
        done, value, ok, wakeups = ch.try_recv()
        assert done and ok and value == "msg"
        assert wakeups[0].sudog is sender

    def test_inactive_sudogs_skipped(self):
        ch = Channel(0)
        stale = _sudog(is_send=True, value="old", channel=ch)
        stale.active = False
        fresh = _sudog(is_send=True, value="new", channel=ch)
        ch.enqueue_sender(stale)
        ch.enqueue_sender(fresh)
        done, value, ok, _ = ch.try_recv()
        assert done and value == "new"


class TestClose:
    def test_recv_on_closed_returns_zero(self):
        ch = Channel(0)
        ch.close()
        done, value, ok, _ = ch.try_recv()
        assert done and not ok and value is ZERO_VALUE

    def test_close_drains_buffer_first(self):
        ch = Channel(2)
        ch.try_send("x")
        ch.close()
        done, value, ok, _ = ch.try_recv()
        assert done and ok and value == "x"
        done, value, ok, _ = ch.try_recv()
        assert done and not ok

    def test_send_on_closed_panics(self):
        ch = Channel(1)
        ch.close()
        with pytest.raises(SendOnClosedChannel):
            ch.try_send(1)

    def test_double_close_panics(self):
        ch = Channel(0)
        ch.close()
        with pytest.raises(CloseOfClosedChannel):
            ch.close()

    def test_close_wakes_receivers_with_zero(self):
        ch = Channel(0)
        receivers = [_sudog(channel=ch) for _ in range(3)]
        for sd in receivers:
            ch.enqueue_receiver(sd)
        wakeups = ch.close()
        assert len(wakeups) == 3
        assert all(w.result == (ZERO_VALUE, False) for w in wakeups)

    def test_close_panics_blocked_senders(self):
        ch = Channel(0)
        sender = _sudog(is_send=True, value=1, channel=ch)
        ch.enqueue_sender(sender)
        wakeups = ch.close()
        assert len(wakeups) == 1
        assert isinstance(wakeups[0].exc, SendOnClosedChannel)

    def test_closed_channel_can_recv(self):
        ch = Channel(0)
        ch.close()
        assert ch.can_recv()
        assert ch.can_send()  # "completes" by panicking


class TestReferents:
    def test_buffered_heap_values_are_referents(self):
        from repro.runtime.objects import Box
        ch = Channel(2)
        payload = Box(1)
        ch.try_send(payload)
        assert payload in set(ch.referents())

    def test_parked_sender_value_is_referent(self):
        from repro.runtime.objects import Box
        ch = Channel(0)
        payload = Box(2)
        ch.enqueue_sender(_sudog(is_send=True, value=payload, channel=ch))
        assert payload in set(ch.referents())

    def test_blocked_goroutines_are_not_referents(self):
        ch = Channel(0)
        sd = _sudog(is_send=True, value=1, channel=ch)
        ch.enqueue_sender(sd)
        from repro.runtime.goroutine import Goroutine
        assert not any(isinstance(r, Goroutine) for r in ch.referents())

    def test_capacity_counts(self):
        ch = Channel(2)
        ch.try_send(1)
        sender = _sudog(is_send=True, value=2, channel=ch)
        ch.enqueue_sender(sender)
        assert ch.waiting_senders() == 1
        assert ch.waiting_receivers() == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Channel(-1)
