"""Tests for host-side constructors and remaining error paths."""

import pytest

from repro import GolfConfig, GoPanic, Runtime
from repro.artifact import TesterConfig, run_tester
from repro.errors import InvalidInstruction
from repro.microbench.registry import benchmarks_by_name
from repro.runtime.clock import MICROSECOND
from repro.runtime.instructions import (
    Close,
    CondSignal,
    Go,
    Gosched,
    Lock,
    MakeChan,
    Recv,
    RLock,
    Send,
    Sleep,
    Unlock,
)
from repro.runtime.objects import Blob, Box
from tests.conftest import run_to_end


class TestHostConstructors:
    def test_make_chan(self, rt):
        ch = rt.make_chan(capacity=2, label="host-ch")
        assert rt.heap.contains(ch)
        assert ch.capacity == 2
        assert ch.make_site == "<host>"

    def test_sync_constructors_allocated(self, rt):
        mu = rt.new_mutex("m")
        rw = rt.new_rwmutex("rw")
        wg = rt.new_waitgroup("wg")
        cond = rt.new_cond(mu)
        pool = rt.new_pool()
        for obj in (mu, rw, wg, cond, pool):
            assert rt.heap.contains(obj)
        assert cond.locker is mu

    def test_host_channel_usable_from_program(self, rt):
        ch = rt.make_chan(capacity=1)
        got = {}

        def main():
            yield Send(ch, "host-made")
            got["value"], _ = yield Recv(ch)

        run_to_end(rt, main)
        assert got["value"] == "host-made"

    def test_host_go_spawns(self, rt):
        ran = []

        def background():
            yield Gosched()
            ran.append(True)

        def main():
            yield Sleep(10 * MICROSECOND)

        rt.go(background, name="bg")
        run_to_end(rt, main)
        assert ran == [True]

    def test_alloc_and_globals(self, rt):
        obj = rt.alloc(Box(5))
        rt.set_global("host.box", obj)
        assert rt.get_global("host.box") is obj
        assert rt.get_global("missing", "default") == "default"


class TestErrorPaths:
    def test_go_with_non_generator_crashes(self, rt):
        def main():
            yield Go(lambda: 42)

        rt.spawn_main(main)
        with pytest.raises(TypeError):
            rt.run()

    def test_close_nil_channel_panics(self, rt):
        def main():
            yield Close(None)

        rt.spawn_main(main)
        with pytest.raises(GoPanic, match="nil channel"):
            rt.run()

    def test_lock_on_non_mutex_is_invalid(self, rt):
        def main():
            target = yield from _alloc_blob()
            yield Lock(target)

        def _alloc_blob():
            from repro.runtime.instructions import Alloc
            blob = yield Alloc(Blob(8))
            return blob

        rt.spawn_main(main)
        with pytest.raises(InvalidInstruction):
            rt.run()

    def test_rlock_on_plain_mutex_is_invalid(self, rt):
        def main():
            from repro.runtime.instructions import NewMutex
            mu = yield NewMutex()
            yield RLock(mu)

        rt.spawn_main(main)
        with pytest.raises(InvalidInstruction):
            rt.run()

    def test_unlock_on_non_mutex_is_invalid(self, rt):
        def main():
            from repro.runtime.instructions import Alloc
            blob = yield Alloc(Blob(8))
            yield Unlock(blob)

        rt.spawn_main(main)
        with pytest.raises(InvalidInstruction):
            rt.run()

    def test_cond_signal_on_unwaited_cond_is_noop(self, rt):
        def main():
            from repro.runtime.instructions import NewCond, NewMutex
            mu = yield NewMutex()
            cond = yield NewCond(mu)
            yield CondSignal(cond)

        assert run_to_end(rt, main) == "main-exited"


class TestTesterValidateNegative:
    def test_undetected_flaky_sites_reported_by_validate(self):
        """etcd/7443 at 1 core with 2 repeats cannot fire: validate()
        must name all five of its sites."""
        config = TesterConfig(match=r"^etcd/7443$", repeats=2,
                              procs_list=(1,))
        report = run_tester(config)
        missing = set(report.validate())
        expected = set(benchmarks_by_name()["etcd/7443"].sites)
        assert missing == expected
        assert report.aggregated() == 0.0
