"""The named flaky microbenchmarks of the paper's Table 1.

Each function reproduces one named GoBench ("goker") benchmark: a
miniature of the upstream defect's structure — stoppers, watcher hubs,
balancers, informer queues — whose leak manifests with roughly the
probability the paper reports, and, for the core-count-sensitive
entries, only under the right GOMAXPROCS.  Two honest mechanisms drive
the flakiness:

- **scheduler coins** (:func:`~repro.microbench.helpers.bernoulli`):
  select statements over ready channels whose case choice is genuine
  runtime non-determinism;
- **processor contention**: non-preemptible work monopolizes virtual
  cores, so a timer-driven code path only runs promptly when spare
  parallelism exists — which is exactly why e.g. ``grpc/3017`` never
  deadlocks on one core, and why ``etcd/7443`` needs ten.

Line labels match the paper's ``benchmark:line`` rows so Table 1 can be
regenerated row for row.
"""

from __future__ import annotations

from repro.microbench.helpers import bernoulli, spawn_hogs
from repro.runtime.clock import MICROSECOND
from repro.runtime.instructions import (
    Alloc,
    Go,
    MakeChan,
    Now,
    Recv,
    Send,
    Sleep,
)
from repro.runtime.objects import Struct


def cockroach_6181():
    """cockroach#6181 — gossip server teardown races its info workers.

    The gossip server owns two unbuffered update channels fed by
    long-lived workers.  ``stop()`` is supposed to drain both, but the
    teardown path races the node shutdown and usually skips the drain
    (~98% of runs), stranding the workers mid-send.
    """
    node_updates = yield MakeChan(0, label="gossip.nodeUpdates")
    store_updates = yield MakeChan(0, label="gossip.storeUpdates")
    server = yield Alloc(Struct(nodes=node_updates, stores=store_updates,
                                stopped=False))

    def node_info_worker():
        yield Send(server["nodes"], {"node": 1, "addr": "n1"})

    def store_info_worker():
        yield Send(server["stores"], {"store": 7, "range": 42})

    yield Go(node_info_worker, name="cockroach/6181:58")
    yield Go(store_info_worker, name="cockroach/6181:65")

    # Teardown: the drain only wins the shutdown race occasionally.
    if (yield from bernoulli(25)):  # ~2.4%
        yield Recv(server["nodes"])
    if (yield from bernoulli(18)):  # ~1.8%
        yield Recv(server["stores"])
    server["stopped"] = True


def cockroach_7504():
    """cockroach#7504 — leaktest flags the range-lease pair.

    Two lease-holder goroutines publish their proposals on unbuffered
    channels; virtually every path through the test returns before
    consuming them (~99.75%).
    """
    proposal_a = yield MakeChan(0, label="lease.proposalA")
    proposal_b = yield MakeChan(0, label="lease.proposalB")

    def lease_holder_a():
        yield Send(proposal_a, ("lease", "epoch-1"))

    def lease_holder_b():
        yield Send(proposal_b, ("lease", "epoch-2"))

    yield Go(lease_holder_a, name="cockroach/7504:170")
    yield Go(lease_holder_b, name="cockroach/7504:177")
    if (yield from bernoulli(2)):  # ~0.2%
        yield Recv(proposal_a)
    if (yield from bernoulli(2)):
        yield Recv(proposal_b)


def etcd_7443():
    """etcd#7443 — the watch-hub teardown needs extreme parallelism.

    Five watcher streams block sending events into the hub.  The
    teardown timer only observes them *still parked* when it runs
    promptly while seven long raft-apply loops are in flight — which
    needs nearly ten free cores — and even then only on a rare raft
    state (~1.6%).  Below ten cores the appliers monopolize the
    processors, the timer is late, and the hub drains everyone
    (paper: 0-3 detections out of 100, only at ten cores).
    """
    rare_raft_state = yield from bernoulli(16)  # ~1.6%

    hub_streams = []
    for line in (96, 128, 215, 221, 225):
        stream = yield MakeChan(0, label=f"watchHub.stream{line}")
        hub_streams.append(stream)

        def watcher(ch=stream, line=line):
            yield Send(ch, {"event": "PUT", "rev": line})

        yield Go(watcher, name=f"etcd/7443:{line}")

    teardown_armed_at = yield Now()
    yield from spawn_hogs(7, 80)     # raft apply loops
    yield Sleep(MICROSECOND)         # the teardown timer
    teardown_ran_at = yield Now()
    prompt = (teardown_ran_at - teardown_armed_at) < 20 * MICROSECOND
    if not (prompt and rare_raft_state):
        for stream in hub_streams:
            yield Recv(stream)  # the hub drains the watchers


def grpc_1460():
    """grpc#1460 — the balancer drops both address-update sends.

    The balancer teardown path forgets the two pending notifications
    on ~98.5% of runs.
    """
    addr_updates = yield MakeChan(0, label="balancer.addrs")
    conn_updates = yield MakeChan(0, label="balancer.conns")

    def notify_addrs():
        yield Send(addr_updates, ["10.0.0.1:443"])

    def notify_conns():
        yield Send(conn_updates, {"conn": "ready"})

    yield Go(notify_addrs, name="grpc/1460:83")
    yield Go(notify_conns, name="grpc/1460:85")
    if (yield from bernoulli(15)):  # ~1.5%
        yield Recv(addr_updates)
        yield Recv(conn_updates)


def grpc_3017():
    """grpc#3017 — the resolver race that *requires* parallelism.

    A long non-preemptible balancer update runs while the prober's
    timer path — the only path that abandons the three workers — wants
    to observe stale state.  On one core the update always finishes
    first (the prober sees fresh state and drains the workers); with a
    second core the prober runs mid-update and strands them.
    """
    worker_results = []
    for line in (71, 97, 106):
        result = yield MakeChan(0, label=f"resolver.worker{line}")
        worker_results.append(result)

        def resolver_worker(ch=result, line=line):
            yield Send(ch, {"backend": f"b{line}", "healthy": True})

        yield Go(resolver_worker, name=f"grpc/3017:{line}")

    probe_armed_at = yield Now()
    yield from spawn_hogs(1, 80)     # the balancer update
    yield Sleep(MICROSECOND)         # the prober timer
    probe_ran_at = yield Now()
    if (probe_ran_at - probe_armed_at) >= 40 * MICROSECOND:
        # Single core: the update completed before the probe.
        for result in worker_results:
            yield Recv(result)


def hugo_3261():
    """hugo#3261 — page-builder pair rescued only on a loaded box.

    Two render goroutines publish their pages on unbuffered channels.
    A debounce-timer rescuer drains them — but it only runs in time
    when six concurrent renders leave a spare core (ten-core machines),
    and even then the debounce wins just ~17% of races (paper: 100% leak
    below ten cores, 83% at ten).
    """
    debounce_coin = yield from bernoulli(174)  # ~17%
    page_a = yield MakeChan(0, label="site.pageA")
    page_b = yield MakeChan(0, label="site.pageB")

    def render_page_a():
        yield Send(page_a, "<html>a</html>")

    def render_page_b():
        yield Send(page_b, "<html>b</html>")

    yield Go(render_page_a, name="hugo/3261:54")
    yield Go(render_page_b, name="hugo/3261:62")

    debounce_armed_at = yield Now()
    yield from spawn_hogs(6, 50)  # the other concurrent renders
    yield Sleep(MICROSECOND)      # the debounce timer
    debounce_ran_at = yield Now()
    prompt = (debounce_ran_at - debounce_armed_at) < 20 * MICROSECOND
    if prompt and debounce_coin:
        yield Recv(page_a)
        yield Recv(page_b)


def _informer_style(labels, rescue_numerator, chan_label):
    """Builder for the near-deterministic kubernetes/moby rows: informer
    worker goroutines publish into unbuffered queues that the
    controller's teardown path drains only on a low-probability branch.
    """

    def body():
        queues = []
        for label in labels:
            queue = yield MakeChan(0, label=chan_label)
            queues.append(queue)

            def informer_worker(ch=queue, label=label):
                yield Send(ch, {"obj": label, "op": "sync"})

            yield Go(informer_worker, name=label)
        if (yield from bernoulli(rescue_numerator)):
            for queue in queues:
                yield Recv(queue)

    return body


kubernetes_1321 = _informer_style(
    ["kubernetes/1321:52", "kubernetes/1321:95"], 2, "reflector.queue")
kubernetes_10182 = _informer_style(
    ["kubernetes/10182:95"], 2, "statusManager.queue")
kubernetes_11298 = _informer_style(
    ["kubernetes/11298:20", "kubernetes/11298:106"], 1, "endpoints.queue")
kubernetes_25331 = _informer_style(
    ["kubernetes/25331:79"], 10, "watchChan.result")
kubernetes_62464 = _informer_style(
    ["kubernetes/62464:115", "kubernetes/62464:117"], 26,
    "resourceQuota.queue")
moby_33781 = _informer_style(
    ["moby/33781:39"], 31, "containerd.events")


def moby_27282():
    """moby#27282 — the archiver race with the paper's two-core dip.

    A tar-layer copy (long) and a metadata write (short) run alongside
    the two upload goroutines.  The rescuer must observe the metadata
    write completed but the layer copy still running — the common state
    only with exactly one spare core — and still win a coin (~55%).
    """
    rescue_coin = yield from bernoulli(563)  # ~55%
    upload_a = yield MakeChan(0, label="archive.uploadA")
    upload_b = yield MakeChan(0, label="archive.uploadB")

    def upload_layer_a():
        yield Send(upload_a, b"layer-a")

    def upload_layer_b():
        yield Send(upload_b, b"layer-b")

    yield Go(upload_layer_a, name="moby/27282:65")
    yield Go(upload_layer_b, name="moby/27282:213")

    observe_started_at = yield Now()
    yield from spawn_hogs(1, 40)  # the long layer copy
    yield from spawn_hogs(1, 8)   # the short metadata write
    yield Sleep(MICROSECOND)
    observed_at = yield Now()
    elapsed = observed_at - observe_started_at
    in_window = 5 * MICROSECOND <= elapsed < 25 * MICROSECOND
    if in_window and rescue_coin:
        yield Recv(upload_a)
        yield Recv(upload_b)


#: name -> (body, labels); consumed by the registry.
FLAKY_BENCHMARKS = {
    "cockroach/6181": (cockroach_6181,
                       ["cockroach/6181:58", "cockroach/6181:65"]),
    "cockroach/7504": (cockroach_7504,
                       ["cockroach/7504:170", "cockroach/7504:177"]),
    "etcd/7443": (etcd_7443,
                  ["etcd/7443:96", "etcd/7443:128", "etcd/7443:215",
                   "etcd/7443:221", "etcd/7443:225"]),
    "grpc/1460": (grpc_1460, ["grpc/1460:83", "grpc/1460:85"]),
    "grpc/3017": (grpc_3017,
                  ["grpc/3017:71", "grpc/3017:97", "grpc/3017:106"]),
    "hugo/3261": (hugo_3261, ["hugo/3261:54", "hugo/3261:62"]),
    "kubernetes/1321": (kubernetes_1321,
                        ["kubernetes/1321:52", "kubernetes/1321:95"]),
    "kubernetes/10182": (kubernetes_10182, ["kubernetes/10182:95"]),
    "kubernetes/11298": (kubernetes_11298,
                         ["kubernetes/11298:20", "kubernetes/11298:106"]),
    "kubernetes/25331": (kubernetes_25331, ["kubernetes/25331:79"]),
    "kubernetes/62464": (kubernetes_62464,
                         ["kubernetes/62464:115", "kubernetes/62464:117"]),
    "moby/27282": (moby_27282, ["moby/27282:65", "moby/27282:213"]),
    "moby/33781": (moby_33781, ["moby/33781:39"]),
}
