"""Demo applications built entirely on the public runtime API.

These are integration-scale programs (not experiment drivers): realistic
concurrent systems whose health — and whose deliberately injectable
leaks — exercise the whole stack the way a downstream adopter would.
"""

from repro.apps.jobqueue import JobQueueConfig, JobQueueResult, run_job_queue
from repro.apps.kvstore import KVConfig, KVStore, run_kv_workload

__all__ = [
    "KVStore",
    "KVConfig",
    "run_kv_workload",
    "JobQueueConfig",
    "JobQueueResult",
    "run_job_queue",
]
