"""RQ1(b): GOLF vs goleak over the enterprise test-suite corpus.

Paper: goleak 29 513 individual reports (357 deduplicated); GOLF 17 872
individual (60%), 180 deduplicated (50%).  Scaled default: 300 packages
over 60 shared library sites; the reproduction target is the two ratios.
"""

from benchmarks.conftest import emit, once
from repro.corpus.generator import CorpusConfig
from repro.experiments import format_rq1b, run_rq1b


def test_rq1b_golf_vs_goleak(benchmark):
    config = CorpusConfig(n_packages=300, n_sites=60, seed=42)
    result = once(benchmark, lambda: run_rq1b(config))
    emit("rq1b", format_rq1b(result))

    assert result.goleak_total > result.golf_total > 0
    assert 0.40 <= result.dedup_ratio <= 0.62, "paper: 50%"
    assert 0.48 <= result.individual_ratio <= 0.72, "paper: 60%"
    # GOLF's individual share exceeds its dedup share, as in the paper.
    assert result.individual_ratio > result.dedup_ratio
