"""Integration tests for the ``sync`` package through the runtime."""

import pytest

from repro import GoPanic
from repro.runtime.clock import MICROSECOND
from repro.runtime.instructions import (
    CondBroadcast,
    CondSignal,
    CondWait,
    Go,
    Lock,
    MakeChan,
    NewCond,
    NewMutex,
    NewOnce,
    NewRWMutex,
    NewSema,
    NewWaitGroup,
    OnceDo,
    Recv,
    RLock,
    RUnlock,
    SemAcquire,
    SemRelease,
    Send,
    Sleep,
    Unlock,
    WgAdd,
    WgDone,
    WgWait,
    Work,
)
from tests.conftest import run_to_end


class TestMutex:
    def test_lock_unlock(self, rt):
        def main():
            mu = yield NewMutex()
            yield Lock(mu)
            assert mu.locked
            yield Unlock(mu)
            assert not mu.locked

        assert run_to_end(rt, main) == "main-exited"

    def test_mutual_exclusion(self, rt):
        trace = []

        def main():
            mu = yield NewMutex()
            done = yield MakeChan(0)

            def worker(name):
                yield Lock(mu)
                trace.append((name, "enter"))
                yield Work(5)
                trace.append((name, "exit"))
                yield Unlock(mu)
                yield Send(done, name)

            yield Go(worker, "a")
            yield Go(worker, "b")
            yield Recv(done)
            yield Recv(done)

        run_to_end(rt, main)
        # No interleaving inside the critical section.
        assert trace[0][0] == trace[1][0]
        assert trace[2][0] == trace[3][0]

    def test_unlock_of_unlocked_panics(self, rt):
        def main():
            mu = yield NewMutex()
            yield Unlock(mu)

        rt.spawn_main(main)
        with pytest.raises(GoPanic, match="unlock of unlocked"):
            rt.run()

    def test_unlock_hands_off_to_waiter(self, rt):
        order = []

        def main():
            mu = yield NewMutex()
            yield Lock(mu)

            def contender():
                yield Lock(mu)
                order.append("contender-locked")
                yield Unlock(mu)

            yield Go(contender)
            yield Sleep(10 * MICROSECOND)
            order.append("releasing")
            yield Unlock(mu)
            yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        assert order == ["releasing", "contender-locked"]


class TestRWMutex:
    def test_multiple_readers(self, rt):
        def main():
            rw = yield NewRWMutex()
            yield RLock(rw)
            yield RLock(rw)
            assert rw.readers == 2
            yield RUnlock(rw)
            yield RUnlock(rw)

        assert run_to_end(rt, main) == "main-exited"

    def test_writer_excludes_readers(self, rt):
        result = {}

        def main():
            rw = yield NewRWMutex()
            yield Lock(rw)

            def reader():
                yield RLock(rw)
                result["read"] = True
                yield RUnlock(rw)

            yield Go(reader)
            yield Sleep(10 * MICROSECOND)
            result["read_before_unlock"] = result.get("read", False)
            yield Unlock(rw)
            yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        assert result["read_before_unlock"] is False
        assert result["read"] is True

    def test_waiting_writer_blocks_new_readers(self, rt):
        result = {}

        def main():
            rw = yield NewRWMutex()
            yield RLock(rw)

            def writer():
                yield Lock(rw)
                result["wrote"] = True
                yield Unlock(rw)

            yield Go(writer)
            yield Sleep(10 * MICROSECOND)

            def late_reader():
                yield RLock(rw)
                result["late_read"] = True
                yield RUnlock(rw)

            yield Go(late_reader)
            yield Sleep(10 * MICROSECOND)
            result["late_read_while_writer_waits"] = result.get(
                "late_read", False)
            yield RUnlock(rw)
            yield Sleep(20 * MICROSECOND)

        run_to_end(rt, main)
        assert result["late_read_while_writer_waits"] is False
        assert result["wrote"] is True
        assert result["late_read"] is True

    def test_runlock_without_rlock_panics(self, rt):
        def main():
            rw = yield NewRWMutex()
            yield RUnlock(rw)

        rt.spawn_main(main)
        with pytest.raises(GoPanic):
            rt.run()


class TestWaitGroup:
    def test_wait_returns_when_counter_zero(self, rt):
        def main():
            wg = yield NewWaitGroup()
            yield WgWait(wg)  # counter already zero

        assert run_to_end(rt, main) == "main-exited"

    def test_workers_release_waiter(self, rt):
        completed = []

        def main():
            wg = yield NewWaitGroup()

            def worker(i):
                yield Work(2)
                completed.append(i)
                yield WgDone(wg)

            for i in range(4):
                yield WgAdd(wg, 1)
                yield Go(worker, i)
            yield WgWait(wg)
            completed.append("joined")

        run_to_end(rt, main)
        assert completed[-1] == "joined"
        assert sorted(completed[:-1]) == [0, 1, 2, 3]

    def test_negative_counter_panics(self, rt):
        def main():
            wg = yield NewWaitGroup()
            yield WgDone(wg)

        rt.spawn_main(main)
        with pytest.raises(GoPanic, match="negative"):
            rt.run()

    def test_add_releases_all_waiters(self, rt):
        released = []

        def main():
            wg = yield NewWaitGroup()
            yield WgAdd(wg, 1)

            def waiter(i):
                yield WgWait(wg)
                released.append(i)

            for i in range(3):
                yield Go(waiter, i)
            yield Sleep(10 * MICROSECOND)
            yield WgDone(wg)
            yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        assert sorted(released) == [0, 1, 2]


class TestCond:
    def test_signal_wakes_one(self, rt):
        woken = []

        def main():
            mu = yield NewMutex()
            cond = yield NewCond(mu)

            def waiter(i):
                yield Lock(mu)
                yield CondWait(cond)
                woken.append(i)
                yield Unlock(mu)

            for i in range(2):
                yield Go(waiter, i)
            yield Sleep(10 * MICROSECOND)
            yield Lock(mu)
            yield CondSignal(cond)
            yield Unlock(mu)
            yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        assert len(woken) == 1

    def test_broadcast_wakes_all(self, rt):
        woken = []

        def main():
            mu = yield NewMutex()
            cond = yield NewCond(mu)

            def waiter(i):
                yield Lock(mu)
                yield CondWait(cond)
                woken.append(i)
                yield Unlock(mu)

            for i in range(3):
                yield Go(waiter, i)
            yield Sleep(10 * MICROSECOND)
            yield Lock(mu)
            yield CondBroadcast(cond)
            yield Unlock(mu)
            yield Sleep(20 * MICROSECOND)

        run_to_end(rt, main)
        assert sorted(woken) == [0, 1, 2]

    def test_wait_releases_locker(self, rt):
        result = {}

        def main():
            mu = yield NewMutex()
            cond = yield NewCond(mu)

            def waiter():
                yield Lock(mu)
                yield CondWait(cond)
                yield Unlock(mu)

            yield Go(waiter)
            yield Sleep(10 * MICROSECOND)
            # If Wait did not release the locker this would deadlock.
            yield Lock(mu)
            result["acquired"] = True
            yield CondSignal(cond)
            yield Unlock(mu)
            yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        assert result["acquired"] is True

    def test_signal_without_waiters_is_noop(self, rt):
        def main():
            mu = yield NewMutex()
            cond = yield NewCond(mu)
            yield CondSignal(cond)
            yield CondBroadcast(cond)

        assert run_to_end(rt, main) == "main-exited"

    def test_wait_without_lock_panics(self, rt):
        def main():
            mu = yield NewMutex()
            cond = yield NewCond(mu)
            yield CondWait(cond)

        rt.spawn_main(main)
        with pytest.raises(GoPanic, match="unlock of unlocked"):
            rt.run()


class TestOnce:
    def test_runs_exactly_once(self, rt):
        calls = []

        def main():
            once = yield NewOnce()
            for i in range(3):
                yield OnceDo(once, lambda i=i: calls.append(i))

        run_to_end(rt, main)
        assert calls == [0]


class TestSemaphore:
    def test_acquire_release(self, rt):
        def main():
            sema = yield NewSema(1)
            yield SemAcquire(sema)
            assert sema.count == 0
            yield SemRelease(sema)
            assert sema.count == 1

        assert run_to_end(rt, main) == "main-exited"

    def test_release_wakes_waiter(self, rt):
        order = []

        def main():
            sema = yield NewSema(0)

            def acquirer():
                yield SemAcquire(sema)
                order.append("acquired")

            yield Go(acquirer)
            yield Sleep(10 * MICROSECOND)
            order.append("releasing")
            yield SemRelease(sema)
            yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        assert order == ["releasing", "acquired"]
