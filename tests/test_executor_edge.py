"""Edge-case tests for instruction execution semantics."""

import pytest

from repro import GoPanic, Runtime
from repro.runtime.clock import MICROSECOND
from repro.runtime.instructions import (
    Close,
    DEFAULT_CASE,
    Go,
    MakeChan,
    Recv,
    RecvCase,
    Select,
    Send,
    SendCase,
    Sleep,
    WgAdd,
    NewWaitGroup,
    WgWait,
)
from tests.conftest import run_to_end


class TestSelectEdgeCases:
    def test_send_case_on_closed_channel_panics_when_chosen(self, rt):
        def main():
            ch = yield MakeChan(0)
            yield Close(ch)
            yield Select([SendCase(ch, 1)])

        rt.spawn_main(main)
        with pytest.raises(GoPanic, match="closed channel"):
            rt.run()

    def test_recv_case_on_closed_channel_returns_zero(self, rt):
        def main():
            ch = yield MakeChan(0)
            yield Close(ch)
            idx, value, ok = yield Select([RecvCase(ch)])
            assert (idx, value, ok) == (0, None, False)

        assert run_to_end(rt, main) == "main-exited"

    def test_same_channel_as_send_and_recv_case(self, rt):
        """A select offering both directions on one unbuffered channel
        cannot match against itself; a peer must complete it."""
        state = {}

        def main():
            ch = yield MakeChan(0)

            def peer():
                value, _ = yield Recv(ch)
                state["peer_got"] = value

            yield Go(peer)
            yield Sleep(10 * MICROSECOND)
            idx, _, ok = yield Select([RecvCase(ch), SendCase(ch, "me")])
            state["case"] = idx
            yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        assert state["case"] == 1  # the send case fired
        assert state["peer_got"] == "me"

    def test_blocked_select_loser_sudogs_inactive_after_close(self, rt):
        """Closing one channel of a blocked select must leave no live
        sudog on the other."""
        def main():
            a = yield MakeChan(0)
            b = yield MakeChan(0)

            def selector():
                idx, _, ok = yield Select([RecvCase(a), RecvCase(b)])
                assert idx == 0 and not ok  # woken by close(a)

            yield Go(selector)
            yield Sleep(10 * MICROSECOND)
            yield Close(a)
            yield Sleep(10 * MICROSECOND)
            assert b.waiting_receivers() == 0

        assert run_to_end(rt, main) == "main-exited"

    def test_default_beats_blocked_cases_every_time(self, rt):
        def main():
            a = yield MakeChan(0)
            for _ in range(16):
                idx, _, _ = yield Select([RecvCase(a)], default=True)
                assert idx == DEFAULT_CASE

        assert run_to_end(rt, main) == "main-exited"

    def test_select_prefers_ready_over_default(self, rt):
        def main():
            a = yield MakeChan(1)
            yield Send(a, 9)
            idx, value, ok = yield Select([RecvCase(a)], default=True)
            assert (idx, value, ok) == (0, 9, True)

        assert run_to_end(rt, main) == "main-exited"

    def test_bad_case_type_rejected_eagerly(self):
        with pytest.raises(TypeError):
            Select(["not a case"])


class TestChannelOrderingEdgeCases:
    def test_buffered_values_drain_before_parked_senders(self, rt):
        """FIFO across the buffer boundary: buffered values first, then
        the parked sender's value."""
        order = []

        def main():
            ch = yield MakeChan(1)
            yield Send(ch, "first")  # fills the buffer

            def overflow_sender():
                yield Send(ch, "second")  # parks

            yield Go(overflow_sender)
            yield Sleep(10 * MICROSECOND)
            for _ in range(2):
                value, _ = yield Recv(ch)
                order.append(value)
            yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        assert order == ["first", "second"]

    def test_close_with_full_buffer_and_parked_sender(self, rt):
        """close() panics the parked sender but the buffer drains."""
        def main():
            ch = yield MakeChan(1)
            yield Send(ch, "buffered")

            def overflow_sender():
                try:
                    yield Send(ch, "parked")
                except GoPanic:
                    return  # recovered, Go-style

            yield Go(overflow_sender)
            yield Sleep(10 * MICROSECOND)
            yield Close(ch)
            value, ok = yield Recv(ch)
            assert (value, ok) == ("buffered", True)
            value, ok = yield Recv(ch)
            assert ok is False
            yield Sleep(10 * MICROSECOND)

        assert run_to_end(rt, main) == "main-exited"

    def test_two_receivers_one_send(self, rt):
        """Only one parked receiver is woken per send; the other stays."""
        woken = []

        def main():
            ch = yield MakeChan(0)

            def receiver(i):
                value, _ = yield Recv(ch)
                woken.append((i, value))

            yield Go(receiver, 1)
            yield Go(receiver, 2)
            yield Sleep(10 * MICROSECOND)
            yield Send(ch, "only")
            yield Sleep(10 * MICROSECOND)
            assert len(woken) == 1
            yield Send(ch, "other")
            yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        assert len(woken) == 2

    def test_recv_handoff_preserves_sender_fifo(self, rt):
        """Parked senders complete in arrival order on an unbuffered
        channel."""
        got = []

        def main():
            ch = yield MakeChan(0)

            def sender(tag):
                yield Send(ch, tag)

            for tag in ("a", "b", "c"):
                yield Go(sender, tag)
                yield Sleep(5 * MICROSECOND)  # enforce arrival order
            for _ in range(3):
                value, _ = yield Recv(ch)
                got.append(value)
            yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        assert got == ["a", "b", "c"]


class TestWaitGroupEdgeCases:
    def test_add_negative_delta_allowed_until_negative(self, rt):
        def main():
            wg = yield NewWaitGroup()
            yield WgAdd(wg, 3)
            yield WgAdd(wg, -2)
            assert wg.counter == 1
            yield WgAdd(wg, -1)
            yield WgWait(wg)  # returns immediately

        assert run_to_end(rt, main) == "main-exited"

    def test_wait_after_reuse_cycle(self, rt):
        """A WaitGroup can be reused after reaching zero, as in Go."""
        def main():
            wg = yield NewWaitGroup()

            def worker():
                from repro.runtime.instructions import WgDone
                yield Sleep(5 * MICROSECOND)
                yield WgDone(wg)

            for _round in range(3):
                yield WgAdd(wg, 2)
                yield Go(worker)
                yield Go(worker)
                yield WgWait(wg)
                assert wg.counter == 0

        assert run_to_end(rt, main) == "main-exited"
