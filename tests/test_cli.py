"""Tests for the command-line interface (fast, scaled-down invocations)."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("table1", "table2", "table3", "figure1",
                        "figure3", "figure4", "rq1b", "rq1c",
                        "ablations", "all"):
            args = parser.parse_args(
                [command] if command in ("ablations",)
                else [command])
            assert args.command == command

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.runs == 30
        assert args.out is None

    def test_obs_subcommand_defaults(self):
        args = build_parser().parse_args(["obs"])
        assert args.command == "obs"
        assert args.benchmark == "cgo/sendmail"
        assert args.seed == 0
        assert args.procs == 2
        assert args.fingerprint_db is None

    def test_telemetry_flags_on_every_subcommand(self):
        parser = build_parser()
        for command in ("table1", "figure4", "chaos", "obs", "all"):
            args = parser.parse_args([command, "--metrics", "--trace",
                                      "--out-dir", "x"])
            assert args.metrics and args.trace
            assert args.out_dir == "x"
            args = parser.parse_args([command])
            assert not args.metrics and not args.trace
            assert args.out_dir is None


class TestExecution:
    def test_rq1b_prints_ratios(self, capsys):
        assert main(["rq1b", "--packages", "30"]) == 0
        out = capsys.readouterr().out
        assert "===== rq1b" in out
        assert "goleak individual reports" in out

    def test_ablations(self, capsys):
        assert main(["ablations"]) == 0
        out = capsys.readouterr().out
        assert "fixpoint strategy" in out
        assert "detection cadence" in out

    def test_figure4_small(self, capsys):
        assert main(["figure4", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "deadlocking programs" in out

    def test_out_dir_archives(self, tmp_path, capsys):
        out_dir = str(tmp_path / "artifacts")
        assert main(["--out", out_dir, "rq1b", "--packages", "20"]) == 0
        capsys.readouterr()
        assert os.path.exists(os.path.join(out_dir, "rq1b.txt"))
        with open(os.path.join(out_dir, "rq1b.txt")) as fh:
            assert "GOLF" in fh.read()

    def test_metrics_flag_writes_telemetry_artifacts(self, tmp_path,
                                                     capsys):
        from repro.telemetry import get_default_hub, validate_exposition

        out_dir = str(tmp_path / "telemetry")
        assert main(["figure4", "--repeats", "1", "--metrics",
                     "--out-dir", out_dir]) == 0
        out = capsys.readouterr().out
        assert "telemetry prometheus:" in out
        prom = os.path.join(out_dir, "figure4-telemetry.prom")
        with open(prom) as fh:
            assert validate_exposition(fh.read()) > 0
        assert os.path.exists(
            os.path.join(out_dir, "figure4-telemetry-metrics.json"))
        # The default hub is uninstalled on the way out.
        assert get_default_hub() is None
