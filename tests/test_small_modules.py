"""Unit coverage for the small leaf modules: errors, waitreason,
instructions, helpers, clock."""

import pytest

from repro import errors
from repro.runtime import instructions as ins
from repro.runtime.channel import Channel
from repro.runtime.clock import (
    Clock,
    DAY,
    HOUR,
    MICROSECOND,
    MILLISECOND,
    MINUTE,
    SECOND,
)
from repro.runtime.objects import Box
from repro.runtime.waitreason import WaitReason


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(errors.GoPanic, errors.ReproError)
        assert issubclass(errors.SendOnClosedChannel, errors.GoPanic)
        assert issubclass(errors.GlobalDeadlockError,
                          errors.FatalRuntimeError)
        assert issubclass(errors.SchedulerError, errors.FatalRuntimeError)

    def test_panic_messages_match_go(self):
        assert errors.SendOnClosedChannel().message == (
            "send on closed channel")
        assert errors.CloseOfClosedChannel().message == (
            "close of closed channel")
        assert errors.NegativeWaitGroupCounter().message == (
            "sync: negative WaitGroup counter")
        assert "unlock of unlocked" in errors.UnlockOfUnlockedMutex().message

    def test_global_deadlock_carries_count(self):
        err = errors.GlobalDeadlockError(3)
        assert err.num_goroutines == 3
        assert "all goroutines are asleep" in str(err)


class TestWaitReason:
    def test_every_reason_classified(self):
        for reason in WaitReason:
            assert isinstance(reason.is_detectable, bool)

    def test_channel_and_sync_reasons_detectable(self):
        for reason in (WaitReason.CHAN_SEND, WaitReason.CHAN_RECEIVE,
                       WaitReason.SELECT, WaitReason.SYNC_MUTEX_LOCK,
                       WaitReason.SYNC_WAITGROUP_WAIT,
                       WaitReason.SYNC_COND_WAIT, WaitReason.SEMACQUIRE,
                       WaitReason.NIL_CHAN_SEND):
            assert reason.is_detectable, reason

    def test_external_reasons_not_detectable(self):
        for reason in (WaitReason.SLEEP, WaitReason.IO_WAIT,
                       WaitReason.SYSCALL, WaitReason.GC_WORKER_IDLE,
                       WaitReason.TIMER_GOROUTINE_IDLE):
            assert not reason.is_detectable, reason

    def test_values_read_like_go_wait_reasons(self):
        assert WaitReason.CHAN_SEND.value == "chan send"
        assert WaitReason.SELECT.value == "select"


class TestInstructionValidation:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ins.MakeChan(-1)

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            ins.Sleep(-1)

    def test_zero_work_rejected(self):
        with pytest.raises(ValueError):
            ins.Work(0)

    def test_select_rejects_non_cases(self):
        with pytest.raises(TypeError):
            ins.Select([object()])

    def test_heap_refs_of_send(self):
        ch = Channel(0)
        payload = Box(1)
        assert set(ins.Send(ch, payload).heap_refs()) == {ch, payload}
        assert ins.Send(None, 5).heap_refs() == ()

    def test_heap_refs_of_select_cover_cases(self):
        a, b = Channel(0), Channel(1)
        payload = Box(2)
        select = ins.Select([ins.RecvCase(a), ins.SendCase(b, payload)])
        assert set(select.heap_refs()) == {a, b, payload}

    def test_heap_refs_of_go_cover_heap_args(self):
        ch = Channel(0)

        def body(c, n):
            yield ins.Gosched()

        go = ins.Go(body, ch, 42)
        assert set(go.heap_refs()) == {ch}

    def test_base_instruction_has_no_refs(self):
        assert ins.Gosched().heap_refs() == ()
        assert ins.RunGC().heap_refs() == ()


class TestClock:
    def test_advance(self):
        clock = Clock()
        assert clock.advance(10) == 10
        assert clock.now == 10

    def test_advance_backwards_rejected(self):
        with pytest.raises(ValueError):
            Clock().advance(-1)

    def test_advance_to_is_monotone(self):
        clock = Clock()
        clock.advance_to(100)
        clock.advance_to(50)  # no-op
        assert clock.now == 100

    def test_duration_constants(self):
        assert MILLISECOND == 1000 * MICROSECOND
        assert SECOND == 1000 * MILLISECOND
        assert MINUTE == 60 * SECOND
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR


class TestBernoulliHelper:
    def test_distribution_roughly_matches(self):
        """bernoulli(512/1024) through the real runtime ~ a fair coin."""
        from repro import Runtime
        from repro.microbench.helpers import bernoulli

        outcomes = []

        def main():
            for _ in range(64):
                value = yield from bernoulli(512)
                outcomes.append(value)

        rt = Runtime(procs=1, seed=11)
        rt.spawn_main(main)
        rt.run(max_instructions=1_000_000)
        heads = sum(outcomes)
        assert 16 <= heads <= 48  # very loose 50% band

    def test_extremes(self):
        from repro import Runtime
        from repro.microbench.helpers import bernoulli

        results = {}

        def main():
            results["never"] = yield from bernoulli(0)
            results["always"] = yield from bernoulli(1024)

        rt = Runtime(procs=1, seed=3)
        rt.spawn_main(main)
        rt.run(max_instructions=100_000)
        assert results == {"never": False, "always": True}

    def test_invalid_denominator(self):
        from repro.microbench.helpers import bernoulli
        with pytest.raises(ValueError):
            list(bernoulli(1, 1000))  # not a power of two

    def test_out_of_range_numerator(self):
        from repro.microbench.helpers import bernoulli
        with pytest.raises(ValueError):
            list(bernoulli(2048, 1024))
