"""A checkpointed job pipeline: recovery's end-to-end proving ground.

A pool of workers drains a shared job channel; a host-side submitter
feeds jobs in with at-least-once delivery and an acknowledgement
ledger.  Some jobs are *poisoned*: the first attempt to process one
wedges its worker forever (a receive on a channel nobody sends on —
the classic partial deadlock), while redelivered attempts process
normally, modeling transient stall conditions.

The worker pool is registered as a :class:`~repro.core.checkpoint`
subsystem, the detection daemon runs on a timer, and the pipeline
demonstrates the paper's recovery story end to end:

1. a poisoned job wedges a worker;
2. the daemon's next fixpoint condemns the wedged goroutine;
3. the checkpoint manager rolls the subsystem back (channels restored
   to the last quiescent checkpoint, every worker respawned);
4. the submitter redelivers unacknowledged jobs;
5. the **zero-data-loss oracle** checks that every acknowledged job has
   a durable record — acknowledgements are only sent *after* the
   durable write, so a rollback can duplicate work but never lose it.

Durability is modeled by a host-side list the workers append to before
acking: host state stands in for external storage that survives
subsystem restarts by construction.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Set

from repro.core.checkpoint import CheckpointManager, WorkerSpec
from repro.core.config import GolfConfig
from repro.runtime.api import Runtime
from repro.runtime.clock import MILLISECOND, SECOND
from repro.runtime.instructions import Recv, Send, Sleep, Work
from repro.service.stats import latency_summary


class CheckpointedConfig:
    """Knobs for the checkpointed pipeline workload."""

    def __init__(
        self,
        procs: int = 2,
        seed: int = 1,
        workers: int = 4,
        jobs: int = 48,
        poison_rate: float = 0.15,
        work_us: int = 200,
        daemon_interval_ms: float = 10.0,
        redeliver_after_ms: int = 40,
        deadline_ms: int = 2_000,
    ):
        if not 0.0 <= poison_rate <= 1.0:
            raise ValueError("poison_rate must be in [0, 1]")
        self.procs = procs
        self.seed = seed
        self.workers = workers
        self.jobs = jobs
        self.poison_rate = poison_rate
        self.work_us = work_us
        self.daemon_interval_ms = daemon_interval_ms
        self.redeliver_after_ms = redeliver_after_ms
        self.deadline_ms = deadline_ms


class CheckpointedResult:
    """Outcome of one pipeline run, including the data-loss oracle."""

    def __init__(self, config: CheckpointedConfig):
        self.config = config
        self.jobs_total = config.jobs
        self.jobs_acked = 0
        self.durable_records = 0
        self.duplicate_records = 0
        #: Acked jobs with no durable record — must always be empty.
        self.lost_jobs: List[int] = []
        self.poisoned_jobs = 0
        self.redeliveries = 0
        self.recoveries = 0
        self.recovery_ns: List[int] = []
        self.checkpoints_taken = 0
        self.daemon_checks = 0
        self.daemon_skipped = 0
        self.leaks_reported = 0
        self.finished_at_ns = 0
        self.invariant_problems: List[str] = []
        #: SLO alert transitions observed during this run (populated
        #: only when the telemetry hub scrapes a TSDB).
        self.alerts: List[Dict[str, Any]] = []

    @property
    def completed(self) -> bool:
        return self.jobs_acked == self.jobs_total

    @property
    def zero_data_loss(self) -> bool:
        return not self.lost_jobs

    @property
    def clean(self) -> bool:
        return (self.completed and self.zero_data_loss
                and not self.invariant_problems)

    def recovery_summary(self) -> Dict[str, float]:
        return latency_summary(self.recovery_ns)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "jobs_total": self.jobs_total,
            "jobs_acked": self.jobs_acked,
            "durable_records": self.durable_records,
            "duplicate_records": self.duplicate_records,
            "lost_jobs": list(self.lost_jobs),
            "poisoned_jobs": self.poisoned_jobs,
            "redeliveries": self.redeliveries,
            "recoveries": self.recoveries,
            "recovery_ns": list(self.recovery_ns),
            "checkpoints_taken": self.checkpoints_taken,
            "daemon_checks": self.daemon_checks,
            "leaks_reported": self.leaks_reported,
            "finished_at_ns": self.finished_at_ns,
            "completed": self.completed,
            "zero_data_loss": self.zero_data_loss,
            "invariant_problems": list(self.invariant_problems),
            "alerts": list(self.alerts),
        }

    def __repr__(self) -> str:
        return (
            f"<checkpointed acked={self.jobs_acked}/{self.jobs_total} "
            f"recoveries={self.recoveries} "
            f"loss={'none' if self.zero_data_loss else self.lost_jobs}>"
        )


def run_checkpointed(config: Optional[CheckpointedConfig] = None,
                     telemetry=None,
                     fault_plan=None) -> CheckpointedResult:
    """Run the checkpointed pipeline once.

    ``fault_plan`` (a :class:`~repro.chaos.FaultPlan`) additionally
    installs the chaos injector, so workers can be panicked or
    spuriously woken mid-job on top of the deterministic poison wedges.
    """
    config = config or CheckpointedConfig()
    rt = Runtime(procs=config.procs, seed=config.seed, config=GolfConfig())
    scraping = telemetry is not None and telemetry.tsdb is not None
    if telemetry is not None:
        telemetry.attach(rt)
    if scraping:
        # Fresh virtual clock: a hub reused across runs must not mix
        # this run's series/alerts with an earlier runtime's timeline.
        telemetry.tsdb.clear()
        telemetry.alerts.reset_states()
    timeline_mark = len(telemetry.alerts.timeline) if scraping else 0
    if scraping:
        rt.start_metrics_scrape(telemetry)
    mgr = CheckpointManager(rt)

    jobs_ch = rt.make_chan(capacity=2 * config.workers, label="pipeline-jobs")
    ack_ch = rt.make_chan(capacity=config.jobs, label="pipeline-acks")
    # The trap is reachable only from wedged worker stacks, so B(g)
    # closes over nothing live and the wedge is a detectable leak.
    trap_ch = rt.make_chan(capacity=0, label="pipeline-trap")

    host_rng = random.Random(config.seed ^ 0x5EC0)
    poison: Set[int] = {
        j for j in range(config.jobs)
        if host_rng.random() < config.poison_rate
    }
    attempts: Dict[int, int] = {}
    durable: List[int] = []

    def worker(wid):
        while True:
            job, ok = yield Recv(jobs_ch)
            if not ok:
                return
            yield Work(max(1, config.work_us))
            if job in poison and attempts.get(job, 0) <= 1:
                # First attempt on a poisoned job: wait on a condition
                # that never arrives.  GOLF condemns this goroutine and
                # recovery restarts the subsystem.
                yield Recv(trap_ch)
            durable.append(job)       # durable write, then ack
            yield Send(ack_ch, job)

    sub = mgr.register(
        "pipeline",
        channels=[jobs_ch, ack_ch],
        workers=[WorkerSpec(f"worker-{i}", worker, (i,))
                 for i in range(config.workers)],
    )

    injector = None
    if fault_plan is not None:
        from repro.chaos import FaultInjector

        injector = FaultInjector(rt, fault_plan).install()

    rt.detect_partial_deadlock(interval_ms=config.daemon_interval_ms)

    deadline = config.deadline_ms * MILLISECOND

    def main():
        while rt.clock.now < deadline:
            yield Sleep(MILLISECOND)

    rt.spawn_main(main)

    acked: Set[int] = set()
    delivered_at: Dict[int, int] = {}
    redeliveries = 0
    next_job = 0
    redeliver_after = config.redeliver_after_ms * MILLISECOND
    acked_at_checkpoint = -1

    def submit(job: int) -> bool:
        ok, wakeups = jobs_ch.try_send(job)
        if ok:
            rt.sched.apply_wakeups(wakeups)
            attempts[job] = attempts.get(job, 0) + 1
            delivered_at[job] = rt.clock.now
        return ok

    while rt.clock.now < deadline and len(acked) < config.jobs:
        # Fresh deliveries, as channel capacity allows.
        while next_job < config.jobs and submit(next_job):
            next_job += 1
        # At-least-once redelivery: anything delivered but unacked for
        # too long (its worker wedged, died, or was rolled back) goes
        # out again.  The poison ledger sees attempts >= 2 and lets the
        # job through.
        for job, at in list(delivered_at.items()):
            if job in acked:
                continue
            if rt.clock.now - at >= redeliver_after:
                if submit(job):
                    redeliveries += 1
        rt.run(until_ns=min(deadline, rt.clock.now + 5 * MILLISECOND))
        # Drain acknowledgements.
        while True:
            done, job, ok, wakeups = ack_ch.try_recv()
            if not done or not ok:
                break
            rt.sched.apply_wakeups(wakeups)
            acked.add(job)
        # Quiescent point: every delivered job acked, channels drained.
        # Only then is a new checkpoint a consistent restart target.
        in_flight = [j for j in delivered_at if j not in acked]
        if (not in_flight and not jobs_ch.buffer and not ack_ch.buffer
                and len(acked) > acked_at_checkpoint):
            sub.take_checkpoint()
            acked_at_checkpoint = len(acked)

    finished_at = rt.clock.now
    rt.stop_partial_deadlock_detection()
    if injector is not None:
        injector.uninstall()
    rt.run(until_ns=rt.clock.now + 10 * MILLISECOND)
    rt.gc_until_quiescent()

    from repro.runtime.invariants import check_invariants

    result = CheckpointedResult(config)
    result.jobs_acked = len(acked)
    result.durable_records = len(set(durable))
    result.duplicate_records = len(durable) - len(set(durable))
    result.lost_jobs = sorted(acked - set(durable))
    result.poisoned_jobs = len(poison)
    result.redeliveries = redeliveries
    result.recoveries = mgr.total_recoveries()
    result.recovery_ns = mgr.recovery_times_ns()
    result.checkpoints_taken = sub.checkpoints_taken
    daemon = rt.detection_daemon
    if daemon is not None:
        result.daemon_checks = daemon.stats.checks
        result.daemon_skipped = daemon.stats.skipped
        result.leaks_reported = daemon.stats.leaks_reported
    result.finished_at_ns = finished_at
    result.invariant_problems = check_invariants(rt)
    if scraping:
        rt.stop_metrics_scrape()
        # One last scrape so burn-rate windows cover the recovery tail.
        telemetry.scrape_tick(rt.clock.now)
        result.alerts = [dict(e)
                         for e in telemetry.alerts.timeline[timeline_mark:]]
    return result
