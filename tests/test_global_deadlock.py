"""Tests for global deadlock detection and its fatal-error dump."""

import pytest

from repro import GlobalDeadlockError, Runtime
from repro.runtime.clock import MICROSECOND
from repro.runtime.instructions import (
    Go,
    Lock,
    MakeChan,
    NewMutex,
    Recv,
    Send,
    Sleep,
)


class TestGlobalDeadlock:
    def test_error_carries_stack_dump(self, rt):
        def main():
            ch = yield MakeChan(0)

            def other(c):
                yield Recv(c)

            yield Go(other, ch)
            yield Recv(ch)  # both sides receive: global deadlock

        rt.spawn_main(main)
        with pytest.raises(GlobalDeadlockError) as excinfo:
            rt.run()
        err = excinfo.value
        assert err.num_goroutines == 2
        assert "goroutine main#1 [chan receive]" in err.dump
        assert "created by" in err.dump
        assert "all goroutines are asleep" in str(err)

    def test_abba_between_all_goroutines_is_global(self, rt):
        def main():
            a = yield NewMutex()
            b = yield NewMutex()
            done = yield MakeChan(0)

            def locker(first, second):
                yield Lock(first)
                yield Sleep(10 * MICROSECOND)
                yield Lock(second)
                yield Send(done, ())

            yield Go(locker, a, b)
            yield Go(locker, b, a)
            yield Recv(done)  # main depends on the deadlocked pair

        rt.spawn_main(main)
        with pytest.raises(GlobalDeadlockError) as excinfo:
            rt.run()
        assert excinfo.value.num_goroutines == 3
        assert "sync.Mutex.Lock" in excinfo.value.dump

    def test_partial_deadlock_is_not_global(self, rt):
        """If main stays alive on timers, a stuck worker is partial, not
        global — the run ends normally and GOLF handles the leak."""
        def main():
            ch = yield MakeChan(0)

            def stuck(c):
                yield Recv(c)

            yield Go(stuck, ch)
            del ch
            yield Sleep(50 * MICROSECOND)

        rt.spawn_main(main)
        assert rt.run() == "main-exited"
        rt.gc_until_quiescent()
        assert rt.reports.total() == 1
