#!/usr/bin/env python3
"""The paper's motivating example (Listing 3): GoFuncManager.

``new_func_manager`` spawns two goroutines that iterate over the
manager's error and data channels.  The implicit contract is that every
caller eventually invokes ``wait_for_results``, which closes both
channels and lets the iterators exit.  ``concurrent_task`` breaks the
contract on one path — and the two iterators deadlock.

The example runs both paths and shows GOLF detecting exactly the broken
one.

Run:  python examples/func_manager.py
"""

from repro import GolfConfig, Runtime
from repro.runtime.clock import MICROSECOND
from repro.runtime.instructions import Close, Go, MakeChan, Recv, Sleep
from repro.runtime.objects import Struct
from repro.runtime.instructions import Alloc


def new_func_manager():
    """Returns a manager struct with channels `e` and `d`, plus two
    iterating goroutines (the paper's lines 34-39)."""
    errs = yield MakeChan(0, label="gfm.e")
    data = yield MakeChan(0, label="gfm.d")
    gfm = yield Alloc(Struct(e=errs, d=data))

    def drain_errors():
        while True:
            _err, ok = yield Recv(gfm["e"])
            if not ok:
                return

    def drain_data():
        while True:
            _item, ok = yield Recv(gfm["d"])
            if not ok:
                return

    yield Go(drain_errors, name="gfm-error-drainer")
    yield Go(drain_data, name="gfm-data-drainer")
    return gfm


def wait_for_results(gfm):
    """Closes the channels, releasing the iterators (lines 43-48)."""
    yield Close(gfm["e"])
    yield Close(gfm["d"])


def concurrent_task(early_return: bool):
    """The buggy caller (lines 49-55): on some paths it returns without
    calling wait_for_results."""
    gfm = yield from new_func_manager()
    if early_return:
        return  # contract broken: channels never closed
    yield from wait_for_results(gfm)


def run(early_return: bool):
    rt = Runtime(procs=2, seed=7, config=GolfConfig())

    # vet: expect recv-may-starve
    def main():
        yield Go(concurrent_task, early_return, name="concurrent-task")
        yield Sleep(200 * MICROSECOND)

    rt.spawn_main(main)
    rt.run()
    rt.gc_until_quiescent()
    return rt


if __name__ == "__main__":
    print("well-behaved path (WaitForResults called):")
    rt = run(early_return=False)
    print(f"  partial deadlocks: {rt.reports.total()}")
    assert rt.reports.total() == 0

    print("broken path (early return skips WaitForResults):")
    rt = run(early_return=True)
    print(f"  partial deadlocks: {rt.reports.total()}")
    for report in rt.reports:
        print(f"    goroutine {report.goid} ({report.name}) "
              f"blocked at {report.wait_reason}")
    assert rt.reports.total() == 2  # both iterators deadlock
    print("  ...both iterator goroutines were reclaimed by GOLF")
