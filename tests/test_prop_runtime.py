"""Property-based tests over whole random programs.

The scheduler turns any unsound detection into a hard failure: waking a
goroutine that GOLF reported deadlocked raises ``SchedulerError``.  These
tests generate random message-passing programs, run them under aggressive
GC (periodic + forced), and assert that no such violation ever occurs —
plus structural invariants on the final runtime state.
"""

from hypothesis import given, settings, strategies as st

from repro import GlobalDeadlockError, GolfConfig, GoPanic, Runtime
from repro.errors import SchedulerError
from repro.runtime.clock import MICROSECOND, MILLISECOND
from repro.runtime.goroutine import GStatus
from repro.runtime.instructions import (
    Close,
    DEFAULT_CASE,
    Go,
    Gosched,
    IoWait,
    MakeChan,
    Recv,
    RecvCase,
    RunGC,
    Select,
    Send,
    SendCase,
    Sleep,
    Work,
)

# An op is (kind, channel_index, amount).
OPS = st.tuples(
    st.sampled_from(["send", "recv", "select2", "select_default",
                     "sleep", "work", "gosched", "io", "close"]),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=1, max_value=20),
)


def _worker(channels, ops):
    def body():
        for kind, ch_idx, amount in ops:
            ch = channels[ch_idx % len(channels)]
            other = channels[(ch_idx + 1) % len(channels)]
            if kind == "send":
                yield Send(ch, amount)
            elif kind == "recv":
                yield Recv(ch)
            elif kind == "select2":
                yield Select([RecvCase(ch), SendCase(other, amount)])
            elif kind == "select_default":
                yield Select([RecvCase(ch)], default=True)
            elif kind == "sleep":
                yield Sleep(amount * MICROSECOND)
            elif kind == "work":
                yield Work(amount)
            elif kind == "io":
                yield IoWait(amount * MICROSECOND)
            elif kind == "close":
                if not ch.closed:
                    yield Close(ch)
            else:
                yield Gosched()

    return body


def _run_random_program(n_channels, capacities, worker_ops, seed, procs):
    rt = Runtime(procs=procs, seed=seed, config=GolfConfig())
    rt.enable_periodic_gc(50 * MICROSECOND)

    def main():
        channels = []
        for cap in capacities[:n_channels]:
            ch = yield MakeChan(cap)
            channels.append(ch)
        for ops in worker_ops:
            yield Go(_worker(channels, ops))
        yield Sleep(MILLISECOND)
        yield RunGC()
        yield RunGC()

    rt.spawn_main(main)
    outcome = "ok"
    try:
        rt.run(until_ns=20 * MILLISECOND, max_instructions=200_000)
    except GlobalDeadlockError:
        outcome = "global-deadlock"
    except GoPanic:
        outcome = "panic"
    return rt, outcome


program_strategy = st.tuples(
    st.integers(min_value=1, max_value=4),                 # n_channels
    st.lists(st.integers(min_value=0, max_value=2),
             min_size=4, max_size=4),                      # capacities
    st.lists(st.lists(OPS, min_size=1, max_size=5),
             min_size=1, max_size=6),                      # workers
    st.integers(min_value=0, max_value=2 ** 16),           # seed
    st.sampled_from([1, 2, 4]),                            # procs
)


@settings(max_examples=80, deadline=None)
@given(args=program_strategy)
def test_no_soundness_violation_in_random_programs(args):
    """The core property: GOLF never reports a goroutine that the future
    execution manages to wake (SchedulerError would escape here)."""
    rt, outcome = _run_random_program(*args)
    assert outcome in ("ok", "global-deadlock", "panic")


@settings(max_examples=60, deadline=None)
@given(args=program_strategy)
def test_reported_goroutines_stay_terminal(args):
    rt, _ = _run_random_program(*args)
    reported_goids = {r.goid for r in rt.reports}
    terminal = {GStatus.DEAD, GStatus.PENDING_RECLAIM, GStatus.DEADLOCKED}
    for g in rt.sched.allgs:
        if g.goid in reported_goids:
            assert g.status in terminal


@settings(max_examples=60, deadline=None)
@given(args=program_strategy)
def test_heap_accounting_consistent(args):
    rt, _ = _run_random_program(*args)
    ms = rt.memstats()
    assert ms.heap_alloc == sum(o.size for o in rt.heap.objects())
    assert ms.heap_objects == sum(1 for _ in rt.heap.objects())
    assert rt.heap.total_alloc_bytes >= ms.heap_alloc


@settings(max_examples=60, deadline=None)
@given(args=program_strategy)
def test_internal_invariants_hold(args):
    """The schedcheck sweep finds nothing after any random program."""
    rt, _ = _run_random_program(*args)
    assert rt.check_invariants() == []


@settings(max_examples=60, deadline=None)
@given(args=program_strategy)
def test_replays_are_identical(args):
    rt1, outcome1 = _run_random_program(*args)
    rt2, outcome2 = _run_random_program(*args)
    assert outcome1 == outcome2
    assert rt1.clock.now == rt2.clock.now
    assert rt1.reports.total() == rt2.reports.total()
    assert rt1.sched.instructions_executed == rt2.sched.instructions_executed


@settings(max_examples=50, deadline=None)
@given(args=program_strategy)
def test_golf_subset_of_goleak(args):
    """Anything GOLF reports must still be visible to goleak at exit
    (unless it was reclaimed, in which case the report stands alone)."""
    from repro.baselines.goleak import find_leaks
    rt, outcome = _run_random_program(*args)
    if outcome != "ok":
        return
    lingering = {
        (r.go_site, r.block_site) for r in find_leaks(rt)
    }
    for report in rt.reports:
        g = next((g for g in rt.sched.allgs if g.goid == report.goid), None)
        if g is not None and g.status == GStatus.DEADLOCKED:
            assert report.dedup_key in lingering
