"""Chrome trace-event JSON export (Perfetto / ``chrome://tracing``).

Layout: one process (``pid`` 1, "repro runtime") with

- one lane per virtual core (``tid`` 0..procs-1) carrying matched B/E
  instruction slices,
- one "gc" lane (``tid`` :data:`GC_TID`) carrying GC phase transitions,
  cycle summaries, and write-barrier shade instants,
- one lane per goroutine (``tid`` = :data:`GOROUTINE_TID_BASE` + goid)
  carrying lifecycle/channel/sema instants plus a mirror of the
  goroutine's instruction slices (so a goroutine's lane shows when it
  actually ran).

Channel rendezvous are linked with flow events (``s``/``f`` pairs) from
the sender's lane to the receiver's lane, using the partner goids the
executor records on completed operations.

Timestamps are the virtual clock in microseconds (``t_ns / 1000``); no
wall-clock value ever enters the artifact, so a fixed seed yields a
byte-identical file.  :func:`validate_chrome_trace` is the schema check
shared by the test suite and the CI ``trace-smoke`` job.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.trace import events as ev

#: The single process id all lanes live under.
RUNTIME_PID = 1
#: Thread id of the GC lane.
GC_TID = 99
#: Goroutine ``goid`` g maps to thread id ``GOROUTINE_TID_BASE + g``.
GOROUTINE_TID_BASE = 100

#: Kinds rendered as instants on the goroutine's lane.
_GOROUTINE_INSTANTS = frozenset({
    ev.GO_CREATE, ev.GO_PARK, ev.GO_WAKE, ev.GO_END, ev.GO_RECLAIM,
    ev.GO_PANIC, ev.CHAN_MAKE, ev.CHAN_SEND, ev.CHAN_RECV, ev.CHAN_CLOSE,
    ev.SELECT_RESOLVE, ev.SEMA_ACQUIRE, ev.SEMA_RELEASE, ev.DEADLOCK,
})
#: Kinds rendered as instants on the GC lane.
_GC_INSTANTS = frozenset({ev.GC_PHASE, ev.GC_CYCLE, ev.BARRIER_SHADE})


def _us(t_ns: int) -> float:
    return t_ns / 1000


def export_chrome_trace(tracer, procs: Optional[int] = None,
                        benchmark: str = "", seed: int = 0) -> dict:
    """Render the tracer's buffered events as a Chrome trace dict.

    ``procs`` sizes the per-core lanes; when omitted it is inferred from
    the instruction slices present in the buffer.
    """
    raw = tracer.events
    labels: Dict[int, str] = {}
    seen_goids: List[int] = []
    max_pid = -1
    for e in raw:
        if e.goid > 0 and e.goid not in labels:
            labels[e.goid] = ""
            seen_goids.append(e.goid)
        if e.kind == ev.GO_CREATE and e.args:
            labels[e.goid] = e.args.get("label", "")
        if e.pid > max_pid:
            max_pid = e.pid
    nprocs = procs if procs is not None else max_pid + 1

    meta: List[dict] = [{
        "ph": "M", "pid": RUNTIME_PID, "tid": 0, "ts": 0,
        "name": "process_name", "args": {"name": "repro runtime"},
    }]

    def lane(tid: int, name: str, sort_index: int) -> None:
        meta.append({"ph": "M", "pid": RUNTIME_PID, "tid": tid, "ts": 0,
                     "name": "thread_name", "args": {"name": name}})
        meta.append({"ph": "M", "pid": RUNTIME_PID, "tid": tid, "ts": 0,
                     "name": "thread_sort_index",
                     "args": {"sort_index": sort_index}})

    for pid in range(max(nprocs, 0)):
        lane(pid, f"proc {pid}", pid)
    lane(GC_TID, "gc", GC_TID)
    for goid in sorted(seen_goids):
        name = labels.get(goid) or f"g{goid}"
        lane(GOROUTINE_TID_BASE + goid, name, GOROUTINE_TID_BASE + goid)

    out: List[dict] = []
    flow_id = 0
    for e in raw:
        ts = _us(e.t_ns)
        gtid = GOROUTINE_TID_BASE + e.goid
        if e.kind == ev.INSTR:
            dur = e.args.get("dur", 0) if e.args else 0
            end = _us(e.t_ns + dur)
            for tid in (e.pid, gtid) if e.pid >= 0 else (gtid,):
                out.append({"ph": "B", "pid": RUNTIME_PID, "tid": tid,
                            "ts": ts, "name": e.detail, "cat": "instr",
                            "args": {"goid": e.goid,
                                     "label": labels.get(e.goid, "")}})
                out.append({"ph": "E", "pid": RUNTIME_PID, "tid": tid,
                            "ts": end, "name": e.detail, "cat": "instr"})
            continue
        if e.kind in _GC_INSTANTS:
            out.append({"ph": "i", "s": "p", "pid": RUNTIME_PID,
                        "tid": GC_TID, "ts": ts, "name": e.kind,
                        "cat": "gc", "args": {"detail": e.detail}})
            continue
        if e.kind == ev.FAULT_INJECT:
            tid = gtid if e.goid > 0 else GC_TID
            out.append({"ph": "i", "s": "t", "pid": RUNTIME_PID,
                        "tid": tid, "ts": ts, "name": e.kind,
                        "cat": "chaos", "args": {"detail": e.detail}})
            continue
        if e.kind in _GOROUTINE_INSTANTS:
            entry = {"ph": "i", "s": "t", "pid": RUNTIME_PID, "tid": gtid,
                     "ts": ts, "name": e.kind, "cat": "sched",
                     "args": {"detail": e.detail}}
            if e.args:
                entry["args"].update(
                    {k: v for k, v in e.args.items() if k != "blocked_on"})
            out.append(entry)
            src, dst = _flow_endpoints(e)
            if src and dst:
                flow_id += 1
                out.append({"ph": "s", "pid": RUNTIME_PID,
                            "tid": GOROUTINE_TID_BASE + src, "ts": ts,
                            "name": "chan", "cat": "chan", "id": flow_id})
                out.append({"ph": "f", "bp": "e", "pid": RUNTIME_PID,
                            "tid": GOROUTINE_TID_BASE + dst, "ts": ts,
                            "name": "chan", "cat": "chan", "id": flow_id})
            continue
        # Unknown/extension kinds degrade to instants on the GC lane so
        # the exporter never silently drops an event.
        out.append({"ph": "i", "s": "p", "pid": RUNTIME_PID, "tid": GC_TID,
                    "ts": ts, "name": e.kind, "cat": "other",
                    "args": {"detail": e.detail}})

    out.sort(key=lambda entry: entry["ts"])  # stable: ties keep ring order
    return {
        "traceEvents": meta + out,
        "displayTimeUnit": "ms",
        "otherData": {
            "benchmark": benchmark,
            "seed": seed,
            "procs": nprocs,
            "events": len(raw),
            "dropped": tracer.dropped,
            "clock": "virtual-ns/1000",
        },
    }


def _flow_endpoints(e) -> tuple:
    """(src_goid, dst_goid) of the message flow behind a channel event,
    or (0, 0) when the event moved no message between two goroutines."""
    if not e.args:
        return 0, 0
    partner = e.args.get("partner", 0)
    if not partner:
        return 0, 0
    if e.kind == ev.CHAN_SEND:
        return e.goid, partner
    if e.kind == ev.CHAN_RECV:
        return partner, e.goid
    if e.kind == ev.SELECT_RESOLVE:
        if e.args.get("op") == "send":
            return e.goid, partner
        if e.args.get("op") == "recv":
            return partner, e.goid
    return 0, 0


def validate_chrome_trace(data: Any) -> Dict[str, int]:
    """Validate the Chrome trace-event schema; raises ``ValueError``.

    Checks the shape CI's ``trace-smoke`` job requires: required keys on
    every event, non-decreasing ``ts`` over the non-metadata stream,
    matched B/E pairs per lane, and paired flow ids.  Returns summary
    counts on success.
    """
    if not isinstance(data, dict):
        raise ValueError("trace must be a JSON object")
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    counts = {"events": len(events), "slices": 0, "instants": 0,
              "flows": 0, "metadata": 0}
    last_ts = None
    stacks: Dict[tuple, int] = {}
    flow_starts: Dict[Any, int] = {}
    flow_ends: Dict[Any, int] = {}
    for i, e in enumerate(events):
        for key in ("ph", "pid", "tid", "ts"):
            if key not in e:
                raise ValueError(f"event {i} missing required key {key!r}")
        ph = e["ph"]
        if ph == "M":
            counts["metadata"] += 1
            continue
        ts = e["ts"]
        if not isinstance(ts, (int, float)):
            raise ValueError(f"event {i} has non-numeric ts {ts!r}")
        if last_ts is not None and ts < last_ts:
            raise ValueError(
                f"event {i} ts {ts} decreases (previous {last_ts})")
        last_ts = ts
        lane = (e["pid"], e["tid"])
        if ph == "B":
            if "name" not in e:
                raise ValueError(f"event {i}: B event missing name")
            stacks[lane] = stacks.get(lane, 0) + 1
            counts["slices"] += 1
        elif ph == "E":
            depth = stacks.get(lane, 0)
            if depth <= 0:
                raise ValueError(
                    f"event {i}: E without matching B on lane {lane}")
            stacks[lane] = depth - 1
        elif ph == "i":
            counts["instants"] += 1
        elif ph == "s":
            flow_starts[e.get("id")] = flow_starts.get(e.get("id"), 0) + 1
            counts["flows"] += 1
        elif ph == "f":
            flow_ends[e.get("id")] = flow_ends.get(e.get("id"), 0) + 1
        else:
            raise ValueError(f"event {i}: unknown phase {ph!r}")
    open_lanes = {lane: d for lane, d in stacks.items() if d}
    if open_lanes:
        raise ValueError(f"unmatched B events at end of trace: {open_lanes}")
    if set(flow_starts) != set(flow_ends):
        raise ValueError(
            f"unpaired flow ids: starts={sorted(flow_starts)} "
            f"ends={sorted(flow_ends)}")
    return counts
