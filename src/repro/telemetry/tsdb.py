"""A deterministic virtual-time time-series database over the registry.

The :class:`TimeSeriesDB` scrapes a :class:`~repro.telemetry.metrics.
MetricsRegistry` on a virtual-clock cadence and stores one bounded
ring-buffer :class:`Series` per (metric, label set).  Point timestamps
come from the runtime's virtual clock, so two runs of the same
``(program, procs, seed, scrape interval)`` produce byte-identical
series — the property the ``repro dash`` artifact and its CI
byte-identity gate rest on.

Scraping is driven by the :class:`MetricsScraper`, a *daemon-class*
system goroutine exactly like the detection daemon (PR 6): it runs on
the scheduler's dedicated daemon processor with FIFO dispatch and its
own timer heap, so enabling scraping never perturbs user scheduling,
RNG draws, or GC stepping.  Observation stays provably passive — the
``bench_tsdb`` benchmark pins this.

Windowed query operators follow Prometheus semantics over the points
inside ``[now - window, now]``:

- ``latest``        — the newest point at or before ``now``;
- ``delta``         — last minus first point in the window;
- ``rate``          — ``delta`` per *virtual* second;
- ``avg_over_time`` — arithmetic mean of the points in the window;
- ``quantile``      — histogram-quantile estimation from the windowed
  bucket increments, via
  :func:`~repro.telemetry.metrics.quantile_from_buckets`.

Operators return ``None`` when the window holds too little data (fewer
than two points for the differential operators), never a guess — the
alert engine treats "no data" as "condition not met".
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.runtime.clock import SECOND
from repro.telemetry.metrics import (
    HISTOGRAM,
    cumulative_at,
    quantile_from_buckets,
)

#: Default cap on buffered points per series (drop-oldest beyond it).
DEFAULT_MAX_POINTS = 512


class Series:
    """One scalar (counter/gauge) series: bounded ring of (t, value)."""

    __slots__ = ("name", "kind", "labelnames", "labelvalues", "times",
                 "values", "max_points", "dropped")

    def __init__(self, name: str, kind: str,
                 labelnames: Tuple[str, ...], labelvalues: Tuple[str, ...],
                 max_points: int = DEFAULT_MAX_POINTS):
        self.name = name
        self.kind = kind
        self.labelnames = labelnames
        self.labelvalues = labelvalues
        self.times: List[int] = []
        self.values: List[float] = []
        self.max_points = max_points
        self.dropped = 0

    @property
    def labels(self) -> Dict[str, str]:
        return dict(zip(self.labelnames, self.labelvalues))

    def append(self, t_ns: int, value: float) -> None:
        self.times.append(t_ns)
        self.values.append(value)
        if len(self.times) > self.max_points:
            del self.times[0]
            del self.values[0]
            self.dropped += 1

    # -- windowed operators --------------------------------------------------

    def _window(self, now_ns: int, window_ns: int) -> Tuple[int, int]:
        """Index range [lo, hi) of points with now-window <= t <= now."""
        lo = bisect_left(self.times, now_ns - window_ns)
        hi = bisect_right(self.times, now_ns)
        return lo, hi

    def latest(self, now_ns: int) -> Optional[float]:
        hi = bisect_right(self.times, now_ns)
        if hi == 0:
            return None
        return self.values[hi - 1]

    def delta(self, now_ns: int, window_ns: int) -> Optional[float]:
        lo, hi = self._window(now_ns, window_ns)
        if hi - lo < 2:
            return None
        return self.values[hi - 1] - self.values[lo]

    def rate(self, now_ns: int, window_ns: int) -> Optional[float]:
        """Increase per virtual second over the window."""
        lo, hi = self._window(now_ns, window_ns)
        if hi - lo < 2:
            return None
        span = self.times[hi - 1] - self.times[lo]
        if span <= 0:
            return None
        return (self.values[hi - 1] - self.values[lo]) / (span / SECOND)

    def avg_over_time(self, now_ns: int, window_ns: int) -> Optional[float]:
        lo, hi = self._window(now_ns, window_ns)
        if hi == lo:
            return None
        return sum(self.values[lo:hi]) / (hi - lo)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": self.labels,
            "points": [[t, v] for t, v in zip(self.times, self.values)],
            "dropped": self.dropped,
        }


class HistogramSeries:
    """One histogram series: per-point cumulative bucket snapshots."""

    __slots__ = ("name", "labelnames", "labelvalues", "buckets", "times",
                 "counts", "sums", "totals", "max_points", "dropped")

    kind = HISTOGRAM

    def __init__(self, name: str, labelnames: Tuple[str, ...],
                 labelvalues: Tuple[str, ...], buckets: Tuple[float, ...],
                 max_points: int = DEFAULT_MAX_POINTS):
        self.name = name
        self.labelnames = labelnames
        self.labelvalues = labelvalues
        self.buckets = buckets
        self.times: List[int] = []
        #: Cumulative bucket counts per point (``len(buckets)+1``, +Inf
        #: last) — deltas between two points are themselves valid
        #: cumulative counts of the observations in between.
        self.counts: List[Tuple[int, ...]] = []
        self.sums: List[float] = []
        self.totals: List[int] = []
        self.max_points = max_points
        self.dropped = 0

    @property
    def labels(self) -> Dict[str, str]:
        return dict(zip(self.labelnames, self.labelvalues))

    def append(self, t_ns: int, cumulative: Tuple[int, ...],
               total_sum: float, count: int) -> None:
        self.times.append(t_ns)
        self.counts.append(cumulative)
        self.sums.append(total_sum)
        self.totals.append(count)
        if len(self.times) > self.max_points:
            del self.times[0]
            del self.counts[0]
            del self.sums[0]
            del self.totals[0]
            self.dropped += 1

    def _window(self, now_ns: int, window_ns: int) -> Tuple[int, int]:
        lo = bisect_left(self.times, now_ns - window_ns)
        hi = bisect_right(self.times, now_ns)
        return lo, hi

    def delta_counts(
            self, now_ns: int,
            window_ns: int) -> Optional[Tuple[List[int], float, int]]:
        """Bucket/sum/count increases over the window, or None."""
        lo, hi = self._window(now_ns, window_ns)
        if hi - lo < 2:
            return None
        first, last = self.counts[lo], self.counts[hi - 1]
        return ([b - a for a, b in zip(first, last)],
                self.sums[hi - 1] - self.sums[lo],
                self.totals[hi - 1] - self.totals[lo])

    def quantile(self, q: float, now_ns: int,
                 window_ns: int) -> Optional[float]:
        """Estimated q-quantile of the observations inside the window."""
        window = self.delta_counts(now_ns, window_ns)
        if window is None or window[2] <= 0:
            return None
        return quantile_from_buckets(self.buckets, window[0], q)

    def bad_fraction(self, threshold: float, now_ns: int,
                     window_ns: int) -> Optional[float]:
        """Fraction of windowed observations above ``threshold``.

        The burn-rate primitive: with ``threshold`` the SLO bound,
        ``bad = (delta_count - delta_cum_le_threshold) / delta_count``.
        """
        window = self.delta_counts(now_ns, window_ns)
        if window is None or window[2] <= 0:
            return None
        counts, _, total = window
        good = cumulative_at(self.buckets, counts, threshold)
        return max(0.0, (total - good) / total)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": HISTOGRAM,
            "labels": self.labels,
            "buckets": list(self.buckets),
            "points": [[t, list(c), s, n]
                       for t, c, s, n in zip(self.times, self.counts,
                                             self.sums, self.totals)],
            "dropped": self.dropped,
        }


class TimeSeriesDB:
    """Bounded in-memory TSDB fed by registry scrapes."""

    def __init__(self, max_points: int = DEFAULT_MAX_POINTS):
        if max_points < 2:
            raise ValueError("max_points must be at least 2 "
                             "(windowed operators need two points)")
        self.max_points = max_points
        #: (metric name, label values) -> Series | HistogramSeries.
        self._series: Dict[Tuple[str, Tuple[str, ...]], object] = {}
        self.scrapes = 0
        self.last_scrape_ns: Optional[int] = None

    def __len__(self) -> int:
        return len(self._series)

    @property
    def dropped_points(self) -> int:
        return sum(s.dropped for s in self._series.values())

    # -- ingestion -----------------------------------------------------------

    def scrape(self, registry, now_ns: int) -> int:
        """Append one point per live series; returns points written."""
        points = 0
        for metric in registry:
            for values, child in metric.series():
                key = (metric.name, values)
                series = self._series.get(key)
                if metric.kind == HISTOGRAM:
                    if series is None:
                        series = HistogramSeries(
                            metric.name, metric.labelnames, values,
                            tuple(child.buckets),
                            max_points=self.max_points)
                        self._series[key] = series
                    series.append(now_ns, tuple(child.cumulative_counts()),
                                  child.sum, child.count)
                else:
                    if series is None:
                        series = Series(metric.name, metric.kind,
                                        metric.labelnames, values,
                                        max_points=self.max_points)
                        self._series[key] = series
                    series.append(now_ns, child.value)
                points += 1
        self.scrapes += 1
        self.last_scrape_ns = now_ns
        return points

    def clear(self) -> None:
        """Drop every buffered point (the per-schedule reset the chaos
        engine uses between runtimes, whose clocks restart at zero)."""
        self._series.clear()
        self.scrapes = 0
        self.last_scrape_ns = None

    # -- queries -------------------------------------------------------------

    def series(self, name: Optional[str] = None) -> List[object]:
        """All series (optionally of one metric), deterministic order."""
        keys = sorted(k for k in self._series
                      if name is None or k[0] == name)
        return [self._series[k] for k in keys]

    def get(self, name: str, **labels: str):
        """The single series matching name + exact label values."""
        for series in self.series(name):
            if all(series.labels.get(k) == str(v)
                   for k, v in labels.items()):
                return series
        return None

    def to_dict(self) -> dict:
        return {
            "max_points": self.max_points,
            "scrapes": self.scrapes,
            "last_scrape_ns": self.last_scrape_ns,
            "dropped_points": self.dropped_points,
            "series": [s.to_dict() for s in self.series()],
        }


def merge_tsdb(sources: Dict[str, dict], label: str = "shard") -> dict:
    """Merge per-source :meth:`TimeSeriesDB.to_dict` dumps into one
    fleet-level rollup with a ``label="<source>"`` pair on every series
    — the same semantics as
    :func:`~repro.telemetry.export.render_merged_prometheus`: sources
    sorted deterministically, label aliasing rejected, histogram series
    kept with their bucket structure intact.
    """
    def source_key(s: str):
        return (0, int(s), s) if s.isdigit() else (1, 0, s)

    series: List[dict] = []
    scrapes = 0
    dropped = 0
    for source in sorted(sources, key=source_key):
        dump = sources[source]
        scrapes += dump.get("scrapes", 0)
        dropped += dump.get("dropped_points", 0)
        for entry in dump.get("series", []):
            if label in entry["labels"]:
                raise ValueError(
                    f"series {entry['name']!r} already carries a "
                    f"{label!r} label; merging would alias series")
            merged = dict(entry)
            merged["labels"] = {label: str(source), **entry["labels"]}
            series.append(merged)
    series.sort(key=lambda e: (e["name"], sorted(e["labels"].items())))
    return {
        "label": label,
        "sources": sorted(sources, key=source_key),
        "scrapes": scrapes,
        "dropped_points": dropped,
        "series": series,
    }


class ScraperError(ReproError):
    """Invalid metrics-scraper lifecycle operation."""


class MetricsScraper:
    """The scrape loop: a daemon-class goroutine ticking the hub's TSDB.

    Modeled on :class:`~repro.daemon.DetectionDaemon`: ``start()``
    spawns the daemon goroutine (double-start raises), ``stop()`` is
    idempotent and early-wakes a sleeping scraper so it exits without
    waiting out the interval.  Each tick calls
    :meth:`TelemetryHub.scrape_tick`, which syncs the drop-count and
    clock gauges, appends one point per live series, and evaluates the
    alert rules at the scrape timestamp.
    """

    def __init__(self, rt, hub, interval_ns: int):
        if interval_ns <= 0:
            raise ScraperError("scrape interval must be positive")
        if hub.tsdb is None:
            raise ScraperError(
                "hub has no TSDB; call TelemetryHub.enable_tsdb first")
        self.rt = rt
        self.hub = hub
        self.interval_ns = interval_ns
        self.scrapes = 0
        self._running = False
        self._g = None

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        if self._running:
            raise ScraperError("metrics scraper already running")
        self._running = True
        self._g = self.rt.sched.spawn(
            self._loop, name="metrics-scraper", system=True, daemon=True,
            go_site="<runtime>")

    def stop(self) -> None:
        """Idempotent; wakes a scraper parked on its interval timer."""
        if not self._running:
            return
        self._running = False
        g = self._g
        from repro.runtime.goroutine import GStatus

        if (g is not None and g.status == GStatus.WAITING
                and g.wake_at is not None):
            import heapq

            sched = self.rt.sched
            sched._daemon_timers = [
                t for t in sched._daemon_timers if t[3] is not g]
            heapq.heapify(sched._daemon_timers)
            sched.wake(g, result=None)

    def _loop(self):
        from repro.runtime.instructions import Sleep

        while self._running:
            yield Sleep(self.interval_ns)
            if not self._running:
                break
            self._tick()

    def _tick(self) -> None:
        self.hub.scrape_tick(self.rt.clock.now)
        self.scrapes += 1
