"""Virtual time.

All scheduling, sleeping, GC pauses and performance metrics run on a
virtual nanosecond clock, so experiments are deterministic for a given
seed and independent of host machine speed.
"""

from __future__ import annotations

#: Nanoseconds per microsecond/millisecond/second, for readable durations.
MICROSECOND = 1_000
MILLISECOND = 1_000_000
SECOND = 1_000_000_000
MINUTE = 60 * SECOND
HOUR = 60 * MINUTE
DAY = 24 * HOUR


class Clock:
    """A monotonically advancing virtual clock (nanoseconds)."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0

    def advance(self, ns: int) -> int:
        """Move time forward by ``ns`` nanoseconds; returns the new time."""
        if ns < 0:
            raise ValueError("cannot advance the clock backwards")
        self.now += ns
        return self.now

    def advance_to(self, t: int) -> int:
        """Move time forward to absolute time ``t`` (no-op if in the past)."""
        if t > self.now:
            self.now = t
        return self.now
