"""Comparator tools from the paper's evaluation: goleak and LeakProf."""

from repro.baselines.goleak import (
    GoleakRecord,
    LeakAssertionError,
    find_leaks,
    verify_none,
)
from repro.baselines.leakprof import LeakProf

__all__ = [
    "GoleakRecord",
    "LeakAssertionError",
    "find_leaks",
    "verify_none",
    "LeakProf",
]
