"""`repro vet` as a detector baseline: static, pre-execution.

The paper's evaluation compares GOLF against two detectors that need a
*run*: goleak (end-of-test lingering goroutines) and LeakProf
(profile-based blocked-goroutine sampling in production).  This module
registers the static analyzer as a third point in that design space —
it needs no run at all, at the cost of the precision/recall gap
quantified by :mod:`repro.staticcheck.crossval`.

The API mirrors :mod:`repro.baselines.goleak`: ``find_static_leaks``
returns records, ``verify_static_none`` raises on any finding at or
above a severity threshold.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.staticcheck.model import (
    ERROR,
    SEVERITY_RANK,
    Diagnostic,
    FunctionReport,
)
from repro.staticcheck.report import analyze_callable


class StaticVetRecord:
    """One static diagnostic, shaped like the other baselines' records."""

    __slots__ = ("rule", "severity", "site", "function", "message",
                 "provenance")

    def __init__(self, function: str, diag: Diagnostic):
        self.rule = diag.rule
        self.severity = diag.severity
        self.site = str(diag.site)
        self.function = function
        self.message = diag.message
        self.provenance = [(role, str(site), detail)
                           for role, site, detail in diag.provenance]

    @property
    def dedup_key(self):
        return (self.rule, self.site)

    def __repr__(self) -> str:
        return (
            f"<vet {self.severity} {self.rule} in {self.function} "
            f"at {self.site}>"
        )


class StaticLeakError(AssertionError):
    """Raised by :func:`verify_static_none` — mirrors LeakAssertionError."""

    def __init__(self, records: List[StaticVetRecord]):
        self.records = records
        lines = [f"{len(records)} static finding(s):"]
        for record in records:
            lines.append(f"  {record.severity}: {record.rule} at "
                         f"{record.site} ({record.function})")
        super().__init__("\n".join(lines))


def find_static_leaks(body: Callable, name: Optional[str] = None,
                      min_severity: str = ERROR) -> List[StaticVetRecord]:
    """Statically analyze a goroutine body and return its findings.

    Unlike goleak/LeakProf this never executes ``body``; the verdict is
    available before the first request is served.  Records below
    ``min_severity`` (default: definite leaks only) are dropped.
    """
    report: FunctionReport = analyze_callable(
        body, name=name or getattr(body, "__name__", "body"))
    threshold = SEVERITY_RANK[min_severity]
    return [StaticVetRecord(report.name, diag)
            for diag in report.diagnostics
            if not diag.suppressed
            and SEVERITY_RANK[diag.severity] >= threshold]


def verify_static_none(body: Callable, name: Optional[str] = None,
                       min_severity: str = ERROR) -> None:
    """Assert a body has no static findings — the goleak-style gate."""
    records = find_static_leaks(body, name=name, min_severity=min_severity)
    if records:
        raise StaticLeakError(records)
