"""Tests for the flight recorder and its ring buffer."""

from repro.telemetry import (
    DEBUG,
    ERROR,
    INFO,
    WARN,
    FlightRecorder,
    RingBuffer,
)


class _FakeClock:
    def __init__(self):
        self.now = 0


class TestRingBuffer:
    def test_fills_then_drops_oldest(self):
        ring = RingBuffer(3)
        for i in range(5):
            ring.append(i)
        assert list(ring) == [2, 3, 4]
        assert ring.dropped == 2
        assert len(ring) == 3

    def test_last(self):
        ring = RingBuffer(4)
        for i in range(10):
            ring.append(i)
        assert ring.last(2) == [8, 9]
        assert ring.last(100) == [6, 7, 8, 9]

    def test_clear(self):
        ring = RingBuffer(2)
        ring.append(1)
        ring.append(2)
        ring.append(3)
        ring.clear()
        assert list(ring) == []
        assert ring.dropped == 0

    def test_capacity_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError):
            RingBuffer(0)


class TestFlightRecorder:
    def test_records_and_formats(self):
        clock = _FakeClock()
        rec = FlightRecorder(clock=clock)
        clock.now = 42
        rec.record("sched", "go-park", goid=3, detail="chan send")
        (event,) = rec.events()
        assert event.t_ns == 42
        assert "INFO" in event.format()
        assert "g3" in event.format()
        assert "chan send" in event.format()

    def test_severity_floor_filters_at_record_time(self):
        rec = FlightRecorder(min_severity=WARN)
        rec.record("sched", "go-park", severity=DEBUG)
        rec.record("sched", "noise", severity=INFO)
        rec.record("detector", "leak", severity=WARN)
        assert len(rec) == 1
        assert rec.filtered == 2

    def test_category_allowlist(self):
        rec = FlightRecorder(categories=("gc", "detector"))
        rec.record("sched", "go-park")
        rec.record("gc", "gc-cycle")
        assert [e.category for e in rec.events()] == ["gc"]
        assert rec.filtered == 1

    def test_read_time_filters(self):
        rec = FlightRecorder()
        rec.record("sched", "a", severity=DEBUG)
        rec.record("sched", "b", severity=ERROR)
        rec.record("gc", "c", severity=ERROR)
        assert len(rec.events(min_severity=ERROR)) == 2
        assert len(rec.events(category="gc", min_severity=ERROR)) == 1

    def test_ring_bounds_and_counts_drops(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("sched", f"e{i}")
        assert len(rec) == 4
        assert rec.dropped == 6
        assert [e.kind for e in rec.events()] == ["e6", "e7", "e8", "e9"]
        assert "6 dropped" in rec.dump()

    def test_incident_snapshots_tail(self):
        clock = _FakeClock()
        rec = FlightRecorder(clock=clock, capacity=100, incident_tail=3)
        for i in range(10):
            clock.now = i
            rec.record("sched", f"e{i}")
        incident = rec.incident("watchdog-stall", "everything wedged")
        assert [e.kind for e in incident.events] == ["e7", "e8", "e9"]
        # The snapshot survives the ring rolling past it.
        for i in range(200):
            rec.record("sched", "later")
        assert [e.kind for e in rec.incidents[0].events] == ["e7", "e8", "e9"]
        assert "watchdog-stall" in rec.dump()
        assert "everything wedged" in rec.dump()

    def test_incidents_bounded(self):
        rec = FlightRecorder(max_incidents=2)
        assert rec.incident("a") is not None
        assert rec.incident("b") is not None
        assert rec.incident("c") is None
        assert rec.incidents_suppressed == 1
        assert "1 further incident(s) suppressed" in rec.dump()

    def test_as_dict_round_trips(self):
        import json

        rec = FlightRecorder()
        rec.record("gc", "gc-cycle", detail="#1")
        rec.incident("leak-report", "g7")
        data = rec.as_dict()
        assert json.loads(json.dumps(data)) == data
        assert data["buffered"] == 1
        assert data["incidents"][0]["reason"] == "leak-report"
