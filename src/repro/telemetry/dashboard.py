"""``repro dash`` — a deterministic text dashboard over the fleet TSDB.

Drives a sequential fleet run with per-shard metric scraping enabled,
merges the shards' time series into one ``shard``-labelled rollup, and
renders two artifacts from it:

- a text dashboard (header, SLO alert table, alert timeline, ASCII
  sparkline panels per shard) — pure functions of the rollup, so two
  same-seed runs render byte-identical text;
- a schema-versioned JSON document (config, aggregate numbers, the full
  series rollup, per-shard alert summaries, and the merged alert
  timeline) validated by :func:`validate_dash_artifact`.

Everything here is derived from :class:`~repro.fleet.aggregate.FleetResult`
dumps — no live runtimes, no wall-clock — which is what makes byte
identity across runs a testable property instead of a hope.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.runtime.clock import MILLISECOND, SECOND

#: Bumped when the `repro dash` JSON artifact shape changes.
DASH_SCHEMA_VERSION = 1

#: Eight-level block ramp used for sparklines (space = no data).
_SPARK = "▁▂▃▄▅▆▇█"

#: Gauge/counter panels rendered per shard: (metric name, panel title).
PANELS = (
    ("repro_sched_live_goroutines", "live goroutines"),
    ("repro_sched_blocked_goroutines", "blocked goroutines"),
    ("repro_heap_live_bytes", "heap live bytes"),
    ("repro_detector_leaks_total", "leaks detected"),
    ("repro_gc_cycles_total", "gc cycles"),
)


def sparkline(values: List[float], width: int = 40) -> str:
    """Render ``values`` as a fixed-width ASCII sparkline.

    Downsamples by bucketing (max per bucket) so the line always fits
    ``width`` columns; flat series render as the lowest block.  Pure —
    equal inputs render equal strings.
    """
    if not values:
        return " " * width
    if len(values) > width:
        bucketed = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max(lo + 1, (i + 1) * len(values) // width)
            bucketed.append(max(values[lo:hi]))
        values = bucketed
    low, high = min(values), max(values)
    span = high - low
    out = []
    for v in values:
        if span <= 0:
            out.append(_SPARK[0])
        else:
            idx = int((v - low) / span * (len(_SPARK) - 1))
            out.append(_SPARK[idx])
    line = "".join(out)
    return line + " " * (width - len(line))


class DashResult:
    """One ``repro dash`` run: the fleet outcome plus its renderings."""

    def __init__(self, fleet, scrape_interval_ms: float):
        self.fleet = fleet
        self.scrape_interval_ms = scrape_interval_ms

    @property
    def clean(self) -> bool:
        return self.fleet.clean

    def to_dict(self) -> dict:
        fleet = self.fleet
        agg = fleet.to_dict()["aggregate"]
        shard_ids = sorted(fleet.alert_sources, key=int)
        # Every shard evaluates the same rule set; declare it once.
        rules = (fleet.alert_sources[shard_ids[0]]["rules"]
                 if shard_ids else [])
        return {
            "schema_version": DASH_SCHEMA_VERSION,
            "config": dict(fleet.config),
            "aggregate": {
                "users": agg["users"],
                "requests_completed": agg["requests_completed"],
                "makespan_ns": agg["makespan_ns"],
                "sustained_rps": agg["sustained_rps"],
                "leaks_detected": agg["leaks_detected"],
                "leaks_reclaimed": agg["leaks_reclaimed"],
                "leaks_per_s": agg["leaks_per_s"],
                "fingerprints": len(fleet.fingerprints),
            },
            "rollup": fleet.tsdb_rollup(),
            "alert_timeline": fleet.alert_timeline(),
            "alerts": {sid: fleet.alert_sources[sid]["summary"]
                       for sid in shard_ids},
            "rules": rules,
            "problems": list(fleet.problems),
            "clean": fleet.clean,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    # -- text dashboard -------------------------------------------------------

    def format(self) -> str:
        doc = self.to_dict()
        agg = doc["aggregate"]
        lines = [
            f"repro dash: {len(self.fleet.shards)} shard(s), "
            f"scrape every {self.scrape_interval_ms:g}ms virtual, "
            f"{'clean' if doc['clean'] else 'DIRTY'}",
            f"  requests : {agg['requests_completed']} "
            f"({agg['sustained_rps']:.1f} rps sustained, makespan "
            f"{agg['makespan_ns'] / SECOND:.3f}s virtual)",
            f"  leaks    : {agg['leaks_detected']} detected, "
            f"{agg['leaks_reclaimed']} reclaimed "
            f"({agg['leaks_per_s']:.1f}/s, "
            f"{agg['fingerprints']} fingerprint(s))",
            "",
        ]
        lines.extend(self._format_slo_table(doc))
        lines.append("")
        lines.extend(self._format_timeline(doc))
        lines.append("")
        lines.extend(self._format_panels(doc))
        for problem in doc["problems"]:
            lines.append(f"  PROBLEM: {problem}")
        return "\n".join(lines) + "\n"

    def _format_slo_table(self, doc: dict) -> List[str]:
        lines = ["SLO alerts (per shard):",
                 f"  {'rule':<24s} {'severity':<9s} "
                 f"{'shard':<6s} {'state':<9s} fired/resolved"]
        for sid in sorted(doc["alerts"], key=int):
            summary = doc["alerts"][sid]
            for rule in sorted(summary):
                row = summary[rule]
                state = "ACTIVE" if row["active"] else "ok"
                lines.append(
                    f"  {rule:<24s} {row['severity']:<9s} "
                    f"{sid:<6s} {state:<9s} "
                    f"{row['fired']}/{row['resolved']}")
        return lines

    def _format_timeline(self, doc: dict) -> List[str]:
        events = doc["alert_timeline"]
        lines = [f"alert timeline ({len(events)} transition(s)):"]
        if not events:
            lines.append("  (none)")
        for e in events:
            labels = "".join(
                f" {k}={v}" for k, v in sorted(e["labels"].items()))
            lines.append(
                f"  t={e['t'] / MILLISECOND:10.3f}ms shard={e['shard']} "
                f"[{e['severity']}] {e['rule']}: "
                f"{e['from']} -> {e['to']} ({e['kind']}){labels}")
        return lines

    def _format_panels(self, doc: dict) -> List[str]:
        rollup = doc["rollup"]
        # Labelled counters (gc cycles by reason, leaks by site, ...)
        # fold into one per-shard total, summed pointwise — sub-series
        # share scrape timestamps, so alignment by time is exact.
        by_key: Dict[tuple, Dict[int, float]] = {}
        for series in rollup["series"]:
            if series["kind"] == "histogram":
                continue
            shard = series["labels"].get("shard")
            if shard is None:
                continue
            acc = by_key.setdefault((series["name"], shard), {})
            for t, v in series["points"]:
                acc[t] = acc.get(t, 0.0) + float(v)
        lines = ["panels (one sparkline per shard):"]
        for name, title in PANELS:
            for shard in rollup["sources"]:
                acc = by_key.get((name, shard))
                if acc is None:
                    continue
                values = [acc[t] for t in sorted(acc)]
                last = values[-1] if values else 0.0
                lines.append(
                    f"  {title:<20s} shard {shard}: "
                    f"{sparkline(values)} last={last:g}")
        return lines


def run_dash(
    shards: int = 2,
    users: int = 16,
    seed: int = 0,
    workload: str = "controlled",
    policy: str = "hash",
    leak_rate: float = 0.1,
    procs: int = 2,
    daemon_ms: Optional[float] = 10.0,
    scrape_ms: float = 5.0,
) -> DashResult:
    """Run a sequential fleet with scraping on and wrap it for rendering.

    Sequential mode is the deterministic oracle, which is exactly what a
    byte-identical dashboard needs; ``shards=1`` covers the single-
    runtime story, ``shards>=2`` the shard-labelled fleet rollup.
    """
    from repro.fleet.supervisor import FleetConfig, run_fleet

    if scrape_ms <= 0:
        raise ValueError("scrape_ms must be positive")
    config = FleetConfig(
        shards=shards, seed=seed, users=users, policy=policy,
        workload=workload, leak_rate=leak_rate, procs_per_shard=procs,
        daemon_interval_ms=daemon_ms, scrape_interval_ms=scrape_ms)
    fleet = run_fleet(config, mode="sequential")
    return DashResult(fleet, scrape_interval_ms=scrape_ms)


def validate_dash_artifact(doc: dict) -> Dict[str, int]:
    """Strictly check a ``repro dash`` JSON artifact; raises ValueError.

    Returns summary counts for the CI smoke job to print.
    """
    def need(mapping, key, kind, where):
        if key not in mapping:
            raise ValueError(f"{where}: missing key {key!r}")
        if not isinstance(mapping[key], kind):
            raise ValueError(
                f"{where}: {key!r} should be {kind}, "
                f"got {type(mapping[key]).__name__}")
        return mapping[key]

    if need(doc, "schema_version", int, "artifact") != DASH_SCHEMA_VERSION:
        raise ValueError(
            f"artifact: schema_version {doc['schema_version']} != "
            f"{DASH_SCHEMA_VERSION}")
    need(doc, "config", dict, "artifact")
    need(doc, "clean", bool, "artifact")
    need(doc, "problems", list, "artifact")
    need(doc, "aggregate", dict, "artifact")
    for key in ("users", "requests_completed", "makespan_ns",
                "leaks_detected", "leaks_reclaimed", "fingerprints"):
        need(doc["aggregate"], key, int, "aggregate")
    rollup = need(doc, "rollup", dict, "artifact")
    sources = need(rollup, "sources", list, "rollup")
    if not sources:
        raise ValueError("rollup: no sources")
    series = need(rollup, "series", list, "rollup")
    if not series:
        raise ValueError("rollup: no series")
    label = need(rollup, "label", str, "rollup")
    for i, s in enumerate(series):
        where = f"rollup.series[{i}]"
        need(s, "name", str, where)
        need(s, "kind", str, where)
        labels = need(s, "labels", dict, where)
        if labels.get(label) not in sources:
            raise ValueError(
                f"{where}: {label!r} label {labels.get(label)!r} "
                f"not a rollup source")
        points = need(s, "points", list, where)
        times = [p[0] for p in points]
        if times != sorted(times):
            raise ValueError(f"{where}: points not time-ordered")
    alerts = need(doc, "alerts", dict, "artifact")
    if set(alerts) != set(sources):
        raise ValueError("artifact: alert summaries and sources disagree")
    rules = need(doc, "rules", list, "artifact")
    rule_names = {r["name"] for r in rules}
    timeline = need(doc, "alert_timeline", list, "artifact")
    last_t = None
    for j, event in enumerate(timeline):
        where = f"alert_timeline[{j}]"
        for key in ("t", "rule", "severity", "labels", "from", "to",
                    "kind", "shard"):
            if key not in event:
                raise ValueError(f"{where}: missing key {key!r}")
        if event["rule"] not in rule_names:
            raise ValueError(
                f"{where}: rule {event['rule']!r} not declared in rules")
        if str(event["shard"]) not in sources:
            raise ValueError(
                f"{where}: shard {event['shard']!r} not a rollup source")
        if last_t is not None and event["t"] < last_t:
            raise ValueError(f"{where}: timeline not time-ordered")
        last_t = event["t"]
    return {
        "sources": len(sources),
        "series": len(series),
        "alert_transitions": len(timeline),
        "rules": len(rules),
    }
