"""Microbenchmarks of the runtime substrate itself.

Not a paper artifact: these time the simulator's own primitives (channel
ping-pong, goroutine spawn, GC cycles, detection passes) so regressions
in the substrate are visible independently of the experiment numbers.
"""

from repro import GolfConfig, Runtime
from repro.runtime.clock import MILLISECOND
from repro.runtime.instructions import (
    Go,
    MakeChan,
    Recv,
    Send,
)


def _ping_pong_program(rounds):
    rt = Runtime(procs=2, seed=1)

    def main():
        ping = yield MakeChan(0)
        pong = yield MakeChan(0)

        def echo():
            while True:
                value, ok = yield Recv(ping)
                if not ok:
                    return
                yield Send(pong, value)

        yield Go(echo)
        for i in range(rounds):
            yield Send(ping, i)
            yield Recv(pong)
        from repro.runtime.instructions import Close
        yield Close(ping)

    rt.spawn_main(main)
    rt.run(max_instructions=100_000_000)
    return rt


def test_channel_ping_pong(benchmark):
    rt = benchmark(lambda: _ping_pong_program(500))
    assert rt.sched.instructions_executed > 1000


def test_goroutine_spawn_join(benchmark):
    def program():
        rt = Runtime(procs=4, seed=1)

        def main():
            done = yield MakeChan(100)

            def worker(i):
                yield Send(done, i)

            for i in range(100):
                yield Go(worker, i)
            for _ in range(100):
                yield Recv(done)

        rt.spawn_main(main)
        rt.run(max_instructions=10_000_000)
        return rt

    rt = benchmark(program)
    assert rt.sched.goroutines_spawned >= 101


def _gc_heavy_runtime(golf: bool, leaked: int):
    rt = Runtime(
        procs=2, seed=1,
        config=GolfConfig() if golf else GolfConfig.baseline(),
    )

    def main():
        from repro.runtime.instructions import Alloc, Sleep
        from repro.runtime.objects import Box, Slice
        keep = yield Alloc(Slice())
        for i in range(300):
            item = yield Alloc(Box(i))
            keep.append(item)

        def leaker(c):
            yield Send(c, 1)

        for _ in range(leaked):
            ch = yield MakeChan(0)
            yield Go(leaker, ch)
        yield Sleep(MILLISECOND)

    rt.spawn_main(main)
    rt.run(until_ns=100 * MILLISECOND, max_instructions=10_000_000)
    return rt


def test_baseline_gc_cycle(benchmark):
    rt = _gc_heavy_runtime(golf=False, leaked=50)
    benchmark(rt.gc)


def test_golf_gc_cycle_with_detection(benchmark):
    rt = _gc_heavy_runtime(golf=True, leaked=50)
    benchmark(rt.gc)


def test_detection_pass_only(benchmark):
    from repro.core.detector import detect

    rt = _gc_heavy_runtime(golf=True, leaked=100)

    def one_pass():
        rt.heap.begin_cycle()
        result = detect(rt.heap, rt.sched.allgs)
        from repro.core import masking
        masking.unmask_all(rt.sched.allgs)
        return result

    result = benchmark(one_pass)
    assert len(result.deadlocked) >= 1
